//! Deterministic fault injection: declarative, virtual-time-ordered fault
//! campaigns over the simulated network and the nodes running on it.
//!
//! The paper only measures fault-free runs; this module makes failures a
//! first-class experiment input (in the spirit of Gromit and BLOCKBENCH).
//! A [`FaultPlan`] is a declarative schedule of [`FaultEvent`]s; a
//! [`FaultScheduler`] replays it in virtual-time order so the event loop of
//! a benchmark can interleave faults with client traffic without losing
//! seeded determinism: the same plan and seed always produce the identical
//! run.
//!
//! Network-level events (`Partition`, `Heal`, `LossBurst`, `LatencySpike`)
//! are applied directly to a [`NetSim`] via [`NetSim::apply_fault`];
//! node-level events (`CrashNode`, `RestartNode`, and the Byzantine
//! `EquivocateProposer` / `DoubleVote` windows) are routed by the chain
//! models to their consensus engines.
//!
//! # Example
//!
//! ```
//! use coconut_simnet::{FaultEvent, FaultPlan, FaultScheduler};
//! use coconut_types::{NodeId, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .at(SimTime::from_secs(5), FaultEvent::CrashNode(NodeId(2)))
//!     .at(SimTime::from_secs(15), FaultEvent::RestartNode(NodeId(2)));
//! let mut sched = FaultScheduler::new(plan);
//! assert_eq!(sched.next_due(), Some(SimTime::from_secs(5)));
//! let (at, ev) = sched.pop_due(SimTime::from_secs(10)).unwrap();
//! assert_eq!(at, SimTime::from_secs(5));
//! assert!(matches!(ev, FaultEvent::CrashNode(NodeId(2))));
//! assert!(sched.pop_due(SimTime::from_secs(10)).is_none());
//! ```

use coconut_types::{NodeId, SimDuration, SimTime};

use crate::latency::LatencyModel;
use crate::net::{NetSim, RegionMap};

/// How a Byzantine-flagged node misbehaves while its fault window is open.
///
/// Both behaviours only matter to BFT engines (PBFT, IBFT, DiemBFT); the
/// crash-fault-tolerant systems have no Byzantine quorum to subvert and
/// ignore the flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByzantineBehaviour {
    /// As proposer, send conflicting blocks (same commands, different
    /// digests) to disjoint subsets of the peers.
    EquivocateProposer,
    /// As validator, vote for two conflicting proposals in the same
    /// round/view instead of at most one.
    DoubleVote,
}

/// One fault to inject at a scheduled virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Crash a node: it stops participating until restarted.
    CrashNode(NodeId),
    /// Restart a crashed node; the protocol's recovery path runs
    /// (re-election, view change, pacemaker sync, schedule re-entry, ...).
    RestartNode(NodeId),
    /// Set-based partition: isolate the given set of nodes from the rest of
    /// the network (links within the set and within the complement stay up).
    ///
    /// Symmetric partitions compose with
    /// [`FaultEvent::AsymmetricPartition`] as a union — a direction is
    /// suppressed if either kind blocks it — and [`FaultEvent::Heal`]
    /// removes both kinds at once, so overlapping windows can never leave a
    /// half-open residue after the heal.
    Partition(Vec<NodeId>),
    /// Remove every active partition, symmetric *and* directional.
    Heal,
    /// Directional (gray) partition: every `from → to` message is dropped
    /// while `to → from` traffic is delivered — a half-open link. Healed by
    /// [`FaultEvent::Heal`] together with symmetric partitions.
    AsymmetricPartition {
        /// Senders whose outbound traffic toward `to` is suppressed.
        from: Vec<NodeId>,
        /// Receivers that stop hearing from `from` (their replies still
        /// flow).
        to: Vec<NodeId>,
    },
    /// Seeded intermittent loss on one (bidirectional) link for the next
    /// `window`: each message on `a ↔ b` drops independently with
    /// probability `drop_prob`, drawn from a dedicated RNG stream.
    FlakyLink {
        /// One endpoint of the flaky link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Per-message drop probability while the window is open.
        drop_prob: f64,
        /// How long the flakiness lasts from its scheduled start.
        window: SimDuration,
    },
    /// A straggler for the next `window`: `node`'s timers and its messages
    /// (both directions) take `factor ×` as long, but it keeps
    /// participating — the limping-but-alive regime between healthy and
    /// crashed.
    SlowNode {
        /// The straggling node.
        node: NodeId,
        /// Stretch factor (`>= 1.0`) applied to its timers and messages.
        factor: f64,
        /// How long the straggle lasts from its scheduled start.
        window: SimDuration,
    },
    /// Regioned-WAN overlay for the next `window`: the [`RegionMap`]'s
    /// per-region-pair extra latency is added to every cross-region link
    /// delay, under whatever latency model is already in force.
    RegionLatency {
        /// Node→region assignment plus the extra-latency matrix.
        map: RegionMap,
        /// How long the overlay lasts from its scheduled start.
        window: SimDuration,
    },
    /// Elevated message-loss probability `p` for the next `window`.
    LossBurst {
        /// Drop probability during the burst.
        p: f64,
        /// How long the burst lasts from its scheduled start.
        window: SimDuration,
    },
    /// Inter-server latency override for the next `window`.
    LatencySpike {
        /// The latency model in force during the spike.
        model: LatencyModel,
        /// How long the spike lasts from its scheduled start.
        window: SimDuration,
    },
    /// Byzantine proposer: for the next `window`, `node` proposes
    /// conflicting blocks to disjoint peer subsets whenever it leads a
    /// round/view.
    EquivocateProposer {
        /// The node that turns Byzantine.
        node: NodeId,
        /// How long the behaviour lasts from its scheduled start.
        window: SimDuration,
    },
    /// Byzantine validator: for the next `window`, `node` votes for two
    /// conflicting proposals in the same round/view.
    DoubleVote {
        /// The node that turns Byzantine.
        node: NodeId,
        /// How long the behaviour lasts from its scheduled start.
        window: SimDuration,
    },
    /// Membership churn: admit a pre-provisioned standby node into the
    /// active validator/witness/notary set. The consensus engine starts the
    /// joiner's catch-up (state transfer); only once the sync completes does
    /// the epoch advance and the joiner vote, lead, or notarise.
    JoinNode(NodeId),
    /// Membership churn: remove a node from the active set. Unlike
    /// [`FaultEvent::CrashNode`], the departure is protocol-visible — the
    /// engine advances its configuration epoch and recomputes `n`, `f`, and
    /// quorum sizes over the shrunken membership.
    LeaveNode(NodeId),
}

impl FaultEvent {
    /// `true` for events the network layer handles ([`NetSim::apply_fault`]);
    /// `false` for node-level crash/restart/Byzantine events.
    pub fn is_network_fault(&self) -> bool {
        !matches!(
            self,
            FaultEvent::CrashNode(_)
                | FaultEvent::RestartNode(_)
                | FaultEvent::EquivocateProposer { .. }
                | FaultEvent::DoubleVote { .. }
                | FaultEvent::JoinNode(_)
                | FaultEvent::LeaveNode(_)
        )
    }
}

/// A declarative, virtual-time-ordered schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan (a fault-free run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `event` at virtual time `at` (builder style). Events may be
    /// added in any order; the scheduler replays them sorted by time, ties
    /// broken by insertion order.
    pub fn at(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// The classic crash window: crash every node in `nodes` at `crash_at`
    /// and restart them all at `heal_at` (builder style, so windows compose
    /// with other events).
    ///
    /// # Panics
    ///
    /// Panics if `heal_at <= crash_at`.
    pub fn crash_window(mut self, nodes: &[NodeId], crash_at: SimTime, heal_at: SimTime) -> Self {
        assert!(heal_at > crash_at, "heal must come after the crash");
        for &n in nodes {
            self = self.at(crash_at, FaultEvent::CrashNode(n));
        }
        for &n in nodes {
            self = self.at(heal_at, FaultEvent::RestartNode(n));
        }
        self
    }

    /// A severity-parameterized loss window: from `from` until `until`,
    /// messages — and client submissions, where the driver mirrors the
    /// burst at ingress — drop with probability `p` (builder style). The
    /// sweep campaigns walk `p` as their loss-severity axis; `p = 0.0` is a
    /// legal no-op step so degradation curves can start at a fault-free
    /// baseline cell.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` or `p` is outside `[0, 1]`.
    pub fn loss_window(self, p: f64, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "the loss window must have positive length");
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.at(
            from,
            FaultEvent::LossBurst {
                p,
                window: until - from,
            },
        )
    }

    /// The classic Byzantine window: from `from` until `until`, every node
    /// in `nodes` both equivocates as proposer and double-votes as
    /// validator (builder style). Both events share the timestamp `from`;
    /// the scheduler's stable sort keeps their insertion order, so a run
    /// always arms equivocation before double-voting per node.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn byzantine_window(mut self, nodes: &[NodeId], from: SimTime, until: SimTime) -> Self {
        assert!(
            until > from,
            "the Byzantine window must have positive length"
        );
        let window = until - from;
        for &n in nodes {
            self = self.at(from, FaultEvent::EquivocateProposer { node: n, window });
            self = self.at(from, FaultEvent::DoubleVote { node: n, window });
        }
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A partition window: isolate `isolated` from the rest of the network
    /// at `from` and heal every active partition at `until` (builder
    /// style). Links within the isolated set and within the complement stay
    /// up. Note that the heal is global — [`FaultEvent::Heal`] removes
    /// *every* active partition, so overlapping partition windows share
    /// their earliest heal.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn partition_window(self, isolated: &[NodeId], from: SimTime, until: SimTime) -> Self {
        assert!(
            until > from,
            "the partition window must have positive length"
        );
        self.at(from, FaultEvent::Partition(isolated.to_vec()))
            .at(until, FaultEvent::Heal)
    }

    /// A straggler window: from `from` until `until`, `node`'s timers and
    /// messages are stretched by `factor` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` or `factor < 1.0`.
    pub fn slow_window(self, node: NodeId, factor: f64, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "the slow window must have positive length");
        assert!(factor >= 1.0, "a slow-node factor must be >= 1");
        self.at(
            from,
            FaultEvent::SlowNode {
                node,
                factor,
                window: until - from,
            },
        )
    }

    /// A flaky-link window: from `from` until `until`, each message on
    /// `a ↔ b` drops independently with probability `p` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` or `p` is outside `[0, 1]`.
    pub fn flaky_window(self, a: NodeId, b: NodeId, p: f64, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "the flaky window must have positive length");
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0, 1]"
        );
        self.at(
            from,
            FaultEvent::FlakyLink {
                a,
                b,
                drop_prob: p,
                window: until - from,
            },
        )
    }

    /// A half-open-link window: from `from` until `until`, every
    /// `from_set → to_set` message is dropped while the reverse direction
    /// keeps flowing; the heal at `until` is global (clears symmetric and
    /// directional partitions alike, see [`FaultEvent::Heal`]).
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn asym_partition_window(
        self,
        from_set: &[NodeId],
        to_set: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            until > from,
            "the asymmetric-partition window must have positive length"
        );
        self.at(
            from,
            FaultEvent::AsymmetricPartition {
                from: from_set.to_vec(),
                to: to_set.to_vec(),
            },
        )
        .at(until, FaultEvent::Heal)
    }

    /// A regioned-WAN window: from `from` until `until`, the [`RegionMap`]'s
    /// extra cross-region latency applies on top of the configured latency
    /// models (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn region_window(self, map: RegionMap, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "the region window must have positive length");
        self.at(
            from,
            FaultEvent::RegionLatency {
                map,
                window: until - from,
            },
        )
    }

    /// A single membership join at `at` (builder style): the standby node
    /// `node` starts catch-up and becomes active once synced.
    pub fn join_at(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, FaultEvent::JoinNode(node))
    }

    /// A single membership leave at `at` (builder style): `node` departs
    /// the active set and the configuration epoch advances.
    pub fn leave_at(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, FaultEvent::LeaveNode(node))
    }

    /// The scheduled events in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }
}

/// Replays a [`FaultPlan`] in virtual-time order.
///
/// The driver asks [`FaultScheduler::next_due`] for the next fault instant,
/// advances the simulation to it, then drains due events with
/// [`FaultScheduler::pop_due`]. Because fault times are part of the plan
/// (not sampled), the interleaving with client traffic is deterministic.
///
/// # Tie-break ordering
///
/// Events sharing a virtual timestamp replay in the order they were added
/// to the plan: the constructor sorts with `Vec::sort_by_key`, which is
/// stable, and [`FaultScheduler::pop_due`] walks the sorted vector with a
/// cursor. Campaigns rely on this contract — e.g. a crash-and-repartition
/// at one instant, or [`FaultPlan::byzantine_window`] arming two
/// behaviours per node at the same time — so it is pinned by test, not
/// incidental.
#[derive(Debug, Clone)]
pub struct FaultScheduler {
    events: Vec<(SimTime, FaultEvent)>,
    cursor: usize,
}

impl FaultScheduler {
    /// Builds a scheduler from `plan`, stable-sorted by fault time (ties
    /// keep insertion order).
    pub fn new(plan: FaultPlan) -> Self {
        let mut events = plan.events;
        events.sort_by_key(|(at, _)| *at);
        FaultScheduler { events, cursor: 0 }
    }

    /// The time of the next unapplied fault, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|(at, _)| *at)
    }

    /// Pops the next fault scheduled at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, FaultEvent)> {
        match self.events.get(self.cursor) {
            Some((at, _)) if *at <= now => {
                let ev = self.events[self.cursor].clone();
                self.cursor += 1;
                Some(ev)
            }
            _ => None,
        }
    }

    /// `true` once every scheduled fault has been popped.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Remaining (unapplied) fault count.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl<M> NetSim<M> {
    /// Applies a network-level fault to this network. `CrashNode` and
    /// `RestartNode` are node-level and left to the caller; the return value
    /// says whether the event was handled here.
    ///
    /// `at` anchors the windowed faults (`LossBurst`, `LatencySpike`): they
    /// stay in force until `at + window` of virtual time.
    pub fn apply_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        match event {
            FaultEvent::Partition(set) => {
                self.partition_isolate(set);
                true
            }
            FaultEvent::Heal => {
                self.heal_all();
                true
            }
            FaultEvent::LossBurst { p, window } => {
                self.loss_burst(*p, at + *window);
                true
            }
            FaultEvent::LatencySpike { model, window } => {
                self.latency_spike(*model, at + *window);
                true
            }
            FaultEvent::AsymmetricPartition { from, to } => {
                self.partition_directional(from, to);
                true
            }
            FaultEvent::FlakyLink {
                a,
                b,
                drop_prob,
                window,
            } => {
                self.flaky_link(*a, *b, *drop_prob, at + *window);
                true
            }
            FaultEvent::SlowNode {
                node,
                factor,
                window,
            } => {
                self.slow_node(*node, *factor, at + *window);
                true
            }
            FaultEvent::RegionLatency { map, window } => {
                self.region_latency(map.clone(), at + *window);
                true
            }
            FaultEvent::CrashNode(_)
            | FaultEvent::RestartNode(_)
            | FaultEvent::EquivocateProposer { .. }
            | FaultEvent::DoubleVote { .. }
            | FaultEvent::JoinNode(_)
            | FaultEvent::LeaveNode(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;
    use crate::topology::Topology;

    #[test]
    fn plan_builder_collects_events() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(2), FaultEvent::Heal)
            .at(SimTime::from_secs(1), FaultEvent::CrashNode(NodeId(0)));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn crash_window_pairs_crash_and_restart() {
        let plan = FaultPlan::new().crash_window(
            &[NodeId(1), NodeId(2)],
            SimTime::from_secs(5),
            SimTime::from_secs(9),
        );
        assert_eq!(plan.len(), 4);
        let crashes = plan
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::CrashNode(_)))
            .count();
        assert_eq!(crashes, 2);
    }

    #[test]
    #[should_panic(expected = "heal must come after")]
    fn inverted_crash_window_rejected() {
        let _ = FaultPlan::new().crash_window(
            &[NodeId(0)],
            SimTime::from_secs(5),
            SimTime::from_secs(5),
        );
    }

    #[test]
    fn scheduler_replays_in_time_order() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(9), FaultEvent::Heal)
            .at(SimTime::from_secs(3), FaultEvent::CrashNode(NodeId(1)))
            .at(SimTime::from_secs(3), FaultEvent::CrashNode(NodeId(2)));
        let mut s = FaultScheduler::new(plan);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_due(), Some(SimTime::from_secs(3)));
        // Ties at t = 3 s keep insertion order:
        let (_, first) = s.pop_due(SimTime::from_secs(3)).unwrap();
        assert_eq!(first, FaultEvent::CrashNode(NodeId(1)));
        let (_, second) = s.pop_due(SimTime::from_secs(3)).unwrap();
        assert_eq!(second, FaultEvent::CrashNode(NodeId(2)));
        assert!(s.pop_due(SimTime::from_secs(8)).is_none());
        assert!(!s.is_done());
        let (at, last) = s.pop_due(SimTime::from_secs(20)).unwrap();
        assert_eq!(at, SimTime::from_secs(9));
        assert_eq!(last, FaultEvent::Heal);
        assert!(s.is_done());
    }

    #[test]
    fn net_applies_partition_and_heal() {
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 1);
        let handled = net.apply_fault(
            SimTime::ZERO,
            &FaultEvent::Partition(vec![NodeId(0), NodeId(1)]),
        );
        assert!(handled);
        assert!(net.is_partitioned(NodeId(0), NodeId(2)));
        assert!(net.is_partitioned(NodeId(1), NodeId(3)));
        assert!(
            !net.is_partitioned(NodeId(0), NodeId(1)),
            "links inside the set stay up"
        );
        assert!(
            !net.is_partitioned(NodeId(2), NodeId(3)),
            "complement links stay up"
        );
        assert!(net.apply_fault(SimTime::ZERO, &FaultEvent::Heal));
        assert!(!net.is_partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn net_declines_node_level_faults() {
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 1);
        assert!(!net.apply_fault(SimTime::ZERO, &FaultEvent::CrashNode(NodeId(0))));
        assert!(!net.apply_fault(SimTime::ZERO, &FaultEvent::RestartNode(NodeId(0))));
        let byz = FaultEvent::EquivocateProposer {
            node: NodeId(0),
            window: SimDuration::from_secs(1),
        };
        assert!(!byz.is_network_fault());
        assert!(!net.apply_fault(SimTime::ZERO, &byz));
        let dv = FaultEvent::DoubleVote {
            node: NodeId(0),
            window: SimDuration::from_secs(1),
        };
        assert!(!dv.is_network_fault());
        assert!(!net.apply_fault(SimTime::ZERO, &dv));
        // Membership churn is node-level too: the chain model routes it to
        // its consensus engine, never the network layer.
        for ev in [
            FaultEvent::JoinNode(NodeId(4)),
            FaultEvent::LeaveNode(NodeId(3)),
        ] {
            assert!(!ev.is_network_fault());
            assert!(!net.apply_fault(SimTime::ZERO, &ev));
        }
    }

    #[test]
    fn partition_window_isolates_then_heals() {
        let plan = FaultPlan::new().partition_window(
            &[NodeId(3)],
            SimTime::from_secs(4),
            SimTime::from_secs(8),
        );
        assert_eq!(plan.len(), 2);
        let mut s = FaultScheduler::new(plan);
        let (at, ev) = s.pop_due(SimTime::from_secs(20)).unwrap();
        assert_eq!(at, SimTime::from_secs(4));
        assert!(matches!(ev, FaultEvent::Partition(ref set) if set == &[NodeId(3)]));
        let (at, ev) = s.pop_due(SimTime::from_secs(20)).unwrap();
        assert_eq!((at, ev), (SimTime::from_secs(8), FaultEvent::Heal));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_partition_window_rejected() {
        let _ = FaultPlan::new().partition_window(
            &[NodeId(0)],
            SimTime::from_secs(5),
            SimTime::from_secs(5),
        );
    }

    #[test]
    fn churn_builders_schedule_in_order() {
        let plan = FaultPlan::new()
            .join_at(NodeId(4), SimTime::from_secs(5))
            .leave_at(NodeId(0), SimTime::from_secs(9));
        assert_eq!(plan.len(), 2);
        let mut s = FaultScheduler::new(plan);
        let (at, ev) = s.pop_due(SimTime::from_secs(20)).unwrap();
        assert_eq!(
            (at, ev),
            (SimTime::from_secs(5), FaultEvent::JoinNode(NodeId(4)))
        );
        let (at, ev) = s.pop_due(SimTime::from_secs(20)).unwrap();
        assert_eq!(
            (at, ev),
            (SimTime::from_secs(9), FaultEvent::LeaveNode(NodeId(0)))
        );
    }

    #[test]
    fn byzantine_window_arms_both_behaviours_per_node() {
        let plan = FaultPlan::new().byzantine_window(
            &[NodeId(0), NodeId(1)],
            SimTime::from_secs(5),
            SimTime::from_secs(9),
        );
        assert_eq!(plan.len(), 4);
        let w = SimDuration::from_secs(4);
        assert!(plan
            .events()
            .iter()
            .all(|(at, e)| *at == SimTime::from_secs(5)
                && matches!(
                    e,
                    FaultEvent::EquivocateProposer { window, .. }
                    | FaultEvent::DoubleVote { window, .. } if *window == w
                )));
    }

    #[test]
    fn loss_window_schedules_one_burst() {
        let plan =
            FaultPlan::new().loss_window(0.05, SimTime::from_secs(6), SimTime::from_secs(12));
        assert_eq!(plan.len(), 1);
        let (at, ev) = &plan.events()[0];
        assert_eq!(*at, SimTime::from_secs(6));
        assert!(matches!(
            ev,
            FaultEvent::LossBurst { p, window }
                if *p == 0.05 && *window == SimDuration::from_secs(6)
        ));
        // p = 0 is a legal baseline step.
        let baseline = FaultPlan::new().loss_window(0.0, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(baseline.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn loss_window_rejects_bad_probability() {
        let _ = FaultPlan::new().loss_window(1.5, SimTime::ZERO, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_loss_window_rejected() {
        let _ = FaultPlan::new().loss_window(0.1, SimTime::from_secs(3), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_byzantine_window_rejected() {
        let _ = FaultPlan::new().byzantine_window(
            &[NodeId(0)],
            SimTime::from_secs(5),
            SimTime::from_secs(5),
        );
    }

    #[test]
    fn same_timestamp_events_keep_insertion_order() {
        // Five events, four sharing t = 5 s across every event family, added
        // after a later event: the sort must be stable (time only), never
        // reordering ties by kind or payload.
        let t = SimTime::from_secs(5);
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(7), FaultEvent::Heal)
            .at(
                t,
                FaultEvent::DoubleVote {
                    node: NodeId(1),
                    window: SimDuration::from_secs(2),
                },
            )
            .at(t, FaultEvent::CrashNode(NodeId(0)))
            .at(
                t,
                FaultEvent::LossBurst {
                    p: 0.1,
                    window: SimDuration::from_secs(1),
                },
            )
            .at(t, FaultEvent::RestartNode(NodeId(0)));
        let drain = |plan: FaultPlan| {
            let mut s = FaultScheduler::new(plan);
            let mut order = Vec::new();
            while let Some((_, e)) = s.pop_due(SimTime::from_secs(10)) {
                order.push(e);
            }
            order
        };
        let a = drain(plan.clone());
        let b = drain(plan);
        assert_eq!(a, b, "rebuilding the scheduler must not reorder ties");
        assert!(matches!(a[0], FaultEvent::DoubleVote { .. }));
        assert!(matches!(a[1], FaultEvent::CrashNode(_)));
        assert!(matches!(a[2], FaultEvent::LossBurst { .. }));
        assert!(matches!(a[3], FaultEvent::RestartNode(_)));
        assert_eq!(a[4], FaultEvent::Heal);
    }

    #[test]
    fn loss_burst_expires_with_its_window() {
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 2);
        net.apply_fault(
            SimTime::ZERO,
            &FaultEvent::LossBurst {
                p: 1.0,
                window: SimDuration::from_secs(1),
            },
        );
        // During the burst, everything is dropped:
        net.send(NodeId(0), NodeId(1), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_dropped, 1);
        // After the window, delivery resumes:
        net.advance_to(SimTime::from_secs(2));
        net.send(NodeId(0), NodeId(1), 10, 2);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn latency_spike_stretches_deliveries_then_expires() {
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 3);
        net.apply_fault(
            SimTime::ZERO,
            &FaultEvent::LatencySpike {
                model: LatencyModel::Constant(SimDuration::from_millis(50)),
                window: SimDuration::from_secs(1),
            },
        );
        net.send(NodeId(0), NodeId(1), 0, 1);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(ev.at >= SimTime::from_millis(50), "spike latency applies");
        net.advance_to(SimTime::from_secs(2));
        let before = net.now();
        net.send(NodeId(0), NodeId(1), 0, 2);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(
            ev.at - before < SimDuration::from_millis(5),
            "spike expired"
        );
    }

    #[test]
    fn deterministic_replay_with_net_faults() {
        let run = || {
            let plan = FaultPlan::new()
                .at(
                    SimTime::from_millis(10),
                    FaultEvent::LossBurst {
                        p: 0.5,
                        window: SimDuration::from_millis(50),
                    },
                )
                .at(
                    SimTime::from_millis(30),
                    FaultEvent::Partition(vec![NodeId(3)]),
                )
                .at(SimTime::from_millis(60), FaultEvent::Heal);
            let mut sched = FaultScheduler::new(plan);
            let mut net: NetSim<u64> =
                NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 77);
            let mut log = Vec::new();
            for i in 0..200u64 {
                let at = SimTime::from_millis(i);
                net.advance_to(at);
                while let Some((fat, ev)) = sched.pop_due(at) {
                    net.apply_fault(fat, &ev);
                }
                net.send(NodeId((i % 4) as u32), NodeId(((i + 1) % 4) as u32), 64, i);
                while let Some(ev) = net.pop_at_or_before(at) {
                    log.push((ev.at, ev.dst, ev.msg));
                }
            }
            (log, net.stats())
        };
        assert_eq!(run(), run());
        let (_, stats) = run();
        assert!(stats.messages_dropped > 0, "the burst must drop something");
        assert!(
            stats.messages_partitioned > 0,
            "the partition must suppress something"
        );
    }
}
