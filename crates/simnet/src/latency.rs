//! Link latency distributions.
//!
//! The paper controls latency two ways: a low-latency data-center LAN for the
//! baseline experiments (§4.2), and `netem`-injected normally distributed
//! latency (μ = 12 ms, σ = 2 ms, derived from WonderNetwork's European
//! inter-city pings) for the latency-impact study (§5.8.1). [`LatencyModel`]
//! covers both plus the distributions useful for ablations.

use coconut_types::{SimDuration, SimRng};

/// A one-way link latency distribution, sampled per message.
///
/// # Example
///
/// ```
/// use coconut_simnet::LatencyModel;
/// use coconut_types::{SimDuration, SimRng};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let netem = LatencyModel::netem_paper();
/// let sample = netem.sample(&mut rng);
/// // Normally distributed around 12ms, essentially never below 2ms:
/// assert!(sample >= SimDuration::from_millis(2));
/// assert!(sample <= SimDuration::from_millis(25));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// No latency at all (loopback within a process).
    Zero,
    /// A fixed latency.
    Constant(SimDuration),
    /// Uniformly distributed between the two bounds (inclusive).
    Uniform(SimDuration, SimDuration),
    /// Normally distributed latency, the `netem` emulation of §5.8.1.
    /// Samples are truncated at zero.
    Normal {
        /// Mean latency.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
    },
}

impl LatencyModel {
    /// In-data-center LAN latency for the baseline setting: a constant
    /// 200 µs one-way delay between servers in the same facility.
    pub const fn lan() -> Self {
        LatencyModel::Constant(SimDuration::from_micros(200))
    }

    /// Latency between containers on the *same* server (loopback bridge).
    pub const fn local() -> Self {
        LatencyModel::Constant(SimDuration::from_micros(30))
    }

    /// The paper's netem setting: normal distribution with μ = 12 ms and
    /// σ = 2 ms (§5.8.1, derived from WonderNetwork European pings).
    pub const fn netem_paper() -> Self {
        LatencyModel::Normal {
            mean: SimDuration::from_millis(12),
            std_dev: SimDuration::from_millis(2),
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                SimDuration::from_micros(rng.gen_range_inclusive(lo.as_micros(), hi.as_micros()))
            }
            LatencyModel::Normal { mean, std_dev } => {
                let z = rng.gen_standard_normal();
                let us = mean.as_micros() as f64 + z * std_dev.as_micros() as f64;
                SimDuration::from_micros(us.max(0.0) as u64)
            }
        }
    }

    /// The distribution mean, used by models that need an a-priori latency
    /// estimate (e.g. consensus timeout configuration).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                SimDuration::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Normal { mean, .. } => mean,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn zero_and_constant() {
        let mut r = rng();
        assert_eq!(LatencyModel::Zero.sample(&mut r), SimDuration::ZERO);
        let c = LatencyModel::Constant(SimDuration::from_millis(3));
        assert_eq!(c.sample(&mut r), SimDuration::from_millis(3));
        assert_eq!(c.mean(), SimDuration::from_millis(3));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut r = rng();
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(5);
        let m = LatencyModel::Uniform(lo, hi);
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(m.mean(), SimDuration::from_millis(3));
    }

    #[test]
    fn uniform_swapped_bounds_are_normalized() {
        let mut r = rng();
        let m = LatencyModel::Uniform(SimDuration::from_millis(5), SimDuration::from_millis(1));
        let s = m.sample(&mut r);
        assert!(s >= SimDuration::from_millis(1) && s <= SimDuration::from_millis(5));
    }

    #[test]
    fn netem_matches_paper_parameters() {
        let m = LatencyModel::netem_paper();
        assert_eq!(m.mean(), SimDuration::from_millis(12));
    }

    #[test]
    fn normal_sample_statistics() {
        let mut r = rng();
        let m = LatencyModel::netem_paper();
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| m.sample(&mut r).as_secs_f64() * 1e3)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 0.1, "mean {mean} should be ≈ 12 ms");
        assert!(
            (var.sqrt() - 2.0).abs() < 0.1,
            "σ {} should be ≈ 2 ms",
            var.sqrt()
        );
    }

    #[test]
    fn normal_truncates_at_zero() {
        let mut r = rng();
        let m = LatencyModel::Normal {
            mean: SimDuration::from_micros(10),
            std_dev: SimDuration::from_millis(10),
        };
        for _ in 0..1000 {
            let _ = m.sample(&mut r); // must not panic / underflow
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LatencyModel::netem_paper();
        let a: Vec<_> = {
            let mut r = SimRng::seed_from_u64(3);
            (0..16).map(|_| m.sample(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = SimRng::seed_from_u64(3);
            (0..16).map(|_| m.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn presets() {
        assert_eq!(LatencyModel::lan().mean(), SimDuration::from_micros(200));
        assert_eq!(LatencyModel::local().mean(), SimDuration::from_micros(30));
        assert_eq!(LatencyModel::default(), LatencyModel::lan());
    }
}
