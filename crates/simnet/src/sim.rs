//! The simulation clock and typed event scheduling.

use coconut_types::{NodeId, SimDuration, SimTime};

use crate::queue::EventQueue;

/// An event delivered to a node at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// The node the event is addressed to.
    pub dst: NodeId,
    /// The message or timer payload.
    pub msg: M,
}

/// A discrete-event simulation: a monotone clock plus an event queue.
///
/// Popping an event advances the clock to the event's time; the clock never
/// moves backwards. Components schedule future events with [`Sim::schedule`]
/// (relative delay) or [`Sim::schedule_at`] (absolute time).
///
/// # Example
///
/// ```
/// use coconut_simnet::Sim;
/// use coconut_types::{NodeId, SimDuration, SimTime};
///
/// let mut sim: Sim<&str> = Sim::new();
/// sim.schedule(SimDuration::from_millis(5), NodeId(1), "timer");
/// let ev = sim.pop_before(SimTime::MAX).unwrap();
/// assert_eq!(ev.msg, "timer");
/// assert_eq!(sim.now(), SimTime::from_millis(5));
/// ```
#[derive(Debug, Clone)]
pub struct Sim<M> {
    now: SimTime,
    queue: EventQueue<(NodeId, M)>,
}

impl<M> Sim<M> {
    /// Creates a simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `msg` for `dst` after `delay` from now.
    pub fn schedule(&mut self, delay: SimDuration, dst: NodeId, msg: M) {
        self.queue.push(self.now + delay, (dst, msg));
    }

    /// Schedules `msg` for `dst` at the absolute time `at`.
    ///
    /// Times in the past are clamped to `now` (the event fires immediately
    /// on the next pop).
    pub fn schedule_at(&mut self, at: SimTime, dst: NodeId, msg: M) {
        self.queue.push(at.max(self.now), (dst, msg));
    }

    /// The due time of the next event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event if it is due strictly before `deadline`,
    /// advancing the clock to the event's time.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        let (at, (dst, msg)) = self.queue.pop_before(deadline)?;
        self.now = self.now.max(at);
        Some(Event {
            at: self.now,
            dst,
            msg,
        })
    }

    /// Pops the next event if it is due at or before `deadline`, advancing
    /// the clock to the event's time.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        let (at, (dst, msg)) = self.queue.pop_at_or_before(deadline)?;
        self.now = self.now.max(at);
        Some(Event {
            at: self.now,
            dst,
            msg,
        })
    }

    /// Advances the clock to `t` without processing events.
    ///
    /// Used by external drivers that interleave their own schedule (e.g.
    /// client submissions) with the simulation. The clock never moves
    /// backwards; an earlier `t` is ignored.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Discards all pending events (used when a system halts).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Sim::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_on_pop() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(SimDuration::from_secs(2), NodeId(0), 1);
        sim.schedule(SimDuration::from_secs(1), NodeId(1), 2);
        let e1 = sim.pop_before(SimTime::MAX).unwrap();
        assert_eq!((e1.dst, e1.msg), (NodeId(1), 2));
        assert_eq!(sim.now(), SimTime::from_secs(1));
        let e2 = sim.pop_before(SimTime::MAX).unwrap();
        assert_eq!((e2.dst, e2.msg), (NodeId(0), 1));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert!(sim.pop_before(SimTime::MAX).is_none());
    }

    #[test]
    fn deadline_is_exclusive_for_pop_before() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(SimDuration::from_secs(1), NodeId(0), 1);
        assert!(sim.pop_before(SimTime::from_secs(1)).is_none());
        assert!(sim.pop_at_or_before(SimTime::from_secs(1)).is_some());
    }

    #[test]
    fn schedule_at_clamps_past_times() {
        let mut sim: Sim<u32> = Sim::new();
        sim.advance_to(SimTime::from_secs(10));
        sim.schedule_at(SimTime::from_secs(1), NodeId(0), 7);
        let ev = sim.pop_before(SimTime::MAX).unwrap();
        assert_eq!(
            ev.at,
            SimTime::from_secs(10),
            "past events fire now, not in the past"
        );
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut sim: Sim<u32> = Sim::new();
        sim.advance_to(SimTime::from_secs(5));
        sim.advance_to(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn pending_and_clear() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(SimDuration::ZERO, NodeId(0), 1);
        sim.schedule(SimDuration::ZERO, NodeId(0), 2);
        assert_eq!(sim.pending(), 2);
        sim.clear();
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.next_event_time(), None);
    }
}
