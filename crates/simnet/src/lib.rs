//! Deterministic discrete-event network simulator.
//!
//! This crate is the substrate every modelled blockchain runs on. It replaces
//! the paper's physical testbed (six-to-ten dedicated servers, Docker, a
//! 1 Gbit/s LAN, and `netem` latency emulation) with a seeded
//! discrete-event simulation:
//!
//! * [`EventQueue`] — a deterministic time/sequence-ordered priority queue;
//! * [`Sim`] — the simulation clock plus typed event scheduling;
//! * [`LatencyModel`] — constant / uniform / normal (netem-equivalent) link
//!   latency distributions;
//! * [`Topology`] — node-to-server placement (round-robin, as in §5.8.2);
//! * [`NetSim`] — a network overlay on [`Sim`] that samples per-link latency,
//!   accounts for bandwidth, and can drop or partition traffic;
//! * [`FaultPlan`] / [`FaultScheduler`] — declarative, virtual-time-ordered
//!   fault campaigns (crashes, set-based partitions, loss bursts, latency
//!   spikes) replayed deterministically inside the event loop;
//! * gray failures — directional [`FaultEvent::AsymmetricPartition`]s,
//!   seeded [`FaultEvent::FlakyLink`] windows, [`FaultEvent::SlowNode`]
//!   stragglers whose timers and messages stretch instead of stopping, and a
//!   [`RegionMap`] WAN-latency overlay — all composable with the same plans.
//!
//! Determinism: with the same seed, the same sequence of `schedule`/`send`
//! calls yields the identical event order. Ties in virtual time are broken
//! by insertion sequence number.
//!
//! # Example
//!
//! ```
//! use coconut_simnet::{NetSim, NetConfig, Topology};
//! use coconut_types::{NodeId, SimTime};
//!
//! #[derive(Debug, Clone)]
//! enum Msg { Ping }
//!
//! let topo = Topology::round_robin(4, 4);
//! let mut net = NetSim::<Msg>::new(topo, NetConfig::lan(), 42);
//! net.send(NodeId(0), NodeId(1), 100, Msg::Ping);
//! let ev = net.pop_before(SimTime::MAX).expect("delivery scheduled");
//! assert_eq!(ev.dst, NodeId(1));
//! assert!(net.now() > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod latency;
pub mod net;
pub mod queue;
pub mod sim;
pub mod topology;

pub use fault::{ByzantineBehaviour, FaultEvent, FaultPlan, FaultScheduler};
pub use latency::LatencyModel;
pub use net::{NetConfig, NetSim, NetStats, RegionMap};
pub use queue::EventQueue;
pub use sim::{Event, Sim};
pub use topology::Topology;
