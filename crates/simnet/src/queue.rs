//! Deterministic event priority queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use coconut_types::SimTime;

/// A priority queue of timestamped items with deterministic FIFO
/// tie-breaking: items scheduled for the same instant pop in insertion
/// order.
///
/// # Example
///
/// ```
/// use coconut_simnet::EventQueue;
/// use coconut_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Removes and returns the earliest item, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// Removes and returns the earliest item only if it is due strictly
    /// before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t < deadline => self.pop(),
            _ => None,
        }
    }

    /// Removes and returns the earliest item only if it is due at or before
    /// `deadline`.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The due time of the earliest item, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every queued item.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for i in (0..10u64).rev() {
            q.push(SimTime::from_secs(i), i);
        }
        let mut last = None;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
        }
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "x");
        assert_eq!(q.pop_before(SimTime::from_secs(5)), None);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(5)),
            Some((SimTime::from_secs(5), "x"))
        );
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO + SimDuration::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pops_are_globally_sorted() {
        // Seeded randomized sweep (formerly a proptest).
        let mut gen = coconut_types::SimRng::seed_from_u64(42);
        for case in 0..64 {
            let n = gen.gen_range_inclusive(1, 199) as usize;
            let times: Vec<u64> = (0..n)
                .map(|_| gen.gen_range_inclusive(0, 999_999))
                .collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut popped = Vec::new();
            while let Some((t, _)) = q.pop() {
                popped.push(t);
            }
            let mut sorted = popped.clone();
            sorted.sort();
            assert_eq!(popped, sorted, "case {case}");
        }
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        for n in [1usize, 2, 17, 99] {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime::from_secs(1), i);
            }
            for i in 0..n {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }
}
