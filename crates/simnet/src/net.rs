//! The network overlay: latency, bandwidth, loss, partitions, statistics.

use std::collections::{HashMap, HashSet};

use coconut_types::{NodeId, SimDuration, SimRng, SimTime};

use crate::latency::LatencyModel;
use crate::sim::{Event, Sim};
use crate::topology::Topology;

/// Network configuration: per-link latency distributions, bandwidth, and
/// loss probability.
///
/// # Example
///
/// ```
/// use coconut_simnet::{LatencyModel, NetConfig};
///
/// // Baseline LAN, then the paper's netem overlay for §5.8.1:
/// let base = NetConfig::lan();
/// let emulated = NetConfig::lan().with_inter_server(LatencyModel::netem_paper());
/// assert!(emulated.inter_server.mean() > base.inter_server.mean());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Latency between containers on the same server.
    pub intra_server: LatencyModel,
    /// Latency between different servers.
    pub inter_server: LatencyModel,
    /// Link bandwidth in bits per second (the paper's servers have a
    /// 1 Gbit/s uplink); transmission delay = message bits / bandwidth.
    pub bandwidth_bps: u64,
    /// Probability that any given message is silently dropped.
    pub loss_probability: f64,
}

impl NetConfig {
    /// The paper's baseline data-center LAN: 200 µs inter-server, 30 µs
    /// intra-server, 1 Gbit/s, no loss.
    pub fn lan() -> Self {
        NetConfig {
            intra_server: LatencyModel::local(),
            inter_server: LatencyModel::lan(),
            bandwidth_bps: 1_000_000_000,
            loss_probability: 0.0,
        }
    }

    /// The §5.8.1 latency-emulation setting: netem N(12 ms, 2 ms) between
    /// servers, on top of the baseline LAN characteristics.
    pub fn emulated_latency() -> Self {
        NetConfig::lan().with_inter_server(LatencyModel::netem_paper())
    }

    /// Replaces the inter-server latency model.
    pub fn with_inter_server(mut self, model: LatencyModel) -> Self {
        self.inter_server = model;
        self
    }

    /// Replaces the intra-server latency model.
    pub fn with_intra_server(mut self, model: LatencyModel) -> Self {
        self.intra_server = model;
        self
    }

    /// Sets the link bandwidth in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.loss_probability = p;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lan()
    }
}

/// A region assignment plus a per-region-pair extra-latency matrix: the
/// regioned-WAN topology of the gray-failure experiments.
///
/// The map composes with — it does not replace — the configured
/// [`LatencyModel`]s: while active, [`RegionMap::extra`] is *added* to every
/// sampled link delay, so jitter distributions keep their shape and only the
/// deterministic cross-region propagation moves. Intra-region links (and
/// self-sends) gain nothing.
///
/// # Example
///
/// ```
/// use coconut_simnet::RegionMap;
/// use coconut_types::{NodeId, SimDuration};
///
/// // Four nodes round-robined over two regions, 80 ms inter-region RTT:
/// let map = RegionMap::round_robin(4, 2, SimDuration::from_millis(80));
/// assert_eq!(map.extra(NodeId(0), NodeId(2)), SimDuration::ZERO); // same region
/// assert_eq!(map.extra(NodeId(0), NodeId(1)), SimDuration::from_millis(40)); // one way
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionMap {
    /// `assignment[node] = region`.
    assignment: Vec<u32>,
    n_regions: u32,
    /// Row-major `n_regions × n_regions` one-way extra latency in µs.
    extra_us: Vec<u64>,
}

impl RegionMap {
    /// Builds a map from an explicit node→region assignment and a one-way
    /// extra-latency matrix (`extra_us[a * n_regions + b]`, µs).
    ///
    /// # Panics
    ///
    /// Panics if `n_regions` is zero, any assignment is out of range, or the
    /// matrix is not `n_regions²` long.
    pub fn new(assignment: Vec<u32>, n_regions: u32, extra_us: Vec<u64>) -> Self {
        assert!(n_regions > 0, "a region map needs at least one region");
        assert!(
            assignment.iter().all(|&r| r < n_regions),
            "region assignment out of range"
        );
        assert_eq!(
            extra_us.len(),
            (n_regions * n_regions) as usize,
            "latency matrix must be n_regions x n_regions"
        );
        RegionMap {
            assignment,
            n_regions,
            extra_us,
        }
    }

    /// The common symmetric case: `n_nodes` assigned round-robin over
    /// `n_regions` regions, every cross-region link adding half the given
    /// RTT each way and intra-region links adding nothing.
    pub fn round_robin(n_nodes: u32, n_regions: u32, inter_region_rtt: SimDuration) -> Self {
        assert!(n_regions > 0, "a region map needs at least one region");
        let one_way = SimDuration::from_micros(inter_region_rtt.as_micros() / 2);
        let mut extra_us = vec![0u64; (n_regions * n_regions) as usize];
        for a in 0..n_regions {
            for b in 0..n_regions {
                if a != b {
                    extra_us[(a * n_regions + b) as usize] = one_way.as_micros();
                }
            }
        }
        RegionMap {
            assignment: (0..n_nodes).map(|n| n % n_regions).collect(),
            n_regions,
            extra_us,
        }
    }

    /// The region `node` lives in (nodes beyond the assignment wrap
    /// round-robin, so late joiners are still placed deterministically).
    pub fn region_of(&self, node: NodeId) -> u32 {
        if self.assignment.is_empty() {
            return 0;
        }
        self.assignment[node.0 as usize % self.assignment.len()]
    }

    /// One-way extra propagation delay from `src` to `dst`.
    pub fn extra(&self, src: NodeId, dst: NodeId) -> SimDuration {
        let (a, b) = (self.region_of(src), self.region_of(dst));
        SimDuration::from_micros(self.extra_us[(a * self.n_regions + b) as usize])
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.n_regions
    }
}

/// Counters kept by [`NetSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages actually delivered (sent − dropped − partitioned).
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub messages_dropped: u64,
    /// Messages suppressed by an active partition.
    pub messages_partitioned: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
}

/// A simulated message-passing network between blockchain nodes.
///
/// Combines the event queue ([`Sim`]), node placement ([`Topology`]), and
/// link characteristics ([`NetConfig`]). All randomness comes from one
/// seeded RNG, so runs are reproducible.
///
/// # Example
///
/// ```
/// use coconut_simnet::{NetConfig, NetSim, Topology};
/// use coconut_types::{NodeId, SimTime};
///
/// let mut net = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 1);
/// net.broadcast(NodeId(0), 256, |_dst| "hello");
/// let mut delivered = 0;
/// while net.pop_before(SimTime::MAX).is_some() {
///     delivered += 1;
/// }
/// assert_eq!(delivered, 3, "broadcast reaches the other three nodes");
/// ```
#[derive(Debug)]
pub struct NetSim<M> {
    sim: Sim<M>,
    topology: Topology,
    config: NetConfig,
    rng: SimRng,
    stats: NetStats,
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Directional partitions: `(src, dst)` pairs whose `src → dst` traffic
    /// is suppressed while the reverse direction keeps flowing.
    asym_partitioned: HashSet<(NodeId, NodeId)>,
    /// Per-link flaky windows: unordered link → (drop probability, until).
    flaky: HashMap<(NodeId, NodeId), (f64, SimTime)>,
    /// Dedicated RNG stream for flaky-link draws, so arming a flaky window
    /// never perturbs the main stream's draw order (and therefore never
    /// shifts latency samples or baseline-loss decisions elsewhere).
    flaky_rng: SimRng,
    /// Stragglers: node → (stretch factor, until). While active, the node's
    /// timers and its messages (in both directions) take `factor ×` as long.
    slow: HashMap<NodeId, (f64, SimTime)>,
    /// Regioned-WAN latency overlay active until the given instant.
    region: Option<(RegionMap, SimTime)>,
    /// Elevated loss probability active until the given instant.
    loss_burst: Option<(f64, SimTime)>,
    /// Inter-server latency override active until the given instant.
    latency_spike: Option<(LatencyModel, SimTime)>,
}

impl<M> NetSim<M> {
    /// Creates a network over `topology` with the given `config` and RNG
    /// `seed`.
    pub fn new(topology: Topology, config: NetConfig, seed: u64) -> Self {
        NetSim {
            sim: Sim::new(),
            topology,
            config,
            rng: SimRng::seed_from_u64(seed),
            stats: NetStats::default(),
            partitioned: HashSet::new(),
            asym_partitioned: HashSet::new(),
            flaky: HashMap::new(),
            flaky_rng: SimRng::seed_from_u64(seed ^ 0xF1A6_F1A6_F1A6_F1A6),
            slow: HashMap::new(),
            region: None,
            loss_burst: None,
            latency_spike: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The node placement.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` of `bytes` payload size from `src` to `dst`.
    ///
    /// The message is subject to partition suppression, random loss, link
    /// latency, and transmission delay. Self-sends are delivered with
    /// loopback latency and are never lost.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, msg: M) {
        self.send_delayed(src, dst, SimDuration::ZERO, bytes, msg);
    }

    /// Like [`NetSim::send`] but with an additional sender-side delay before
    /// the message enters the link (e.g. CPU processing time before the
    /// reply is produced).
    pub fn send_delayed(
        &mut self,
        src: NodeId,
        dst: NodeId,
        extra: SimDuration,
        bytes: usize,
        msg: M,
    ) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if src != dst {
            if self.is_partitioned(src, dst) || self.asym_partitioned.contains(&(src, dst)) {
                self.stats.messages_partitioned += 1;
                return;
            }
            let p_loss = self.effective_loss_probability();
            if p_loss > 0.0 && self.rng.gen_f64() < p_loss {
                self.stats.messages_dropped += 1;
                return;
            }
            // Flaky-link draws come from a dedicated stream so arming a
            // window never shifts the main stream's draw order.
            if !self.flaky.is_empty() {
                if let Some(&(p, until)) = self.flaky.get(&ordered(src, dst)) {
                    if self.sim.now() < until && self.flaky_rng.gen_f64() < p {
                        self.stats.messages_dropped += 1;
                        return;
                    }
                }
            }
        }
        let mut delay = extra + self.link_delay(src, dst, bytes);
        let stretch = self.stretch(src).max(self.stretch(dst));
        if stretch > 1.0 {
            delay = delay.mul_f64(stretch);
        }
        self.stats.messages_delivered += 1;
        self.sim.schedule(delay, dst, msg);
    }

    /// Broadcasts to every node except `src`; `make_msg` builds the
    /// (possibly distinct) message per destination.
    pub fn broadcast<F>(&mut self, src: NodeId, bytes: usize, mut make_msg: F)
    where
        F: FnMut(NodeId) -> M,
    {
        for dst in 0..self.topology.node_count() {
            let dst = NodeId(dst);
            if dst != src {
                self.send(src, dst, bytes, make_msg(dst));
            }
        }
    }

    /// Broadcast with an additional sender-side delay (see
    /// [`NetSim::send_delayed`]).
    pub fn broadcast_delayed<F>(
        &mut self,
        src: NodeId,
        extra: SimDuration,
        bytes: usize,
        mut make_msg: F,
    ) where
        F: FnMut(NodeId) -> M,
    {
        for dst in 0..self.topology.node_count() {
            let dst = NodeId(dst);
            if dst != src {
                self.send_delayed(src, dst, extra, bytes, make_msg(dst));
            }
        }
    }

    /// Schedules a local timer at `dst` after `delay` (no network involved).
    ///
    /// A [`NetSim::slow_node`] window stretches the delay: a straggler's
    /// timers fire late, it does not stop. The stretch is decided at
    /// scheduling time (timers armed before the window opens fire on time).
    pub fn timer(&mut self, dst: NodeId, delay: SimDuration, msg: M) {
        let stretch = self.stretch(dst);
        let delay = if stretch > 1.0 {
            delay.mul_f64(stretch)
        } else {
            delay
        };
        self.sim.schedule(delay, dst, msg);
    }

    /// Schedules a local event at an absolute time. Under an active
    /// [`NetSim::slow_node`] window the *remaining* interval is stretched.
    pub fn timer_at(&mut self, dst: NodeId, at: SimTime, msg: M) {
        let stretch = self.stretch(dst);
        let at = if stretch > 1.0 && at > self.sim.now() {
            self.sim.now() + (at - self.sim.now()).mul_f64(stretch)
        } else {
            at
        };
        self.sim.schedule_at(at, dst, msg);
    }

    /// Pops the next due event strictly before `deadline`, advancing the
    /// clock (see [`Sim::pop_before`]).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        self.sim.pop_before(deadline)
    }

    /// Pops the next due event at or before `deadline`.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        self.sim.pop_at_or_before(deadline)
    }

    /// Due time of the next event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.sim.next_event_time()
    }

    /// Advances the clock without processing (driver interleaving).
    pub fn advance_to(&mut self, t: SimTime) {
        self.sim.advance_to(t);
    }

    /// Number of in-flight events.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// Cuts bidirectional connectivity between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.insert(ordered(a, b));
    }

    /// Set-based partition: isolates `set` from every node outside it.
    /// Links *within* the set (and within its complement) stay up.
    pub fn partition_isolate(&mut self, set: &[NodeId]) {
        let inside: HashSet<NodeId> = set.iter().copied().collect();
        for a in 0..self.topology.node_count() {
            let a = NodeId(a);
            if !inside.contains(&a) {
                continue;
            }
            for b in 0..self.topology.node_count() {
                let b = NodeId(b);
                if !inside.contains(&b) {
                    self.partitioned.insert(ordered(a, b));
                }
            }
        }
    }

    /// Directional partition: every `from → to` message is suppressed while
    /// `to → from` traffic keeps flowing (the classic gray failure of a
    /// half-open link or a broken NIC transmit queue).
    ///
    /// Directional and symmetric partitions compose as a union: a link is
    /// suppressed in a direction if *either* kind blocks it, and
    /// [`NetSim::heal`] / [`NetSim::heal_all`] clear both kinds, so a heal
    /// never leaves a half-open residue behind.
    pub fn partition_directional(&mut self, from: &[NodeId], to: &[NodeId]) {
        for &a in from {
            for &b in to {
                if a != b {
                    self.asym_partitioned.insert((a, b));
                }
            }
        }
    }

    /// `true` if `src → dst` traffic is currently suppressed in that
    /// direction only (symmetric partitions are reported by
    /// [`NetSim::is_partitioned`]).
    pub fn is_asym_partitioned(&self, src: NodeId, dst: NodeId) -> bool {
        self.asym_partitioned.contains(&(src, dst))
    }

    /// Arms a flaky window on the (bidirectional) link `a ↔ b`: until
    /// virtual time `until`, each message on the link is independently
    /// dropped with probability `p`, drawn from a dedicated seeded stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn flaky_link(&mut self, a: NodeId, b: NodeId, p: f64, until: SimTime) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.flaky.insert(ordered(a, b), (p, until));
    }

    /// Marks `node` as a straggler until virtual time `until`: its timers
    /// and every message it sends or receives take `factor ×` as long. The
    /// node keeps participating — gray failure, not a crash.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1.0`.
    pub fn slow_node(&mut self, node: NodeId, factor: f64, until: SimTime) {
        assert!(factor >= 1.0, "a slow-node factor must be >= 1");
        self.slow.insert(node, (factor, until));
    }

    /// Applies a regioned-WAN latency overlay until virtual time `until`:
    /// [`RegionMap::extra`] is added to every cross-region link delay on top
    /// of whatever latency model is in force.
    pub fn region_latency(&mut self, map: RegionMap, until: SimTime) {
        self.region = Some((map, until));
    }

    /// The active stretch factor for `node` (1.0 when it is healthy).
    pub fn stretch(&self, node: NodeId) -> f64 {
        match self.slow.get(&node) {
            Some(&(factor, until)) if self.sim.now() < until => factor,
            _ => 1.0,
        }
    }

    /// Removes every active partition at once — symmetric and directional —
    /// so a heal never leaves a half-open link behind.
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
        self.asym_partitioned.clear();
    }

    /// Raises the loss probability to `p` until virtual time `until`
    /// (whichever of `p` and the configured baseline is larger applies).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn loss_burst(&mut self, p: f64, until: SimTime) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.loss_burst = Some((p, until));
    }

    /// Overrides the inter-server latency model until virtual time `until`.
    pub fn latency_spike(&mut self, model: LatencyModel, until: SimTime) {
        self.latency_spike = Some((model, until));
    }

    /// The loss probability in force right now (baseline or active burst).
    fn effective_loss_probability(&mut self) -> f64 {
        match self.loss_burst {
            Some((p, until)) if self.sim.now() < until => p.max(self.config.loss_probability),
            Some((_, until)) if self.sim.now() >= until => {
                self.loss_burst = None;
                self.config.loss_probability
            }
            _ => self.config.loss_probability,
        }
    }

    /// Restores connectivity between `a` and `b` in both directions,
    /// clearing symmetric and directional suppression alike.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.remove(&ordered(a, b));
        self.asym_partitioned.remove(&(a, b));
        self.asym_partitioned.remove(&(b, a));
    }

    /// `true` if a partition currently suppresses `a` ↔ `b` traffic.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned.contains(&ordered(a, b))
    }

    /// One-way delay for a message of `bytes` from `src` to `dst`:
    /// propagation (sampled from the link's latency model) plus
    /// transmission (bytes at the configured bandwidth).
    fn link_delay(&mut self, src: NodeId, dst: NodeId, bytes: usize) -> SimDuration {
        let model = if src == dst || self.topology.same_server(src, dst) {
            self.config.intra_server
        } else {
            match self.latency_spike {
                Some((spike, until)) if self.sim.now() < until => spike,
                _ => self.config.inter_server,
            }
        };
        let propagation = model.sample(&mut self.rng);
        let transmission_us =
            (bytes as u64 * 8).saturating_mul(1_000_000) / self.config.bandwidth_bps;
        let regional = match &self.region {
            Some((map, until)) if self.sim.now() < *until => map.extra(src, dst),
            _ => SimDuration::ZERO,
        };
        propagation + SimDuration::from_micros(transmission_us) + regional
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_net() -> NetSim<u32> {
        NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 9)
    }

    #[test]
    fn send_delivers_after_latency() {
        let mut net = lan_net();
        net.send(NodeId(0), NodeId(1), 100, 7);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(ev.dst, NodeId(1));
        assert_eq!(ev.msg, 7);
        // 200µs propagation + 100B*8/1Gbps ≈ 0.8µs transmission
        assert!(ev.at >= SimTime::from_micros(200));
        assert!(ev.at < SimTime::from_micros(300));
    }

    #[test]
    fn intra_server_is_faster_than_inter_server() {
        let topo = Topology::explicit(vec![0, 0, 1]);
        let mut net: NetSim<u32> = NetSim::new(topo, NetConfig::lan(), 1);
        net.send(NodeId(0), NodeId(1), 0, 1); // same server
        net.send(NodeId(0), NodeId(2), 0, 2); // cross server
        let first = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(first.msg, 1, "loopback message arrives first");
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut net = lan_net();
        net.broadcast(NodeId(2), 10, |dst| dst.0);
        let mut dsts = Vec::new();
        while let Some(ev) = net.pop_before(SimTime::MAX) {
            dsts.push(ev.dst);
        }
        dsts.sort();
        assert_eq!(dsts, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(net.stats().messages_sent, 3);
        assert_eq!(net.stats().messages_delivered, 3);
    }

    #[test]
    fn partition_suppresses_and_heal_restores() {
        let mut net = lan_net();
        net.partition(NodeId(0), NodeId(1));
        assert!(
            net.is_partitioned(NodeId(1), NodeId(0)),
            "partitions are symmetric"
        );
        net.send(NodeId(0), NodeId(1), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_partitioned, 1);

        net.heal(NodeId(1), NodeId(0));
        net.send(NodeId(0), NodeId(1), 10, 2);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn loss_probability_drops_messages() {
        let cfg = NetConfig::lan().with_loss_probability(1.0);
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(1), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_dropped, 1);
    }

    #[test]
    fn self_send_is_never_lost() {
        let cfg = NetConfig::lan().with_loss_probability(1.0);
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(0), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn transmission_delay_scales_with_size() {
        let cfg = NetConfig::lan().with_bandwidth_bps(8_000_000); // 1 MB/s
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(1), 1_000_000, 1); // 1 MB → 1 s transmission
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(ev.at >= SimTime::from_secs(1));
    }

    #[test]
    fn timers_fire_locally() {
        let mut net = lan_net();
        net.timer(NodeId(3), SimDuration::from_millis(10), 42);
        net.timer_at(NodeId(2), SimTime::from_millis(5), 41);
        let first = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((first.dst, first.msg), (NodeId(2), 41));
        let second = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((second.dst, second.msg), (NodeId(3), 42));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut net: NetSim<u32> = NetSim::new(
                Topology::paper_baseline(),
                NetConfig::emulated_latency(),
                seed,
            );
            for i in 0..50 {
                net.send(NodeId(i % 4), NodeId((i + 1) % 4), 64, i);
            }
            let mut log = Vec::new();
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                log.push((ev.at, ev.dst, ev.msg));
            }
            log
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fractional_loss_is_seed_deterministic() {
        let run = |seed| {
            let cfg = NetConfig::lan().with_loss_probability(0.5);
            let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, seed);
            for i in 0..200u32 {
                net.send(NodeId(i % 4), NodeId((i + 1) % 4), 32, i);
            }
            let mut delivered = Vec::new();
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                delivered.push(ev.msg);
            }
            (delivered, net.stats().messages_dropped)
        };
        let (a, dropped_a) = run(9);
        let (b, dropped_b) = run(9);
        assert_eq!(a, b, "the same seed must drop the same messages");
        assert_eq!(dropped_a, dropped_b);
        assert!(
            (50..150).contains(&dropped_a),
            "p = 0.5 should drop roughly half of 200: {dropped_a}"
        );
        assert_ne!(
            a,
            run(10).0,
            "a different seed draws a different loss pattern"
        );
    }

    #[test]
    fn config_builder_validation() {
        let c = NetConfig::lan()
            .with_bandwidth_bps(10)
            .with_loss_probability(0.5)
            .with_intra_server(LatencyModel::Zero);
        assert_eq!(c.bandwidth_bps, 10);
        assert_eq!(c.loss_probability, 0.5);
        assert_eq!(c.intra_server, LatencyModel::Zero);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_probability_rejected() {
        let _ = NetConfig::lan().with_loss_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = NetConfig::lan().with_bandwidth_bps(0);
    }

    #[test]
    fn asym_partition_drops_forward_and_delivers_reverse() {
        // Property sweep: under AsymmetricPartition{a→b}, every a→b send is
        // suppressed and every b→a send is delivered, whatever the payload
        // sizes and interleaving.
        let mut gen = coconut_types::SimRng::seed_from_u64(77);
        for case in 0..32 {
            let mut net: NetSim<u32> = lan_net();
            net.partition_directional(&[NodeId(0)], &[NodeId(1)]);
            let n = gen.gen_range_inclusive(1, 40);
            let mut forward = 0u64;
            let mut reverse = 0u64;
            for i in 0..n {
                let bytes = gen.gen_range_inclusive(0, 2048) as usize;
                if gen.gen_bool(0.5) {
                    net.send(NodeId(0), NodeId(1), bytes, i as u32);
                    forward += 1;
                } else {
                    net.send(NodeId(1), NodeId(0), bytes, i as u32);
                    reverse += 1;
                }
            }
            let mut delivered = 0u64;
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                assert_eq!(ev.dst, NodeId(0), "case {case}: only b→a may deliver");
                delivered += 1;
            }
            assert_eq!(delivered, reverse, "case {case}");
            assert_eq!(net.stats().messages_partitioned, forward, "case {case}");
        }
    }

    #[test]
    fn asym_partition_is_directional_and_heals() {
        let mut net = lan_net();
        net.partition_directional(&[NodeId(0)], &[NodeId(1)]);
        assert!(net.is_asym_partitioned(NodeId(0), NodeId(1)));
        assert!(!net.is_asym_partitioned(NodeId(1), NodeId(0)));
        assert!(
            !net.is_partitioned(NodeId(0), NodeId(1)),
            "directional suppression is not a symmetric partition"
        );
        net.heal(NodeId(0), NodeId(1));
        net.send(NodeId(0), NodeId(1), 8, 1);
        assert!(
            net.pop_before(SimTime::MAX).is_some(),
            "heal clears the half-open link"
        );
    }

    #[test]
    fn symmetric_and_asym_partitions_union_and_heal_together() {
        let mut net = lan_net();
        net.partition(NodeId(0), NodeId(1));
        net.partition_directional(&[NodeId(0)], &[NodeId(1)]);
        // Both kinds block 0→1; the symmetric one also blocks 1→0.
        net.send(NodeId(0), NodeId(1), 8, 1);
        net.send(NodeId(1), NodeId(0), 8, 2);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_partitioned, 2);
        // A global heal removes both kinds at once — no half-open residue.
        net.heal_all();
        net.send(NodeId(0), NodeId(1), 8, 3);
        net.send(NodeId(1), NodeId(0), 8, 4);
        let mut n = 0;
        while net.pop_before(SimTime::MAX).is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn flaky_link_drops_only_on_that_link_and_expires() {
        let mut net = lan_net();
        net.flaky_link(NodeId(0), NodeId(1), 1.0, SimTime::from_secs(1));
        net.send(NodeId(0), NodeId(1), 8, 1); // dropped (p = 1)
        net.send(NodeId(1), NodeId(0), 8, 2); // dropped (link is bidirectional)
        net.send(NodeId(2), NodeId(3), 8, 3); // other link unaffected
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(ev.msg, 3);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_dropped, 2);
        // After the window the link is healthy again.
        net.advance_to(SimTime::from_secs(2));
        net.send(NodeId(0), NodeId(1), 8, 4);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn flaky_draws_never_perturb_the_main_stream() {
        // Delivery times of traffic on *other* links must be bit-identical
        // whether or not a flaky window is armed somewhere else: the flaky
        // stream is separate, so golden runs stay byte-stable.
        let run = |armed: bool| {
            let mut net: NetSim<u32> = lan_net();
            if armed {
                net.flaky_link(NodeId(0), NodeId(1), 0.9, SimTime::from_secs(60));
            }
            let mut log = Vec::new();
            for i in 0..100 {
                net.send(NodeId(2), NodeId(3), 64, i);
            }
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                log.push((ev.at, ev.msg));
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn flaky_link_is_seed_deterministic() {
        let run = || {
            let mut net: NetSim<u32> = lan_net();
            net.flaky_link(NodeId(0), NodeId(1), 0.5, SimTime::from_secs(60));
            let mut got = Vec::new();
            for i in 0..200 {
                net.send(NodeId(0), NodeId(1), 8, i);
            }
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                got.push(ev.msg);
            }
            (got, net.stats().messages_dropped)
        };
        let (a, dropped) = run();
        assert_eq!(run(), (a, dropped));
        assert!(
            (50..150).contains(&dropped),
            "p = 0.5 should drop roughly half: {dropped}"
        );
    }

    #[test]
    fn slow_node_stretches_timers_and_messages_then_recovers() {
        let mut net = lan_net();
        net.slow_node(NodeId(1), 10.0, SimTime::from_secs(5));
        // A healthy node's timer is untouched; the straggler's stretches.
        net.timer(NodeId(0), SimDuration::from_millis(10), 1);
        net.timer(NodeId(1), SimDuration::from_millis(10), 2);
        let first = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((first.dst, first.msg), (NodeId(0), 1));
        assert_eq!(first.at, SimTime::from_millis(10));
        let second = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((second.dst, second.msg), (NodeId(1), 2));
        assert_eq!(second.at, SimTime::from_millis(100), "10× stretch");
        // Messages to or from the straggler stretch too.
        net.send(NodeId(0), NodeId(1), 0, 3);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(
            ev.at - second.at >= SimDuration::from_millis(2),
            "LAN latency (200 µs) stretched 10× = 2 ms: {:?}",
            ev.at - second.at
        );
        // After the window closes the node is healthy again.
        net.advance_to(SimTime::from_secs(6));
        assert_eq!(net.stretch(NodeId(1)), 1.0);
        net.timer(NodeId(1), SimDuration::from_millis(10), 4);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(ev.at, SimTime::from_secs(6) + SimDuration::from_millis(10));
    }

    #[test]
    fn slow_node_stretches_absolute_timers_by_remaining_interval() {
        let mut net = lan_net();
        net.advance_to(SimTime::from_secs(1));
        net.slow_node(NodeId(0), 3.0, SimTime::from_secs(60));
        // 500 ms remaining, stretched 3× → fires at 1 s + 1.5 s.
        net.timer_at(NodeId(0), SimTime::from_millis(1500), 1);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(ev.at, SimTime::from_millis(2500));
    }

    #[test]
    fn region_map_adds_cross_region_latency_until_expiry() {
        let map = RegionMap::round_robin(4, 2, SimDuration::from_millis(80));
        let mut net = lan_net();
        net.region_latency(map, SimTime::from_secs(1));
        // Nodes 0 and 2 share a region; 0 and 1 do not.
        net.send(NodeId(0), NodeId(2), 0, 1);
        let same = net.pop_before(SimTime::MAX).unwrap();
        assert!(same.at < SimTime::from_millis(5), "intra-region stays LAN");
        let before = net.now();
        net.send(NodeId(0), NodeId(1), 0, 2);
        let cross = net.pop_before(SimTime::MAX).unwrap();
        assert!(
            cross.at - before >= SimDuration::from_millis(40),
            "one-way inter-region extra is RTT/2"
        );
        // Past the window the overlay expires.
        net.advance_to(SimTime::from_secs(2));
        let before = net.now();
        net.send(NodeId(0), NodeId(1), 0, 3);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(ev.at - before < SimDuration::from_millis(5));
    }

    #[test]
    fn region_map_explicit_matrix_is_asymmetric_capable() {
        // A deliberately asymmetric matrix: region 0 → 1 is slow, 1 → 0 fast.
        let map = RegionMap::new(vec![0, 1], 2, vec![0, 30_000, 5_000, 0]);
        assert_eq!(
            map.extra(NodeId(0), NodeId(1)),
            SimDuration::from_millis(30)
        );
        assert_eq!(map.extra(NodeId(1), NodeId(0)), SimDuration::from_millis(5));
        assert_eq!(map.regions(), 2);
        // Nodes beyond the assignment wrap deterministically.
        assert_eq!(map.region_of(NodeId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "n_regions x n_regions")]
    fn region_map_rejects_bad_matrix() {
        let _ = RegionMap::new(vec![0, 1], 2, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn slow_node_rejects_sub_unit_factor() {
        let mut net = lan_net();
        net.slow_node(NodeId(0), 0.5, SimTime::from_secs(1));
    }

    #[test]
    fn all_unpartitioned_lossless_messages_deliver() {
        // Randomized-but-seeded sweep (formerly a proptest): every message
        // on a lossless, unpartitioned LAN must be delivered.
        let mut gen = coconut_types::SimRng::seed_from_u64(1234);
        for case in 0..64 {
            let n = gen.gen_range_inclusive(1, 99) as usize;
            let sends: Vec<(u32, u32, usize)> = (0..n)
                .map(|_| {
                    (
                        gen.gen_range_inclusive(0, 3) as u32,
                        gen.gen_range_inclusive(0, 3) as u32,
                        gen.gen_range_inclusive(0, 4095) as usize,
                    )
                })
                .collect();
            let mut net: NetSim<usize> =
                NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 11);
            for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
                net.send(NodeId(src), NodeId(dst), bytes, i);
            }
            let mut count = 0;
            while net.pop_before(SimTime::MAX).is_some() {
                count += 1;
            }
            assert_eq!(count, sends.len(), "case {case}");
            assert_eq!(net.stats().messages_delivered, sends.len() as u64);
        }
    }
}
