//! The network overlay: latency, bandwidth, loss, partitions, statistics.

use std::collections::HashSet;

use coconut_types::{NodeId, SimDuration, SimRng, SimTime};

use crate::latency::LatencyModel;
use crate::sim::{Event, Sim};
use crate::topology::Topology;

/// Network configuration: per-link latency distributions, bandwidth, and
/// loss probability.
///
/// # Example
///
/// ```
/// use coconut_simnet::{LatencyModel, NetConfig};
///
/// // Baseline LAN, then the paper's netem overlay for §5.8.1:
/// let base = NetConfig::lan();
/// let emulated = NetConfig::lan().with_inter_server(LatencyModel::netem_paper());
/// assert!(emulated.inter_server.mean() > base.inter_server.mean());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Latency between containers on the same server.
    pub intra_server: LatencyModel,
    /// Latency between different servers.
    pub inter_server: LatencyModel,
    /// Link bandwidth in bits per second (the paper's servers have a
    /// 1 Gbit/s uplink); transmission delay = message bits / bandwidth.
    pub bandwidth_bps: u64,
    /// Probability that any given message is silently dropped.
    pub loss_probability: f64,
}

impl NetConfig {
    /// The paper's baseline data-center LAN: 200 µs inter-server, 30 µs
    /// intra-server, 1 Gbit/s, no loss.
    pub fn lan() -> Self {
        NetConfig {
            intra_server: LatencyModel::local(),
            inter_server: LatencyModel::lan(),
            bandwidth_bps: 1_000_000_000,
            loss_probability: 0.0,
        }
    }

    /// The §5.8.1 latency-emulation setting: netem N(12 ms, 2 ms) between
    /// servers, on top of the baseline LAN characteristics.
    pub fn emulated_latency() -> Self {
        NetConfig::lan().with_inter_server(LatencyModel::netem_paper())
    }

    /// Replaces the inter-server latency model.
    pub fn with_inter_server(mut self, model: LatencyModel) -> Self {
        self.inter_server = model;
        self
    }

    /// Replaces the intra-server latency model.
    pub fn with_intra_server(mut self, model: LatencyModel) -> Self {
        self.intra_server = model;
        self
    }

    /// Sets the link bandwidth in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.loss_probability = p;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lan()
    }
}

/// Counters kept by [`NetSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages actually delivered (sent − dropped − partitioned).
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub messages_dropped: u64,
    /// Messages suppressed by an active partition.
    pub messages_partitioned: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
}

/// A simulated message-passing network between blockchain nodes.
///
/// Combines the event queue ([`Sim`]), node placement ([`Topology`]), and
/// link characteristics ([`NetConfig`]). All randomness comes from one
/// seeded RNG, so runs are reproducible.
///
/// # Example
///
/// ```
/// use coconut_simnet::{NetConfig, NetSim, Topology};
/// use coconut_types::{NodeId, SimTime};
///
/// let mut net = NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 1);
/// net.broadcast(NodeId(0), 256, |_dst| "hello");
/// let mut delivered = 0;
/// while net.pop_before(SimTime::MAX).is_some() {
///     delivered += 1;
/// }
/// assert_eq!(delivered, 3, "broadcast reaches the other three nodes");
/// ```
#[derive(Debug)]
pub struct NetSim<M> {
    sim: Sim<M>,
    topology: Topology,
    config: NetConfig,
    rng: SimRng,
    stats: NetStats,
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Elevated loss probability active until the given instant.
    loss_burst: Option<(f64, SimTime)>,
    /// Inter-server latency override active until the given instant.
    latency_spike: Option<(LatencyModel, SimTime)>,
}

impl<M> NetSim<M> {
    /// Creates a network over `topology` with the given `config` and RNG
    /// `seed`.
    pub fn new(topology: Topology, config: NetConfig, seed: u64) -> Self {
        NetSim {
            sim: Sim::new(),
            topology,
            config,
            rng: SimRng::seed_from_u64(seed),
            stats: NetStats::default(),
            partitioned: HashSet::new(),
            loss_burst: None,
            latency_spike: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The node placement.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` of `bytes` payload size from `src` to `dst`.
    ///
    /// The message is subject to partition suppression, random loss, link
    /// latency, and transmission delay. Self-sends are delivered with
    /// loopback latency and are never lost.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, msg: M) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if src != dst {
            if self.is_partitioned(src, dst) {
                self.stats.messages_partitioned += 1;
                return;
            }
            let p_loss = self.effective_loss_probability();
            if p_loss > 0.0 && self.rng.gen_f64() < p_loss {
                self.stats.messages_dropped += 1;
                return;
            }
        }
        let delay = self.link_delay(src, dst, bytes);
        self.stats.messages_delivered += 1;
        self.sim.schedule(delay, dst, msg);
    }

    /// Like [`NetSim::send`] but with an additional sender-side delay before
    /// the message enters the link (e.g. CPU processing time before the
    /// reply is produced).
    pub fn send_delayed(
        &mut self,
        src: NodeId,
        dst: NodeId,
        extra: SimDuration,
        bytes: usize,
        msg: M,
    ) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if src != dst {
            if self.is_partitioned(src, dst) {
                self.stats.messages_partitioned += 1;
                return;
            }
            let p_loss = self.effective_loss_probability();
            if p_loss > 0.0 && self.rng.gen_f64() < p_loss {
                self.stats.messages_dropped += 1;
                return;
            }
        }
        let delay = extra + self.link_delay(src, dst, bytes);
        self.stats.messages_delivered += 1;
        self.sim.schedule(delay, dst, msg);
    }

    /// Broadcasts to every node except `src`; `make_msg` builds the
    /// (possibly distinct) message per destination.
    pub fn broadcast<F>(&mut self, src: NodeId, bytes: usize, mut make_msg: F)
    where
        F: FnMut(NodeId) -> M,
    {
        for dst in 0..self.topology.node_count() {
            let dst = NodeId(dst);
            if dst != src {
                self.send(src, dst, bytes, make_msg(dst));
            }
        }
    }

    /// Broadcast with an additional sender-side delay (see
    /// [`NetSim::send_delayed`]).
    pub fn broadcast_delayed<F>(
        &mut self,
        src: NodeId,
        extra: SimDuration,
        bytes: usize,
        mut make_msg: F,
    ) where
        F: FnMut(NodeId) -> M,
    {
        for dst in 0..self.topology.node_count() {
            let dst = NodeId(dst);
            if dst != src {
                self.send_delayed(src, dst, extra, bytes, make_msg(dst));
            }
        }
    }

    /// Schedules a local timer at `dst` after `delay` (no network involved).
    pub fn timer(&mut self, dst: NodeId, delay: SimDuration, msg: M) {
        self.sim.schedule(delay, dst, msg);
    }

    /// Schedules a local event at an absolute time.
    pub fn timer_at(&mut self, dst: NodeId, at: SimTime, msg: M) {
        self.sim.schedule_at(at, dst, msg);
    }

    /// Pops the next due event strictly before `deadline`, advancing the
    /// clock (see [`Sim::pop_before`]).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        self.sim.pop_before(deadline)
    }

    /// Pops the next due event at or before `deadline`.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        self.sim.pop_at_or_before(deadline)
    }

    /// Due time of the next event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.sim.next_event_time()
    }

    /// Advances the clock without processing (driver interleaving).
    pub fn advance_to(&mut self, t: SimTime) {
        self.sim.advance_to(t);
    }

    /// Number of in-flight events.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// Cuts bidirectional connectivity between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.insert(ordered(a, b));
    }

    /// Set-based partition: isolates `set` from every node outside it.
    /// Links *within* the set (and within its complement) stay up.
    pub fn partition_isolate(&mut self, set: &[NodeId]) {
        let inside: HashSet<NodeId> = set.iter().copied().collect();
        for a in 0..self.topology.node_count() {
            let a = NodeId(a);
            if !inside.contains(&a) {
                continue;
            }
            for b in 0..self.topology.node_count() {
                let b = NodeId(b);
                if !inside.contains(&b) {
                    self.partitioned.insert(ordered(a, b));
                }
            }
        }
    }

    /// Removes every active partition at once.
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
    }

    /// Raises the loss probability to `p` until virtual time `until`
    /// (whichever of `p` and the configured baseline is larger applies).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn loss_burst(&mut self, p: f64, until: SimTime) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.loss_burst = Some((p, until));
    }

    /// Overrides the inter-server latency model until virtual time `until`.
    pub fn latency_spike(&mut self, model: LatencyModel, until: SimTime) {
        self.latency_spike = Some((model, until));
    }

    /// The loss probability in force right now (baseline or active burst).
    fn effective_loss_probability(&mut self) -> f64 {
        match self.loss_burst {
            Some((p, until)) if self.sim.now() < until => p.max(self.config.loss_probability),
            Some((_, until)) if self.sim.now() >= until => {
                self.loss_burst = None;
                self.config.loss_probability
            }
            _ => self.config.loss_probability,
        }
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.remove(&ordered(a, b));
    }

    /// `true` if a partition currently suppresses `a` ↔ `b` traffic.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned.contains(&ordered(a, b))
    }

    /// One-way delay for a message of `bytes` from `src` to `dst`:
    /// propagation (sampled from the link's latency model) plus
    /// transmission (bytes at the configured bandwidth).
    fn link_delay(&mut self, src: NodeId, dst: NodeId, bytes: usize) -> SimDuration {
        let model = if src == dst || self.topology.same_server(src, dst) {
            self.config.intra_server
        } else {
            match self.latency_spike {
                Some((spike, until)) if self.sim.now() < until => spike,
                _ => self.config.inter_server,
            }
        };
        let propagation = model.sample(&mut self.rng);
        let transmission_us =
            (bytes as u64 * 8).saturating_mul(1_000_000) / self.config.bandwidth_bps;
        propagation + SimDuration::from_micros(transmission_us)
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_net() -> NetSim<u32> {
        NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 9)
    }

    #[test]
    fn send_delivers_after_latency() {
        let mut net = lan_net();
        net.send(NodeId(0), NodeId(1), 100, 7);
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(ev.dst, NodeId(1));
        assert_eq!(ev.msg, 7);
        // 200µs propagation + 100B*8/1Gbps ≈ 0.8µs transmission
        assert!(ev.at >= SimTime::from_micros(200));
        assert!(ev.at < SimTime::from_micros(300));
    }

    #[test]
    fn intra_server_is_faster_than_inter_server() {
        let topo = Topology::explicit(vec![0, 0, 1]);
        let mut net: NetSim<u32> = NetSim::new(topo, NetConfig::lan(), 1);
        net.send(NodeId(0), NodeId(1), 0, 1); // same server
        net.send(NodeId(0), NodeId(2), 0, 2); // cross server
        let first = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!(first.msg, 1, "loopback message arrives first");
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut net = lan_net();
        net.broadcast(NodeId(2), 10, |dst| dst.0);
        let mut dsts = Vec::new();
        while let Some(ev) = net.pop_before(SimTime::MAX) {
            dsts.push(ev.dst);
        }
        dsts.sort();
        assert_eq!(dsts, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(net.stats().messages_sent, 3);
        assert_eq!(net.stats().messages_delivered, 3);
    }

    #[test]
    fn partition_suppresses_and_heal_restores() {
        let mut net = lan_net();
        net.partition(NodeId(0), NodeId(1));
        assert!(
            net.is_partitioned(NodeId(1), NodeId(0)),
            "partitions are symmetric"
        );
        net.send(NodeId(0), NodeId(1), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_partitioned, 1);

        net.heal(NodeId(1), NodeId(0));
        net.send(NodeId(0), NodeId(1), 10, 2);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn loss_probability_drops_messages() {
        let cfg = NetConfig::lan().with_loss_probability(1.0);
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(1), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_none());
        assert_eq!(net.stats().messages_dropped, 1);
    }

    #[test]
    fn self_send_is_never_lost() {
        let cfg = NetConfig::lan().with_loss_probability(1.0);
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(0), 10, 1);
        assert!(net.pop_before(SimTime::MAX).is_some());
    }

    #[test]
    fn transmission_delay_scales_with_size() {
        let cfg = NetConfig::lan().with_bandwidth_bps(8_000_000); // 1 MB/s
        let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, 5);
        net.send(NodeId(0), NodeId(1), 1_000_000, 1); // 1 MB → 1 s transmission
        let ev = net.pop_before(SimTime::MAX).unwrap();
        assert!(ev.at >= SimTime::from_secs(1));
    }

    #[test]
    fn timers_fire_locally() {
        let mut net = lan_net();
        net.timer(NodeId(3), SimDuration::from_millis(10), 42);
        net.timer_at(NodeId(2), SimTime::from_millis(5), 41);
        let first = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((first.dst, first.msg), (NodeId(2), 41));
        let second = net.pop_before(SimTime::MAX).unwrap();
        assert_eq!((second.dst, second.msg), (NodeId(3), 42));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut net: NetSim<u32> = NetSim::new(
                Topology::paper_baseline(),
                NetConfig::emulated_latency(),
                seed,
            );
            for i in 0..50 {
                net.send(NodeId(i % 4), NodeId((i + 1) % 4), 64, i);
            }
            let mut log = Vec::new();
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                log.push((ev.at, ev.dst, ev.msg));
            }
            log
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fractional_loss_is_seed_deterministic() {
        let run = |seed| {
            let cfg = NetConfig::lan().with_loss_probability(0.5);
            let mut net: NetSim<u32> = NetSim::new(Topology::paper_baseline(), cfg, seed);
            for i in 0..200u32 {
                net.send(NodeId(i % 4), NodeId((i + 1) % 4), 32, i);
            }
            let mut delivered = Vec::new();
            while let Some(ev) = net.pop_before(SimTime::MAX) {
                delivered.push(ev.msg);
            }
            (delivered, net.stats().messages_dropped)
        };
        let (a, dropped_a) = run(9);
        let (b, dropped_b) = run(9);
        assert_eq!(a, b, "the same seed must drop the same messages");
        assert_eq!(dropped_a, dropped_b);
        assert!(
            (50..150).contains(&dropped_a),
            "p = 0.5 should drop roughly half of 200: {dropped_a}"
        );
        assert_ne!(
            a,
            run(10).0,
            "a different seed draws a different loss pattern"
        );
    }

    #[test]
    fn config_builder_validation() {
        let c = NetConfig::lan()
            .with_bandwidth_bps(10)
            .with_loss_probability(0.5)
            .with_intra_server(LatencyModel::Zero);
        assert_eq!(c.bandwidth_bps, 10);
        assert_eq!(c.loss_probability, 0.5);
        assert_eq!(c.intra_server, LatencyModel::Zero);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_probability_rejected() {
        let _ = NetConfig::lan().with_loss_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = NetConfig::lan().with_bandwidth_bps(0);
    }

    #[test]
    fn all_unpartitioned_lossless_messages_deliver() {
        // Randomized-but-seeded sweep (formerly a proptest): every message
        // on a lossless, unpartitioned LAN must be delivered.
        let mut gen = coconut_types::SimRng::seed_from_u64(1234);
        for case in 0..64 {
            let n = gen.gen_range_inclusive(1, 99) as usize;
            let sends: Vec<(u32, u32, usize)> = (0..n)
                .map(|_| {
                    (
                        gen.gen_range_inclusive(0, 3) as u32,
                        gen.gen_range_inclusive(0, 3) as u32,
                        gen.gen_range_inclusive(0, 4095) as usize,
                    )
                })
                .collect();
            let mut net: NetSim<usize> =
                NetSim::new(Topology::paper_baseline(), NetConfig::lan(), 11);
            for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
                net.send(NodeId(src), NodeId(dst), bytes, i);
            }
            let mut count = 0;
            while net.pop_before(SimTime::MAX).is_some() {
                count += 1;
            }
            assert_eq!(count, sends.len(), "case {case}");
            assert_eq!(net.stats().messages_delivered, sends.len() as u64);
        }
    }
}
