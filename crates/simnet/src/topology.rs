//! Node-to-server placement.
//!
//! The paper's baseline deployment (§4.2) places four blockchain nodes on
//! four dedicated servers; the scalability study (§5.8.2) distributes 8, 16
//! and 32 nodes round-robin across eight servers with at most four nodes per
//! server. Placement matters because containers on the same server talk over
//! loopback while cross-server traffic crosses the LAN (and the emulated
//! netem latency).

use coconut_types::NodeId;

/// Placement of blockchain nodes onto physical servers.
///
/// # Example
///
/// ```
/// use coconut_simnet::Topology;
/// use coconut_types::NodeId;
///
/// // The paper's scalability placement: 8 nodes round-robin on 8 servers.
/// let t = Topology::round_robin(8, 8);
/// assert_eq!(t.node_count(), 8);
/// assert_eq!(t.server_of(NodeId(3)), 3);
/// assert!(!t.same_server(NodeId(0), NodeId(1)));
///
/// // 32 nodes on 8 servers: nodes 0 and 8 share server 0.
/// let t = Topology::round_robin(32, 8);
/// assert!(t.same_server(NodeId(0), NodeId(8)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    server_of: Vec<u32>,
    server_count: u32,
}

impl Topology {
    /// Places `nodes` round-robin across `servers` servers (node *i* goes to
    /// server *i mod servers*), the procedure of §5.8.2.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `servers` is zero.
    pub fn round_robin(nodes: u32, servers: u32) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(servers > 0, "topology needs at least one server");
        Topology {
            server_of: (0..nodes).map(|i| i % servers).collect(),
            server_count: servers.min(nodes),
        }
    }

    /// The paper's baseline: four nodes, one per server.
    pub fn paper_baseline() -> Self {
        Topology::round_robin(4, 4)
    }

    /// Builds a topology from an explicit node → server assignment.
    ///
    /// # Panics
    ///
    /// Panics if `server_of` is empty.
    pub fn explicit(server_of: Vec<u32>) -> Self {
        assert!(!server_of.is_empty(), "topology needs at least one node");
        let server_count = server_of.iter().copied().max().unwrap() + 1;
        Topology {
            server_of,
            server_count,
        }
    }

    /// Number of blockchain nodes.
    pub fn node_count(&self) -> u32 {
        self.server_of.len() as u32
    }

    /// Number of distinct servers in use.
    pub fn server_count(&self) -> u32 {
        self.server_count
    }

    /// The server hosting `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn server_of(&self, node: NodeId) -> u32 {
        self.server_of[node.0 as usize]
    }

    /// `true` when both nodes share a server (loopback latency applies).
    pub fn same_server(&self, a: NodeId, b: NodeId) -> bool {
        self.server_of(a) == self.server_of(b)
    }

    /// Iterates over all node ids in the topology.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Maximum number of nodes co-located on any single server.
    pub fn max_nodes_per_server(&self) -> u32 {
        let mut counts = vec![0u32; self.server_count as usize + 1];
        for &s in &self.server_of {
            counts[s as usize] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

impl Default for Topology {
    /// The paper's baseline four-node deployment.
    fn default() -> Self {
        Topology::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_one_node_per_server() {
        let t = Topology::paper_baseline();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.server_count(), 4);
        assert_eq!(t.max_nodes_per_server(), 1);
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    assert!(!t.same_server(a, b));
                }
            }
        }
    }

    #[test]
    fn scalability_placements_cap_at_four_per_server() {
        // §5.8.2: 8/16/32 nodes over eight servers, max four per server.
        for n in [8u32, 16, 32] {
            let t = Topology::round_robin(n, 8);
            assert_eq!(t.node_count(), n);
            assert!(t.max_nodes_per_server() <= 4);
            assert_eq!(t.max_nodes_per_server(), n / 8);
        }
    }

    #[test]
    fn round_robin_assignment() {
        let t = Topology::round_robin(10, 4);
        assert_eq!(t.server_of(NodeId(0)), 0);
        assert_eq!(t.server_of(NodeId(4)), 0);
        assert_eq!(t.server_of(NodeId(9)), 1);
        assert!(t.same_server(NodeId(1), NodeId(5)));
    }

    #[test]
    fn explicit_topology() {
        let t = Topology::explicit(vec![0, 0, 1]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.server_count(), 2);
        assert!(t.same_server(NodeId(0), NodeId(1)));
        assert!(!t.same_server(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::round_robin(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Topology::round_robin(4, 0);
    }

    #[test]
    fn more_servers_than_nodes() {
        let t = Topology::round_robin(2, 8);
        assert_eq!(t.server_count(), 2);
        assert_eq!(t.max_nodes_per_server(), 1);
    }
}
