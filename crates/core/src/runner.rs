//! Benchmark execution: drives a modelled blockchain with the COCONUT
//! client schedule and computes the paper's metrics.

use std::collections::HashSet;

use coconut_chains::BlockchainSystem;
use coconut_types::{PayloadKind, SeedDeriver, SimDuration, SimTime, TxId};

use crate::client::{build_schedule_for, Windows};
use crate::params::{build_system, BlockParam, SystemKind, SystemSetup};
use crate::stats::{percentile, Stats};
use crate::workload::{paper, BenchmarkUnit, Workload};

/// Everything needed to run one benchmark (§4.1's combination of a client
/// workload and an interface execution layer, plus parameters).
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// The system under test.
    pub system: SystemKind,
    /// The benchmark (IEL function) to drive.
    pub benchmark: PayloadKind,
    /// Deployment settings (nodes, network, block parameter).
    pub setup: SystemSetup,
    /// Aggregate payload rate across all four clients (the rate limiter).
    pub rate: f64,
    /// Operations per transaction (BitShares) / batch (Sawtooth).
    pub ops_per_tx: u32,
    /// Send/listen windows.
    pub windows: Windows,
    /// Repetitions to average over (the paper uses 3).
    pub repetitions: u32,
    /// Name of the non-paper [`Workload`] driving this spec, if any. Paper
    /// benchmarks leave this `None`; it joins the content-addressed seed
    /// only when set, so every pre-existing paper seed is unchanged.
    pub workload: Option<String>,
}

impl BenchmarkSpec {
    /// A spec with the paper's defaults: baseline deployment, 200 payloads
    /// per second, one operation per transaction, full windows, three
    /// repetitions.
    pub fn new(system: SystemKind, benchmark: PayloadKind) -> Self {
        BenchmarkSpec {
            system,
            benchmark,
            setup: SystemSetup::default(),
            rate: 200.0,
            ops_per_tx: 1,
            windows: Windows::paper(),
            repetitions: 3,
            workload: None,
        }
    }

    /// Names the non-paper workload driving this spec (adds a `workload`
    /// component to the content-addressed cell seed).
    pub fn workload_name(mut self, name: &str) -> Self {
        self.workload = Some(name.to_string());
        self
    }

    /// Sets the aggregate rate limiter.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets operations per transaction/batch.
    pub fn ops_per_tx(mut self, ops: u32) -> Self {
        self.ops_per_tx = ops;
        self
    }

    /// Sets the deployment.
    pub fn setup(mut self, setup: SystemSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Sets the block parameter on the current setup.
    pub fn block_param(mut self, param: BlockParam) -> Self {
        self.setup.block_param = param;
        self
    }

    /// Sets the send window, keeping the paper's 10% listen margin.
    pub fn send_duration(mut self, send: SimDuration) -> Self {
        self.windows = Windows {
            send,
            listen: send + send / 10,
        };
        self
    }

    /// Sets both windows.
    pub fn windows(mut self, windows: Windows) -> Self {
        self.windows = windows;
        self
    }

    /// Sets the repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn repetitions(mut self, r: u32) -> Self {
        assert!(r > 0, "need at least one repetition");
        self.repetitions = r;
        self
    }
}

/// The raw measurements of one repetition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepMeasurement {
    /// Mean transactions per second (operations for BitShares; formula 2).
    pub mtps: f64,
    /// Mean finalization latency in seconds (formula 1).
    pub mfls: f64,
    /// Benchmark duration `t_lrtx − t_fstx` in seconds (formula 3).
    pub duration: f64,
    /// Median finalization latency in seconds (extension beyond the paper,
    /// which reports only means).
    pub p50: f64,
    /// 95th-percentile finalization latency in seconds.
    pub p95: f64,
    /// 99th-percentile finalization latency in seconds.
    pub p99: f64,
    /// Confirmed payloads received by the clients in the listen window.
    pub received: f64,
    /// Payloads sent.
    pub expected: f64,
    /// Whether the system still served confirmations at the end.
    pub live: bool,
}

/// Aggregated results of a benchmark across repetitions — one row of the
/// paper's tables.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// System label ("Fabric", "Corda OS", ...).
    pub system: String,
    /// Benchmark label ("KeyValue-Set", ...).
    pub benchmark: String,
    /// Aggregate rate limiter.
    pub rate: f64,
    /// Block parameter description ("MM=100", "-").
    pub block_param: String,
    /// Operations per transaction.
    pub ops_per_tx: u32,
    /// Throughput statistics.
    pub mtps: Stats,
    /// Finalization-latency statistics (seconds).
    pub mfls: Stats,
    /// Median-latency statistics (seconds; extension).
    pub p50: Stats,
    /// Tail-latency statistics: 95th percentile (seconds; extension).
    pub p95: Stats,
    /// Tail-latency statistics: 99th percentile (seconds; extension).
    pub p99: Stats,
    /// Duration statistics (seconds).
    pub duration: Stats,
    /// Received-payload statistics.
    pub received: Stats,
    /// Expected payloads per repetition.
    pub expected: f64,
    /// `false` if any repetition ended with the system stalled.
    pub live: bool,
}

impl BenchmarkResult {
    fn from_reps(spec: &BenchmarkSpec, reps: &[RepMeasurement]) -> Self {
        let collect = |f: fn(&RepMeasurement) -> f64| -> Stats {
            Stats::from_samples(&reps.iter().map(f).collect::<Vec<_>>())
        };
        BenchmarkResult {
            system: spec.system.label().to_string(),
            benchmark: spec.benchmark.label().to_string(),
            rate: spec.rate,
            block_param: spec.setup.block_param.to_string(),
            ops_per_tx: spec.ops_per_tx,
            mtps: collect(|r| r.mtps),
            mfls: collect(|r| r.mfls),
            p50: collect(|r| r.p50),
            p95: collect(|r| r.p95),
            p99: collect(|r| r.p99),
            duration: collect(|r| r.duration),
            received: collect(|r| r.received),
            expected: reps.first().map_or(0.0, |r| r.expected),
            live: reps.iter().all(|r| r.live),
        }
    }

    /// Fraction of sent payloads confirmed (`received / expected`).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0.0 {
            0.0
        } else {
            self.received.mean / self.expected
        }
    }
}

/// Results of a whole benchmark unit (§4.1), in benchmark order.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// Per-benchmark results in unit order.
    pub benchmarks: Vec<BenchmarkResult>,
}

/// Runs one benchmark of `spec.benchmark` against `system`, with the
/// client schedule offset to start at `base`. Returns the repetition
/// measurement computed from client-side observations only.
pub fn run_one(
    system: &mut (dyn BlockchainSystem + Send),
    spec: &BenchmarkSpec,
    base: SimTime,
    run_tag: u64,
    seed: u64,
) -> RepMeasurement {
    run_workload_one(system, &paper(spec.benchmark), spec, base, run_tag, seed)
}

/// [`run_one`] for an arbitrary [`Workload`]: the schedule's payload
/// stream comes from the trait instance instead of `spec.benchmark`. Both
/// entry points share the measurement loop, so paper benchmarks measure
/// bit-identically through either.
pub fn run_workload_one(
    system: &mut (dyn BlockchainSystem + Send),
    workload: &dyn Workload,
    spec: &BenchmarkSpec,
    base: SimTime,
    run_tag: u64,
    seed: u64,
) -> RepMeasurement {
    let schedule = build_schedule_for(workload, spec.rate, spec.ops_per_tx, spec.windows, seed);
    let expected: u64 = schedule.iter().map(|s| s.tx.op_count() as u64).sum();
    let mut my_ids: HashSet<TxId> = HashSet::with_capacity(schedule.len());
    let mut created = std::collections::HashMap::with_capacity(schedule.len());
    let listen_end = base + spec.windows.listen;
    let mut t_fstx: Option<SimTime> = None;
    let mut outcomes = Vec::new();

    for sched in schedule {
        let at = base + (sched.at - SimTime::ZERO);
        // Re-tag the id so different benchmarks of a unit never collide.
        let id = TxId::new(
            sched.tx.id().client(),
            sched.tx.id().seq() | (run_tag << 40),
        );
        let tx =
            coconut_types::ClientTx::new(id, sched.tx.thread(), sched.tx.payloads().to_vec(), at);
        outcomes.extend(system.run_until(at));
        t_fstx.get_or_insert(at);
        my_ids.insert(id);
        created.insert(id, at);
        system.submit(at, tx);
    }
    outcomes.extend(system.run_until(listen_end));

    // Client-side filtering: only this benchmark's confirmations, only
    // inside the listen window.
    let mut received_ops: u64 = 0;
    let mut latencies: Vec<f64> = Vec::new();
    let mut t_lrtx: Option<SimTime> = None;
    for o in &outcomes {
        if !o.is_committed() || !my_ids.contains(&o.tx) || o.finalized_at > listen_end {
            continue;
        }
        received_ops += o.ops_confirmed() as u64;
        let start = created[&o.tx];
        latencies.push((o.finalized_at - start).as_secs_f64());
        t_lrtx = Some(t_lrtx.map_or(o.finalized_at, |t| t.max(o.finalized_at)));
    }

    let (mtps, duration) = match (t_fstx, t_lrtx) {
        (Some(first), Some(last)) if last > first => {
            let d = (last - first).as_secs_f64();
            (received_ops as f64 / d, d)
        }
        _ => (0.0, 0.0),
    };
    let mfls = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    RepMeasurement {
        mtps,
        mfls,
        duration,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        received: received_ops as f64,
        expected: expected as f64,
        live: system.is_live(),
    }
}

/// Runs `spec` on a freshly provisioned system per repetition and
/// aggregates the statistics (the paper's per-table rows).
pub fn run_benchmark(spec: &BenchmarkSpec, seed: u64) -> BenchmarkResult {
    let seeds = SeedDeriver::new(seed);
    let mut reps = Vec::with_capacity(spec.repetitions as usize);
    for rep in 0..spec.repetitions {
        let rep_seeds = seeds.for_repetition(rep);
        let mut system = build_system(spec.system, &spec.setup, rep_seeds.seed("system", 0));
        reps.push(run_one(
            system.as_mut(),
            spec,
            SimTime::ZERO,
            0,
            rep_seeds.seed("schedule", 0),
        ));
    }
    BenchmarkResult::from_reps(spec, &reps)
}

/// Runs a whole benchmark unit (§4.1): the unit's benchmarks execute
/// back-to-back on the *same* deployed system; only the clients are
/// re-provisioned in between. The system is re-provisioned per repetition.
pub fn run_unit(
    system: SystemKind,
    unit: BenchmarkUnit,
    template: &BenchmarkSpec,
    seed: u64,
) -> UnitResult {
    let seeds = SeedDeriver::new(seed);
    let benchmarks: Vec<_> = unit.benchmarks().collect();
    // reps[b][rep]
    let mut measurements: Vec<Vec<RepMeasurement>> = vec![Vec::new(); benchmarks.len()];
    // The paper's client lifecycle: terminate at 420 s for a 300 s send
    // window; scale that proportionally.
    let term = template.windows.listen + (template.windows.listen - template.windows.send) * 3;

    for rep in 0..template.repetitions {
        let rep_seeds = seeds.for_repetition(rep);
        let mut sys = build_system(system, &template.setup, rep_seeds.seed("system", 0));
        let mut base = SimTime::ZERO;
        for (i, &benchmark) in benchmarks.iter().enumerate() {
            let spec = BenchmarkSpec {
                system,
                benchmark,
                ..template.clone()
            };
            let m = run_one(
                sys.as_mut(),
                &spec,
                base,
                i as u64 + 1,
                rep_seeds.seed("schedule", i as u64),
            );
            measurements[i].push(m);
            base += term;
        }
    }

    let results = benchmarks
        .iter()
        .zip(&measurements)
        .map(|(&benchmark, reps)| {
            let spec = BenchmarkSpec {
                system,
                benchmark,
                ..template.clone()
            };
            BenchmarkResult::from_reps(&spec, reps)
        })
        .collect();
    UnitResult {
        benchmarks: results,
    }
}

/// Runs many independent benchmarks on a thread pool of `jobs` workers
/// (`None` → one per CPU, capped at the number of specs). Results come
/// back in input order and are byte-identical for every worker count:
/// each spec's seed is derived from its *content* via
/// [`crate::exec::cell_seed`], so neither thread scheduling nor the
/// spec's position in the list can perturb its random streams.
pub fn run_many(specs: &[BenchmarkSpec], seed: u64, jobs: Option<usize>) -> Vec<BenchmarkResult> {
    crate::exec::run_grid(specs, jobs, |_, spec| {
        run_benchmark(spec, crate::exec::cell_seed(seed, "run-many", spec))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind, benchmark: PayloadKind) -> BenchmarkSpec {
        BenchmarkSpec::new(system, benchmark)
            .rate(100.0)
            .windows(Windows::scaled(0.01)) // 3 s send window
            .repetitions(2)
    }

    /// At tiny window scales Fabric's 2 s batch timeout would straddle the
    /// listen window, so tests cut blocks by size instead.
    fn quick_fabric(benchmark: PayloadKind) -> BenchmarkSpec {
        quick(SystemKind::Fabric, benchmark).block_param(BlockParam::MaxMessageCount(25))
    }

    #[test]
    fn fabric_do_nothing_confirms_everything() {
        let r = run_benchmark(&quick_fabric(PayloadKind::DoNothing), 1);
        assert!(r.delivery_ratio() > 0.95, "got {}", r.delivery_ratio());
        assert!(r.mtps.mean > 50.0, "mtps {}", r.mtps.mean);
        assert!(r.mfls.mean < 3.0, "mfls {}", r.mfls.mean);
        assert!(r.live);
    }

    #[test]
    fn metrics_are_client_side() {
        // MFLS must include queueing before consensus, not just block time:
        // overload Quorum lightly and check latency exceeds the block period.
        let spec = quick(SystemKind::Quorum, PayloadKind::DoNothing).rate(400.0);
        let r = run_benchmark(&spec, 2);
        assert!(r.mfls.mean >= 0.5, "client-side latency {}", r.mfls.mean);
    }

    #[test]
    fn repetitions_feed_statistics() {
        let r = run_benchmark(&quick_fabric(PayloadKind::KeyValueSet), 3);
        assert_eq!(r.mtps.n, 2);
        // Different repetition seeds → some (tiny) spread is typical, but
        // never negative values:
        assert!(r.mtps.sd >= 0.0);
    }

    #[test]
    fn unit_shares_the_system_instance() {
        // KeyValue unit on Fabric: the Get benchmark must find the keys the
        // Set benchmark wrote — only possible on the same instance.
        let template = quick_fabric(PayloadKind::KeyValueSet);
        let unit = run_unit(SystemKind::Fabric, BenchmarkUnit::KeyValue, &template, 4);
        assert_eq!(unit.benchmarks.len(), 2);
        let set = &unit.benchmarks[0];
        let get = &unit.benchmarks[1];
        assert!(set.delivery_ratio() > 0.9, "set {}", set.delivery_ratio());
        assert!(get.delivery_ratio() > 0.9, "get {}", get.delivery_ratio());
        assert_eq!(get.benchmark, "KeyValue-Get");
    }

    #[test]
    fn banking_unit_runs_all_three() {
        let template = quick(SystemKind::Quorum, PayloadKind::CreateAccount).rate(50.0);
        let unit = run_unit(SystemKind::Quorum, BenchmarkUnit::BankingApp, &template, 5);
        assert_eq!(unit.benchmarks.len(), 3);
        assert!(unit.benchmarks[0].delivery_ratio() > 0.9);
        // Payments read accounts created in phase 1:
        assert!(unit.benchmarks[1].delivery_ratio() > 0.5);
    }

    #[test]
    fn failed_benchmark_reports_zeroes() {
        // Quorum BP=2s under heavy load: the liveness anomaly → 0 received.
        let spec = quick(SystemKind::Quorum, PayloadKind::DoNothing)
            .rate(1600.0)
            .block_param(BlockParam::BlockPeriod(SimDuration::from_secs(2)))
            .windows(Windows::scaled(0.05));
        let r = run_benchmark(&spec, 6);
        assert_eq!(r.received.mean, 0.0);
        assert_eq!(r.mtps.mean, 0.0);
        assert_eq!(r.duration.mean, 0.0);
        assert!(!r.live);
    }

    #[test]
    fn bitshares_counts_operations() {
        let spec = quick(SystemKind::Bitshares, PayloadKind::DoNothing)
            .rate(800.0)
            .ops_per_tx(100)
            .windows(Windows::scaled(0.02));
        let r = run_benchmark(&spec, 7);
        // 800 payloads/s → MTPS must be near 800, far beyond the tx rate 8/s.
        assert!(r.mtps.mean > 400.0, "ops must count: {}", r.mtps.mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = quick(SystemKind::Sawtooth, PayloadKind::DoNothing);
        let a = run_benchmark(&spec, 8);
        let b = run_benchmark(&spec, 8);
        assert_eq!(a.mtps.mean, b.mtps.mean);
        assert_eq!(a.received.mean, b.received.mean);
    }

    #[test]
    fn run_many_preserves_order() {
        let specs = vec![
            quick(SystemKind::Fabric, PayloadKind::DoNothing).repetitions(1),
            quick(SystemKind::Quorum, PayloadKind::DoNothing).repetitions(1),
        ];
        let results = run_many(&specs, 9, None);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].system, "Fabric");
        assert_eq!(results[1].system, "Quorum");
    }

    #[test]
    fn run_many_seeds_by_content_not_position() {
        // The same spec must measure identically wherever it sits in the
        // list — the old per-index seed salting coupled results to
        // enumeration order.
        let a = quick(SystemKind::Fabric, PayloadKind::DoNothing).repetitions(1);
        let b = quick(SystemKind::Quorum, PayloadKind::DoNothing).repetitions(1);
        let fwd = run_many(&[a.clone(), b.clone()], 9, Some(1));
        let rev = run_many(&[b, a], 9, Some(1));
        assert_eq!(fwd[0].mtps.mean, rev[1].mtps.mean);
        assert_eq!(fwd[1].mtps.mean, rev[0].mtps.mean);
        assert_eq!(fwd[0].received.mean, rev[1].received.mean);
    }
}
