//! System selection and parameter settings (the paper's §4.4).

use coconut_chains::bitshares::{Bitshares, BitsharesConfig};
use coconut_chains::corda::{Corda, CordaConfig};
use coconut_chains::diem::{Diem, DiemConfig};
use coconut_chains::fabric::{Fabric, FabricConfig};
use coconut_chains::quorum::{Quorum, QuorumConfig};
use coconut_chains::runtime::PoolLimits;
use coconut_chains::sawtooth::{Sawtooth, SawtoothConfig};
use coconut_chains::BlockchainSystem;
use coconut_simnet::NetConfig;
use coconut_types::SimDuration;

/// One of the seven benchmarked blockchain systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemKind {
    /// Corda Open Source 4.8.6.
    CordaOs,
    /// Corda Enterprise 4.8.6.
    CordaEnterprise,
    /// BitShares (Graphene).
    Bitshares,
    /// Hyperledger Fabric 2.2.1 (Raft).
    Fabric,
    /// ConsenSys Quorum (Istanbul BFT).
    Quorum,
    /// Hyperledger Sawtooth 1.2.6 (PBFT).
    Sawtooth,
    /// Diem.
    Diem,
}

impl SystemKind {
    /// All seven systems in the paper's column order (Figure 3).
    pub const ALL: [SystemKind; 7] = [
        SystemKind::CordaOs,
        SystemKind::CordaEnterprise,
        SystemKind::Bitshares,
        SystemKind::Fabric,
        SystemKind::Quorum,
        SystemKind::Sawtooth,
        SystemKind::Diem,
    ];

    /// Display name as used in the paper.
    pub const fn label(self) -> &'static str {
        match self {
            SystemKind::CordaOs => "Corda OS",
            SystemKind::CordaEnterprise => "Corda Enterprise",
            SystemKind::Bitshares => "BitShares",
            SystemKind::Fabric => "Fabric",
            SystemKind::Quorum => "Quorum",
            SystemKind::Sawtooth => "Sawtooth",
            SystemKind::Diem => "Diem",
        }
    }

    /// The aggregate rate limiters the paper applies to this system
    /// (transactions — payloads — per second across all four clients;
    /// §4.4: {200, 400, 800, 1600}, one tenth of that for both Cordas).
    pub fn rate_limiters(self) -> Vec<f64> {
        match self {
            SystemKind::CordaOs | SystemKind::CordaEnterprise => vec![20.0, 40.0, 80.0, 160.0],
            _ => vec![200.0, 400.0, 800.0, 1600.0],
        }
    }

    /// The block finalization parameter sweep of Tables 5 and 6, or the
    /// operation/batch-size sweep where that is the paper's knob.
    pub fn block_params(self) -> Vec<BlockParam> {
        match self {
            SystemKind::Fabric => [100, 500, 1000, 2000]
                .into_iter()
                .map(BlockParam::MaxMessageCount)
                .collect(),
            SystemKind::Diem => [100, 500, 1000, 2000]
                .into_iter()
                .map(BlockParam::MaxBlockSize)
                .collect(),
            SystemKind::Bitshares => [1, 2, 5, 10]
                .into_iter()
                .map(|s| BlockParam::BlockInterval(SimDuration::from_secs(s)))
                .collect(),
            SystemKind::Quorum => [1, 2, 5, 10]
                .into_iter()
                .map(|s| BlockParam::BlockPeriod(SimDuration::from_secs(s)))
                .collect(),
            SystemKind::Sawtooth => [1, 2, 5, 10]
                .into_iter()
                .map(|s| BlockParam::PublishingDelay(SimDuration::from_secs(s)))
                .collect(),
            SystemKind::CordaOs | SystemKind::CordaEnterprise => vec![BlockParam::None],
        }
    }

    /// Operations per transaction (BitShares) / transactions per batch
    /// (Sawtooth) evaluated in the paper; `[1]` for the other systems.
    pub fn ops_per_tx_values(self) -> Vec<u32> {
        match self {
            SystemKind::Bitshares | SystemKind::Sawtooth => vec![1, 50, 100],
            _ => vec![1],
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A block-finalization parameter setting (Tables 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockParam {
    /// No block parameter (Corda is block-less).
    None,
    /// Fabric's `MaxMessageCount`.
    MaxMessageCount(usize),
    /// Diem's `max_block_size`.
    MaxBlockSize(usize),
    /// BitShares' `block_interval`.
    BlockInterval(SimDuration),
    /// Quorum's `istanbul.blockperiod`.
    BlockPeriod(SimDuration),
    /// Sawtooth's `sawtooth.consensus.pbft.block_publishing_delay`.
    PublishingDelay(SimDuration),
}

impl std::fmt::Display for BlockParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockParam::None => write!(f, "-"),
            BlockParam::MaxMessageCount(n) => write!(f, "MM={n}"),
            BlockParam::MaxBlockSize(n) => write!(f, "BS={n}"),
            BlockParam::BlockInterval(d) => write!(f, "BI={}s", d.as_secs_f64()),
            BlockParam::BlockPeriod(d) => write!(f, "BP={}s", d.as_secs_f64()),
            BlockParam::PublishingDelay(d) => write!(f, "PD={}s", d.as_secs_f64()),
        }
    }
}

/// Deployment-level settings shared by all systems.
#[derive(Debug, Clone)]
pub struct SystemSetup {
    /// Number of blockchain nodes (`None` → the paper's Table 4 baseline).
    pub nodes: Option<u32>,
    /// Network characteristics ([`NetConfig::lan`] baseline, or
    /// [`NetConfig::emulated_latency`] for §5.8.1).
    pub net: NetConfig,
    /// Block finalization parameter.
    pub block_param: BlockParam,
    /// Admission-control override: replaces the per-system default
    /// [`PoolLimits`] when set (overload experiments tighten the pools so
    /// saturation manifests as `Busy` backpressure rather than unbounded
    /// queueing).
    pub admission: Option<PoolLimits>,
    /// Pre-provisioned standby nodes per system (membership-churn
    /// experiments admit them at runtime via
    /// [`BlockchainSystem::join_node`]).
    pub standby: u32,
}

impl Default for SystemSetup {
    fn default() -> Self {
        SystemSetup {
            nodes: None,
            net: NetConfig::lan(),
            block_param: BlockParam::None,
            admission: None,
            standby: 0,
        }
    }
}

impl SystemSetup {
    /// Baseline setup with a specific block parameter.
    pub fn with_block_param(param: BlockParam) -> Self {
        SystemSetup {
            block_param: param,
            ..SystemSetup::default()
        }
    }

    /// Overrides the node count (scalability experiments).
    pub fn with_nodes(mut self, n: u32) -> Self {
        self.nodes = Some(n);
        self
    }

    /// Overrides the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Overrides every system's bounded-pool parameters.
    pub fn with_admission(mut self, limits: PoolLimits) -> Self {
        self.admission = Some(limits);
        self
    }

    /// Pre-provisions standby nodes for membership-churn experiments.
    pub fn with_standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }
}

/// Builds a fresh deployment of `kind` ("re-provisioning" in the paper's
/// terms) with the given setup and seed.
///
/// # Panics
///
/// Panics when `setup.block_param` names a parameter the system does not
/// have (e.g. `MaxMessageCount` for Quorum).
pub fn build_system(
    kind: SystemKind,
    setup: &SystemSetup,
    seed: u64,
) -> Box<dyn BlockchainSystem + Send> {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => {
            let mut cfg = if kind == SystemKind::CordaOs {
                CordaConfig::open_source()
            } else {
                CordaConfig::enterprise()
            };
            assert!(
                matches!(setup.block_param, BlockParam::None),
                "Corda has no block parameter (got {})",
                setup.block_param
            );
            if let Some(n) = setup.nodes {
                cfg.nodes = n;
                cfg.notaries = n.min(4);
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Corda::new(cfg, seed))
        }
        SystemKind::Bitshares => {
            let mut cfg = BitsharesConfig::default();
            match setup.block_param {
                BlockParam::BlockInterval(d) => cfg.block_interval = d,
                BlockParam::None => {}
                other => panic!("BitShares takes block_interval, not {other}"),
            }
            if let Some(n) = setup.nodes {
                cfg.witnesses = n.saturating_sub(1).max(1);
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Bitshares::new(cfg, seed))
        }
        SystemKind::Fabric => {
            let mut cfg = FabricConfig::default();
            match setup.block_param {
                BlockParam::MaxMessageCount(n) => cfg.max_message_count = n,
                BlockParam::None => {}
                other => panic!("Fabric takes MaxMessageCount, not {other}"),
            }
            if let Some(n) = setup.nodes {
                cfg.peers = n;
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Fabric::new(cfg, seed))
        }
        SystemKind::Quorum => {
            let mut cfg = QuorumConfig::default();
            match setup.block_param {
                BlockParam::BlockPeriod(d) => cfg.block_period = d,
                BlockParam::None => {}
                other => panic!("Quorum takes blockperiod, not {other}"),
            }
            if let Some(n) = setup.nodes {
                cfg.nodes = n;
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Quorum::new(cfg, seed))
        }
        SystemKind::Sawtooth => {
            let mut cfg = SawtoothConfig::default();
            match setup.block_param {
                BlockParam::PublishingDelay(d) => cfg.publishing_delay = d,
                BlockParam::None => {}
                other => panic!("Sawtooth takes block_publishing_delay, not {other}"),
            }
            if let Some(n) = setup.nodes {
                cfg.nodes = n;
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Sawtooth::new(cfg, seed))
        }
        SystemKind::Diem => {
            let mut cfg = DiemConfig::default();
            match setup.block_param {
                BlockParam::MaxBlockSize(n) => cfg.max_block_size = n,
                BlockParam::None => {}
                other => panic!("Diem takes max_block_size, not {other}"),
            }
            if let Some(n) = setup.nodes {
                cfg.nodes = n;
            }
            cfg.net = setup.net.clone();
            if let Some(limits) = setup.admission {
                cfg.pool = limits;
            }
            cfg.standby = setup.standby;
            Box::new(Diem::new(cfg, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, ClientTx, Payload, SimTime, ThreadId, TxId};

    #[test]
    fn seven_systems_with_paper_labels() {
        assert_eq!(SystemKind::ALL.len(), 7);
        assert_eq!(SystemKind::CordaOs.label(), "Corda OS");
        assert_eq!(SystemKind::Diem.to_string(), "Diem");
    }

    #[test]
    fn corda_rate_limiters_are_one_tenth() {
        assert_eq!(
            SystemKind::CordaOs.rate_limiters(),
            vec![20.0, 40.0, 80.0, 160.0]
        );
        assert_eq!(
            SystemKind::Fabric.rate_limiters(),
            vec![200.0, 400.0, 800.0, 1600.0]
        );
    }

    #[test]
    fn block_param_sweeps_match_tables_5_and_6() {
        assert_eq!(SystemKind::Fabric.block_params().len(), 4);
        assert!(matches!(
            SystemKind::Fabric.block_params()[0],
            BlockParam::MaxMessageCount(100)
        ));
        assert!(matches!(
            SystemKind::Quorum.block_params()[2],
            BlockParam::BlockPeriod(d) if d == SimDuration::from_secs(5)
        ));
        assert_eq!(SystemKind::CordaOs.block_params(), vec![BlockParam::None]);
    }

    #[test]
    fn ops_sweeps() {
        assert_eq!(SystemKind::Bitshares.ops_per_tx_values(), vec![1, 50, 100]);
        assert_eq!(SystemKind::Sawtooth.ops_per_tx_values(), vec![1, 50, 100]);
        assert_eq!(SystemKind::Fabric.ops_per_tx_values(), vec![1]);
    }

    #[test]
    fn every_system_builds_and_accepts_a_tx() {
        for kind in SystemKind::ALL {
            let setup = SystemSetup::default();
            let mut sys = build_system(kind, &setup, 1);
            assert_eq!(sys.name(), kind.label());
            let tx = ClientTx::single(
                TxId::new(ClientId(0), 0),
                ThreadId(0),
                Payload::DoNothing,
                SimTime::ZERO,
            );
            sys.run_until(SimTime::from_secs(2));
            sys.submit(SimTime::from_secs(2), tx);
            sys.run_until(SimTime::from_secs(4));
            assert!(sys.stats().accepted >= 1, "{kind} accepted nothing");
        }
    }

    #[test]
    fn node_override_applies() {
        let setup = SystemSetup::default().with_nodes(8);
        for kind in [SystemKind::Fabric, SystemKind::Quorum, SystemKind::Diem] {
            let sys = build_system(kind, &setup, 1);
            assert_eq!(sys.node_count(), 8, "{kind}");
        }
        // BitShares runs n − 1 witnesses:
        let bs = build_system(SystemKind::Bitshares, &setup, 1);
        assert_eq!(bs.node_count(), 7);
    }

    #[test]
    #[should_panic(expected = "Fabric takes MaxMessageCount")]
    fn wrong_param_rejected() {
        let setup =
            SystemSetup::with_block_param(BlockParam::BlockPeriod(SimDuration::from_secs(1)));
        let _ = build_system(SystemKind::Fabric, &setup, 1);
    }

    #[test]
    fn block_param_display() {
        assert_eq!(BlockParam::MaxMessageCount(100).to_string(), "MM=100");
        assert_eq!(
            BlockParam::BlockInterval(SimDuration::from_secs(5)).to_string(),
            "BI=5s"
        );
        assert_eq!(BlockParam::None.to_string(), "-");
    }
}
