//! The COCONUT client model: four client applications × four workload
//! threads, rate-limited submission, and the paper's timing windows.
//!
//! §4.3: "The COCONUT client starts four concurrent client threads ... of
//! which each client thread starts four concurrent workload threads. ...
//! The workload-threads of each COCONUT client application send
//! transactions sequentially, but without waiting for a finalization
//! confirmation, for a period of 300 seconds. The COCONUT client terminates
//! listening on events after 330 seconds."

use coconut_types::{
    ClientId, ClientTx, PayloadKind, SeedDeriver, SimDuration, SimTime, ThreadId, TxId,
};

use crate::workload::{paper, Workload};

/// Number of COCONUT client applications (two per client server).
pub const CLIENTS: u32 = 4;

/// Workload threads per client application.
pub const THREADS_PER_CLIENT: u32 = 4;

/// The paper's timing windows, scalable for fast runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Transactions are sent during `[0, send)` (paper: 300 s).
    pub send: SimDuration,
    /// Confirmations count until `listen` (paper: 330 s).
    pub listen: SimDuration,
}

impl Windows {
    /// The paper's 300 s / 330 s windows.
    pub fn paper() -> Self {
        Windows {
            send: SimDuration::from_secs(300),
            listen: SimDuration::from_secs(330),
        }
    }

    /// Scales both windows by `factor` (e.g. 0.1 → 30 s / 33 s).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Windows {
            send: SimDuration::from_secs_f64(300.0 * factor),
            listen: SimDuration::from_secs_f64(330.0 * factor),
        }
    }
}

impl Default for Windows {
    fn default() -> Self {
        Windows::paper()
    }
}

/// One scheduled submission: when, and what.
#[derive(Debug, Clone)]
pub struct ScheduledTx {
    /// Send instant (the paper's `starttime` is taken here).
    pub at: SimTime,
    /// The transaction to submit.
    pub tx: ClientTx,
}

/// Builds the merged, time-ordered submission schedule of all four COCONUT
/// clients for one benchmark.
///
/// `rate` is the aggregate payload rate across all clients (the paper's
/// rate limiter; §4.4). Each client contributes `rate / 4`, each workload
/// thread `rate / 16`, evenly spaced with a per-thread phase offset derived
/// from `seed` so clients do not fire in lockstep. With `ops_per_tx > 1`,
/// consecutive payloads are bundled into one transaction (BitShares
/// operations / Sawtooth batches), reducing the transaction rate
/// accordingly.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive or `ops_per_tx` is zero.
///
/// # Example
///
/// ```
/// use coconut::client::{build_schedule, Windows};
/// use coconut_types::{PayloadKind, SimDuration};
///
/// let windows = Windows::scaled(0.01); // 3 s send window
/// let schedule = build_schedule(PayloadKind::DoNothing, 100.0, 1, windows, 42);
/// // ≈ 100/s for 3 s:
/// assert!((250..=320).contains(&schedule.len()));
/// // Time-ordered:
/// assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
pub fn build_schedule(
    kind: PayloadKind,
    rate: f64,
    ops_per_tx: u32,
    windows: Windows,
    seed: u64,
) -> Vec<ScheduledTx> {
    // Compat shim: the paper benchmark is just a single-kind workload.
    build_schedule_for(&paper(kind), rate, ops_per_tx, windows, seed)
}

/// Builds the merged submission schedule of all four COCONUT clients for
/// an arbitrary [`Workload`] — the trait-based form of [`build_schedule`],
/// which all call sites route through. The payload stream comes from
/// [`Workload::payload_at`]; timing is seeded exactly as before, so paper
/// workloads produce bit-identical schedules via either entry point.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive or `ops_per_tx` is zero.
pub fn build_schedule_for(
    workload: &dyn Workload,
    rate: f64,
    ops_per_tx: u32,
    windows: Windows,
    seed: u64,
) -> Vec<ScheduledTx> {
    assert!(rate > 0.0, "rate must be positive");
    assert!(ops_per_tx > 0, "ops_per_tx must be at least 1");
    let seeds = SeedDeriver::new(seed);
    let mut schedule = Vec::new();
    let threads_total = (CLIENTS * THREADS_PER_CLIENT) as f64;
    let payload_rate_per_thread = rate / threads_total;
    let tx_interval = SimDuration::from_secs_f64(ops_per_tx as f64 / payload_rate_per_thread);
    let send_end = SimTime::ZERO + windows.send;

    for c in 0..CLIENTS {
        for t in 0..THREADS_PER_CLIENT {
            let client = ClientId(c);
            let thread = ThreadId(t);
            // Deterministic phase offset within one interval.
            let phase_frac =
                (seeds.seed("phase", (c * THREADS_PER_CLIENT + t) as u64) % 1000) as f64 / 1000.0;
            let mut at = SimTime::ZERO + tx_interval.mul_f64(phase_frac);
            let mut seq: u64 = 0;
            let mut tx_seq: u64 = 0;
            while at < send_end {
                let payloads: Vec<_> = (0..ops_per_tx)
                    .map(|i| workload.payload_at(client, thread, seq + i as u64))
                    .collect();
                seq += ops_per_tx as u64;
                // Per-client tx ids must be unique across threads.
                let id = TxId::new(client, (t as u64) << 48 | tx_seq);
                tx_seq += 1;
                schedule.push(ScheduledTx {
                    at,
                    tx: ClientTx::new(id, thread, payloads, at),
                });
                at += tx_interval;
            }
        }
    }
    schedule.sort_by_key(|s| (s.at, s.tx.id()));
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_windows() {
        let w = Windows::paper();
        assert_eq!(w.send, SimDuration::from_secs(300));
        assert_eq!(w.listen, SimDuration::from_secs(330));
        assert_eq!(Windows::default(), w);
    }

    #[test]
    fn scaled_windows() {
        let w = Windows::scaled(0.1);
        assert_eq!(w.send, SimDuration::from_secs(30));
        assert_eq!(w.listen, SimDuration::from_secs(33));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = Windows::scaled(0.0);
    }

    #[test]
    fn schedule_hits_target_rate() {
        let windows = Windows::scaled(0.1); // 30 s
        for rate in [20.0, 200.0, 1600.0] {
            let schedule = build_schedule(PayloadKind::DoNothing, rate, 1, windows, 1);
            let expected = rate * 30.0;
            let got = schedule.len() as f64;
            assert!(
                (got - expected).abs() / expected < 0.05,
                "rate {rate}: expected ≈{expected}, got {got}"
            );
        }
    }

    #[test]
    fn ops_per_tx_bundles_payloads() {
        let windows = Windows::scaled(0.1);
        let bundled = build_schedule(PayloadKind::DoNothing, 1600.0, 100, windows, 1);
        // 1600 payloads/s ÷ 100 ops = 16 tx/s over 30 s ≈ 480 txs.
        assert!(
            (430..=530).contains(&bundled.len()),
            "got {}",
            bundled.len()
        );
        assert!(bundled.iter().all(|s| s.tx.op_count() == 100));
        let payloads: usize = bundled.iter().map(|s| s.tx.op_count()).sum();
        assert!((45_000..=50_500).contains(&payloads));
    }

    #[test]
    fn all_sends_inside_send_window() {
        let windows = Windows::scaled(0.05);
        let schedule = build_schedule(PayloadKind::KeyValueSet, 400.0, 1, windows, 3);
        let end = SimTime::ZERO + windows.send;
        assert!(schedule.iter().all(|s| s.at < end));
    }

    #[test]
    fn tx_ids_unique() {
        let schedule = build_schedule(PayloadKind::DoNothing, 800.0, 1, Windows::scaled(0.05), 4);
        let mut ids: Vec<_> = schedule.iter().map(|s| s.tx.id()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn sixteen_threads_contribute() {
        let schedule = build_schedule(PayloadKind::DoNothing, 1600.0, 1, Windows::scaled(0.05), 5);
        let mut pairs: Vec<(ClientId, ThreadId)> = schedule
            .iter()
            .map(|s| (s.tx.id().client(), s.tx.thread()))
            .collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), 16);
    }

    #[test]
    fn trait_schedule_matches_legacy_entry_point() {
        use crate::workload::paper;
        for kind in [PayloadKind::KeyValueSet, PayloadKind::SendPayment] {
            let legacy = build_schedule(kind, 400.0, 2, Windows::scaled(0.02), 9);
            let via_trait = build_schedule_for(&paper(kind), 400.0, 2, Windows::scaled(0.02), 9);
            assert_eq!(legacy.len(), via_trait.len());
            assert!(legacy
                .iter()
                .zip(&via_trait)
                .all(|(a, b)| a.at == b.at && a.tx == b.tx));
        }
    }

    #[test]
    fn smallbank_schedule_draws_from_the_mix() {
        use crate::workload::{ContentionKnobs, Smallbank};
        let w = Smallbank::new(ContentionKnobs::default());
        let schedule = build_schedule_for(&w, 200.0, 1, Windows::scaled(0.05), 11);
        assert!(!schedule.is_empty());
        let kinds: std::collections::HashSet<_> = schedule.iter().map(|s| s.tx.kind()).collect();
        assert!(kinds.len() >= 4, "mixed stream, got {kinds:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_schedule(PayloadKind::Balance, 200.0, 1, Windows::scaled(0.02), 7);
        let b = build_schedule(PayloadKind::Balance, 200.0, 1, Windows::scaled(0.02), 7);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.at == y.at && x.tx == y.tx));
        let c = build_schedule(PayloadKind::Balance, 200.0, 1, Windows::scaled(0.02), 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.at != y.at),
            "different seed, different phases"
        );
    }
}
