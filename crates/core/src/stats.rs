//! Descriptive statistics over benchmark repetitions: mean, standard
//! deviation, standard error of the mean, and the 95% confidence interval —
//! exactly the columns of the paper's Tables 7–20.

/// Summary statistics of one metric across repetitions.
///
/// # Example
///
/// ```
/// use coconut::Stats;
///
/// let s = Stats::from_samples(&[4.0, 5.0, 6.0]);
/// assert_eq!(s.mean, 5.0);
/// assert!((s.sd - 1.0).abs() < 1e-9);
/// assert!(s.ci95 > s.sem, "95% CI half-width exceeds the SEM");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub sd: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Half-width of the 95% confidence interval (Student's t).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes statistics from repetition samples.
    ///
    /// With a single sample, SD/SEM/CI are zero (no dispersion estimate).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Stats {
                mean,
                sd: 0.0,
                sem: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sd = var.sqrt();
        let sem = sd / (n as f64).sqrt();
        let ci95 = t_975(n - 1) * sem;
        Stats {
            mean,
            sd,
            sem,
            ci95,
            n,
        }
    }

    /// A zero-valued statistic (used for benchmarks that received nothing,
    /// which the paper reports as 0.00 ± 0).
    pub fn zero() -> Self {
        Stats {
            mean: 0.0,
            sd: 0.0,
            sem: 0.0,
            ci95: 0.0,
            n: 0,
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} (SD {:.2}, SEM {:.2}, ±{:.2})",
            self.mean, self.sd, self.sem, self.ci95
        )
    }
}

/// Two-sided 97.5th percentile of Student's t with `df` degrees of freedom
/// (exact small-sample values; 1.96 beyond the table). The paper's
/// repetition count is 3 → df = 2 → t = 4.303, which is what reproduces
/// the ratio between its SEM and CI columns.
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Computes the `q`-quantile (0.0–1.0) of `samples` using the
/// nearest-rank method on a sorted copy.
///
/// Returns 0.0 for an empty slice (a benchmark that confirmed nothing).
///
/// # Panics
///
/// Panics unless `0.0 <= q <= 1.0`.
///
/// # Example
///
/// ```
/// use coconut::stats::percentile;
///
/// let latencies = [1.0, 2.0, 3.0, 4.0, 100.0];
/// assert_eq!(percentile(&latencies, 0.5), 3.0);
/// assert_eq!(percentile(&latencies, 1.0), 100.0);
/// ```
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = Stats::from_samples(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_samples(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.sd - 2.0).abs() < 1e-12);
        assert!((s.sem - 2.0 / 3f64.sqrt()).abs() < 1e-12);
        // df = 2 → t = 4.303, the paper's repetition count.
        assert!((s.ci95 - 4.303 * s.sem).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn zero_stat() {
        let z = Stats::zero();
        assert_eq!(z.mean, 0.0);
        assert_eq!(z.n, 0);
    }

    #[test]
    fn t_table_monotone_decreasing() {
        assert!(t_975(1) > t_975(2));
        assert!(t_975(2) > t_975(3));
        assert!(t_975(29) > t_975(31));
        assert_eq!(t_975(100), 1.96);
        assert!(t_975(0).is_infinite());
    }

    #[test]
    fn identical_samples_have_no_spread() {
        let s = Stats::from_samples(&[3.0, 3.0, 3.0]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn display_format() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0]);
        let out = s.to_string();
        assert!(out.contains("2.00"));
        assert!(out.contains("SD"));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.2), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 1.5);
    }

    // Seeded randomized sweeps (formerly proptests).
    #[test]
    fn percentile_is_monotone_in_q() {
        let mut gen = coconut_types::SimRng::seed_from_u64(41);
        for _ in 0..64 {
            let n = gen.gen_range_inclusive(1, 49) as usize;
            let samples: Vec<f64> = (0..n).map(|_| gen.gen_f64() * 1e3).collect();
            let q1 = gen.gen_f64();
            let q2 = gen.gen_f64();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(percentile(&samples, lo) <= percentile(&samples, hi));
        }
    }

    #[test]
    fn mean_within_minmax() {
        let mut gen = coconut_types::SimRng::seed_from_u64(42);
        for _ in 0..64 {
            let n = gen.gen_range_inclusive(1, 19) as usize;
            let samples: Vec<f64> = (0..n).map(|_| (gen.gen_f64() - 0.5) * 2e6).collect();
            let s = Stats::from_samples(&samples);
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(s.mean >= lo - 1e-9 && s.mean <= hi + 1e-9);
            assert!(s.sd >= 0.0 && s.sem >= 0.0 && s.ci95 >= 0.0);
        }
    }

    #[test]
    fn shift_invariance() {
        let mut gen = coconut_types::SimRng::seed_from_u64(43);
        for _ in 0..64 {
            let n = gen.gen_range_inclusive(2, 9) as usize;
            let samples: Vec<f64> = (0..n).map(|_| gen.gen_f64() * 100.0).collect();
            let shift = (gen.gen_f64() - 0.5) * 100.0;
            let a = Stats::from_samples(&samples);
            let shifted: Vec<f64> = samples.iter().map(|s| s + shift).collect();
            let b = Stats::from_samples(&shifted);
            assert!((a.sd - b.sd).abs() < 1e-6);
            assert!(((a.mean + shift) - b.mean).abs() < 1e-6);
        }
    }
}
