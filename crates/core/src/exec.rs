//! Deterministic parallel execution of experiment grids.
//!
//! Every experiment in [`crate::experiments`] is a grid of independent
//! cells (system × benchmark × parameters). This module runs such grids on
//! a scoped thread pool while keeping the results *bit-identical* to a
//! sequential run:
//!
//! 1. **Content-addressed seeds** — a cell's seed is derived from *what it
//!    measures* ([`cell_seed`] / [`unit_seed`] hash the system, benchmark,
//!    setup, rate, windows, … through [`SeedDeriver::seed_parts`]), never
//!    from its position in an enumeration. Reordering, filtering, or
//!    parallelizing the grid cannot change any cell's random stream.
//! 2. **Ordered collection** — [`run_grid`] returns results in input
//!    order regardless of which worker finished first, so serialized
//!    output (JSON, CSV, rendered tables) is byte-identical for any
//!    worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use coconut_types::SeedDeriver;

use crate::runner::BenchmarkSpec;
use crate::workload::BenchmarkUnit;

/// Resolves a `--jobs` setting to a worker count for `items` work items:
/// `None` → all available CPUs, `Some(n)` → exactly `n` (minimum 1), both
/// capped at the number of items.
pub fn worker_count(jobs: Option<usize>, items: usize) -> usize {
    let n = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    n.max(1).min(items.max(1))
}

/// Runs `f(index, item)` for every item on a scoped thread pool of
/// [`worker_count`]`(jobs, …)` workers and returns the results in input
/// order.
///
/// With `jobs = Some(1)` the items run inline on the calling thread — no
/// threads are spawned, which keeps single-job runs cheap and makes the
/// equivalence "parallel output ≡ sequential output" directly testable.
/// `f` must derive any randomness from the item's *content* (see
/// [`cell_seed`]), never from `index`, or parallel and sequential runs
/// will agree while a reordered grid silently changes results.
pub fn run_grid<T, R, F>(items: &[T], jobs: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = worker_count(jobs, items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// The content-addressed seed of one benchmark cell: a pure function of
/// `(root, scope, spec)` where every field of the spec that influences the
/// measurement — system, benchmark, deployment, rate, ops, windows,
/// repetitions — enters the hash. `scope` separates experiment families
/// (e.g. `"run-many"` vs `"fig-sweep"`) so the same spec drawn by two
/// experiments still gets independent streams.
pub fn cell_seed(root: u64, scope: &str, spec: &BenchmarkSpec) -> u64 {
    seed_of(root, scope, None, spec)
}

/// [`cell_seed`] for a whole benchmark unit run from `template`: the unit
/// identity joins the hash because the same template drives different
/// benchmark sequences under different units.
pub fn unit_seed(root: u64, scope: &str, unit: BenchmarkUnit, template: &BenchmarkSpec) -> u64 {
    seed_of(root, scope, Some(unit), template)
}

/// The content-addressed seed of one fault-sweep cell: a pure function of
/// `(root, fault kind, system, severity)`. Filtering the campaign to a
/// subset of systems or kinds, reordering the grid, or changing the worker
/// count cannot change any remaining cell's stream — which is what lets
/// `repro chaos --sweep --systems …` reproduce exactly the cells of the
/// full sweep.
pub fn sweep_cell_seed(
    root: u64,
    fault: &str,
    system: crate::params::SystemKind,
    severity: u32,
) -> u64 {
    let severity = severity.to_string();
    SeedDeriver::new(root).seed_parts(&["chaos-sweep", fault, system.label(), severity.as_str()])
}

/// The content-addressed seed of one named-scenario cell: a pure function
/// of `(root, scenario name, system)`. Running one scenario via
/// `repro scenario --name …` or filtering `--systems` reproduces exactly
/// the cells of the full library run.
pub fn scenario_cell_seed(root: u64, name: &str, system: crate::params::SystemKind) -> u64 {
    SeedDeriver::new(root).seed_parts(&["scenario", name, system.label()])
}

/// The content-addressed seed of one bottleneck-attribution cell: a pure
/// function of `(root, system)`. Filtering `repro bottleneck --systems …`
/// or changing `--jobs` reproduces exactly the cells of the full campaign.
pub fn bottleneck_cell_seed(root: u64, system: crate::params::SystemKind) -> u64 {
    SeedDeriver::new(root).seed_parts(&["bottleneck", system.label()])
}

/// The content-addressed seed of one contention-sweep cell: a pure
/// function of `(root, system, workload, cell)` where `cell` names the
/// contention level ("low", "mid", "high"). Filtering `repro contention`
/// by `--systems`/`--workloads` or changing `--jobs` reproduces exactly
/// the cells of the full campaign.
pub fn contention_cell_seed(
    root: u64,
    system: crate::params::SystemKind,
    workload: &str,
    cell: &str,
) -> u64 {
    SeedDeriver::new(root).seed_parts(&["contention", system.label(), workload, cell])
}

/// The content-addressed seed of one gray-failure cell: a pure function
/// of `(root, system, kind, severity)` where `kind` names the injected
/// gray fault ("slow-leader", "flaky-link", …) and `severity` its level
/// ("low", "mid", "high"; "-" for the fault-free baseline). Filtering
/// `repro grayfail --systems …` or changing `--jobs` reproduces exactly
/// the cells of the full campaign.
pub fn grayfail_cell_seed(
    root: u64,
    system: crate::params::SystemKind,
    kind: &str,
    severity: &str,
) -> u64 {
    SeedDeriver::new(root).seed_parts(&["grayfail", system.label(), kind, severity])
}

fn seed_of(root: u64, scope: &str, unit: Option<BenchmarkUnit>, spec: &BenchmarkSpec) -> u64 {
    let unit = unit.map_or(String::new(), |u| format!("{u:?}"));
    let nodes = spec
        .setup
        .nodes
        .map_or_else(|| "-".to_string(), |n| n.to_string());
    // `LatencyModel` carries its distribution parameters in its `Debug`
    // form, so the network identity is fully captured.
    let net = format!("{:?}", spec.setup.net);
    let block_param = spec.setup.block_param.to_string();
    let rate = spec.rate.to_string();
    let ops = spec.ops_per_tx.to_string();
    let send = spec.windows.send.as_micros().to_string();
    let listen = spec.windows.listen.as_micros().to_string();
    let reps = spec.repetitions.to_string();
    let mut parts = vec![
        scope,
        unit.as_str(),
        spec.system.label(),
        spec.benchmark.label(),
        nodes.as_str(),
        net.as_str(),
        block_param.as_str(),
        rate.as_str(),
        ops.as_str(),
        send.as_str(),
        listen.as_str(),
        reps.as_str(),
    ];
    // The workload component joins the hash only when a non-paper workload
    // is named, so every pre-existing paper-workload seed is unchanged.
    if let Some(w) = &spec.workload {
        parts.push("workload");
        parts.push(w.as_str());
    }
    SeedDeriver::new(root).seed_parts(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BlockParam, SystemKind};
    use coconut_types::PayloadKind;

    #[test]
    fn grid_returns_results_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [Some(1), Some(3), Some(8), None] {
            let out = run_grid(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn grid_parallel_equals_sequential() {
        let items: Vec<u64> = (0..40).collect();
        let work = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7);
        assert_eq!(
            run_grid(&items, Some(1), work),
            run_grid(&items, Some(8), work)
        );
    }

    #[test]
    fn grid_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_grid(&empty, Some(4), |_, &x| x).is_empty());
        // More workers than items must not hang or drop results.
        let out = run_grid(&[1u8, 2], Some(16), |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(worker_count(Some(1), 100), 1);
        assert_eq!(worker_count(Some(8), 3), 3);
        assert_eq!(worker_count(Some(0), 3), 1);
        assert!(worker_count(None, 1000) >= 1);
    }

    #[test]
    fn cell_seed_is_content_addressed() {
        let spec = BenchmarkSpec::new(SystemKind::Fabric, PayloadKind::DoNothing);
        let a = cell_seed(7, "run-many", &spec);
        // Same content, same seed — regardless of any enumeration context.
        assert_eq!(a, cell_seed(7, "run-many", &spec));
        // Any measured field changes the seed.
        assert_ne!(a, cell_seed(7, "run-many", &spec.clone().rate(400.0)));
        assert_ne!(a, cell_seed(7, "run-many", &spec.clone().ops_per_tx(50)));
        assert_ne!(
            a,
            cell_seed(
                7,
                "run-many",
                &spec.clone().block_param(BlockParam::MaxMessageCount(100))
            )
        );
        // Scope and root separate streams.
        assert_ne!(a, cell_seed(7, "fig-sweep", &spec));
        assert_ne!(a, cell_seed(8, "run-many", &spec));
    }

    #[test]
    fn sweep_cell_seed_is_content_addressed() {
        let a = sweep_cell_seed(7, "crash", SystemKind::Fabric, 2);
        // Same content, same seed — independent of any campaign context.
        assert_eq!(a, sweep_cell_seed(7, "crash", SystemKind::Fabric, 2));
        // Kind, system, severity, and root each separate streams.
        assert_ne!(a, sweep_cell_seed(7, "loss", SystemKind::Fabric, 2));
        assert_ne!(a, sweep_cell_seed(7, "crash", SystemKind::Quorum, 2));
        assert_ne!(a, sweep_cell_seed(7, "crash", SystemKind::Fabric, 1));
        assert_ne!(a, sweep_cell_seed(8, "crash", SystemKind::Fabric, 2));
    }

    #[test]
    fn scenario_cell_seed_is_content_addressed() {
        let a = scenario_cell_seed(7, "crash-heal", SystemKind::Fabric);
        assert_eq!(a, scenario_cell_seed(7, "crash-heal", SystemKind::Fabric));
        assert_ne!(
            a,
            scenario_cell_seed(7, "beyond-f-halt", SystemKind::Fabric)
        );
        assert_ne!(a, scenario_cell_seed(7, "crash-heal", SystemKind::Quorum));
        assert_ne!(a, scenario_cell_seed(8, "crash-heal", SystemKind::Fabric));
    }

    #[test]
    fn bottleneck_cell_seed_is_content_addressed() {
        let a = bottleneck_cell_seed(7, SystemKind::Fabric);
        assert_eq!(a, bottleneck_cell_seed(7, SystemKind::Fabric));
        assert_ne!(a, bottleneck_cell_seed(7, SystemKind::Quorum));
        assert_ne!(a, bottleneck_cell_seed(8, SystemKind::Fabric));
    }

    #[test]
    fn contention_cell_seed_is_content_addressed() {
        let a = contention_cell_seed(7, SystemKind::Fabric, "Smallbank", "low");
        assert_eq!(
            a,
            contention_cell_seed(7, SystemKind::Fabric, "Smallbank", "low")
        );
        assert_ne!(
            a,
            contention_cell_seed(7, SystemKind::Quorum, "Smallbank", "low")
        );
        assert_ne!(
            a,
            contention_cell_seed(7, SystemKind::Fabric, "YCSB", "low")
        );
        assert_ne!(
            a,
            contention_cell_seed(7, SystemKind::Fabric, "Smallbank", "high")
        );
        assert_ne!(
            a,
            contention_cell_seed(8, SystemKind::Fabric, "Smallbank", "low")
        );
    }

    #[test]
    fn grayfail_cell_seed_is_content_addressed() {
        let a = grayfail_cell_seed(7, SystemKind::Fabric, "slow-leader", "mid");
        assert_eq!(
            a,
            grayfail_cell_seed(7, SystemKind::Fabric, "slow-leader", "mid")
        );
        assert_ne!(
            a,
            grayfail_cell_seed(7, SystemKind::Quorum, "slow-leader", "mid")
        );
        assert_ne!(
            a,
            grayfail_cell_seed(7, SystemKind::Fabric, "flaky-link", "mid")
        );
        assert_ne!(
            a,
            grayfail_cell_seed(7, SystemKind::Fabric, "slow-leader", "high")
        );
        assert_ne!(
            a,
            grayfail_cell_seed(8, SystemKind::Fabric, "slow-leader", "mid")
        );
    }

    #[test]
    fn workload_component_joins_seed_only_when_named() {
        let spec = BenchmarkSpec::new(SystemKind::Fabric, PayloadKind::DoNothing);
        let a = cell_seed(7, "run-many", &spec);
        // A named workload changes the seed; None leaves the legacy hash
        // intact (the invariant every existing golden rests on).
        assert_ne!(
            a,
            cell_seed(7, "run-many", &spec.clone().workload_name("Smallbank"))
        );
        assert_ne!(
            cell_seed(7, "run-many", &spec.clone().workload_name("Smallbank")),
            cell_seed(7, "run-many", &spec.clone().workload_name("YCSB"))
        );
    }

    #[test]
    fn unit_seed_separates_units() {
        let spec = BenchmarkSpec::new(SystemKind::Quorum, PayloadKind::KeyValueSet);
        assert_ne!(
            unit_seed(7, "t", BenchmarkUnit::KeyValue, &spec),
            unit_seed(7, "t", BenchmarkUnit::BankingApp, &spec)
        );
        assert_ne!(
            unit_seed(7, "t", BenchmarkUnit::KeyValue, &spec),
            cell_seed(7, "t", &spec)
        );
    }
}
