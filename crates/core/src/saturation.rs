//! Saturation search: find the highest rate limiter a system can sustain.
//!
//! The paper picks its rate limiters empirically ("The minimum rate limiter
//! value of 50 per COCONUT client is an empirical value resulting from
//! experiments", §4.4). This module automates that search: a geometric
//! ramp-up followed by a binary search for the largest rate at which the
//! system still confirms at least [`SaturationSearch::target_delivery`] of
//! the offered payloads within the listen window.

use coconut_types::PayloadKind;

use crate::client::Windows;
use crate::params::{BlockParam, SystemKind, SystemSetup};
use crate::runner::{run_benchmark, BenchmarkResult, BenchmarkSpec};

/// Configuration of a saturation search; build with
/// [`SaturationSearch::new`].
#[derive(Debug, Clone)]
pub struct SaturationSearch {
    system: SystemKind,
    benchmark: PayloadKind,
    setup: SystemSetup,
    ops_per_tx: u32,
    windows: Windows,
    target_delivery: f64,
    min_rate: f64,
    max_rate: f64,
    tolerance: f64,
    seed: u64,
}

/// The result of a saturation search.
#[derive(Debug, Clone)]
pub struct SaturationResult {
    /// The highest sustainable aggregate rate found (payloads/s).
    pub rate: f64,
    /// The benchmark result at that rate.
    pub at_rate: BenchmarkResult,
    /// Rates probed, in order, with their delivery ratios.
    pub probes: Vec<(f64, f64)>,
}

impl SaturationSearch {
    /// Creates a search with sensible defaults: 90% delivery target,
    /// rates 10–10,000, 10% resolution, 6-second windows.
    pub fn new(system: SystemKind, benchmark: PayloadKind) -> Self {
        SaturationSearch {
            system,
            benchmark,
            setup: SystemSetup::default(),
            ops_per_tx: 1,
            windows: Windows::scaled(0.02),
            target_delivery: 0.9,
            min_rate: 10.0,
            max_rate: 10_000.0,
            tolerance: 0.1,
            seed: 0x5A7,
        }
    }

    /// Sets the deployment (block parameter, nodes, network).
    pub fn setup(mut self, setup: SystemSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Sets the block parameter on the current setup.
    pub fn block_param(mut self, param: BlockParam) -> Self {
        self.setup.block_param = param;
        self
    }

    /// Sets operations per transaction / batch.
    pub fn ops_per_tx(mut self, ops: u32) -> Self {
        self.ops_per_tx = ops;
        self
    }

    /// Sets the client windows used per probe.
    pub fn windows(mut self, windows: Windows) -> Self {
        self.windows = windows;
        self
    }

    /// Sets the delivery ratio that counts as "sustained".
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < target <= 1.0`.
    pub fn target_delivery(mut self, target: f64) -> Self {
        assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
        self.target_delivery = target;
        self
    }

    /// Sets the search range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max`.
    pub fn rate_range(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min < max, "need 0 < min < max");
        self.min_rate = min;
        self.max_rate = max;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn probe(&self, rate: f64, probes: &mut Vec<(f64, f64)>) -> (BenchmarkResult, bool) {
        let spec = BenchmarkSpec::new(self.system, self.benchmark)
            .setup(self.setup.clone())
            .rate(rate)
            .ops_per_tx(self.ops_per_tx)
            .windows(self.windows)
            .repetitions(1);
        let result = run_benchmark(&spec, self.seed);
        let delivery = result.delivery_ratio();
        probes.push((rate, delivery));
        let sustained = delivery >= self.target_delivery && result.live;
        (result, sustained)
    }

    /// Runs the search: double from `min_rate` until delivery drops below
    /// the target (or `max_rate` is hit), then binary-search the boundary.
    ///
    /// Returns `None` when even `min_rate` cannot be sustained.
    pub fn run(&self) -> Option<SaturationResult> {
        let mut probes = Vec::new();

        // Ramp up geometrically.
        let mut good_rate = None;
        let mut good_result = None;
        let mut bad_rate = None;
        let mut rate = self.min_rate;
        while rate <= self.max_rate {
            let (result, sustained) = self.probe(rate, &mut probes);
            if sustained {
                good_rate = Some(rate);
                good_result = Some(result);
                rate *= 2.0;
            } else {
                bad_rate = Some(rate);
                break;
            }
        }
        let mut lo = good_rate?;
        let mut best = good_result.expect("result recorded with rate");
        let Some(mut hi) = bad_rate else {
            // Sustained everything up to max_rate.
            return Some(SaturationResult {
                rate: lo,
                at_rate: best,
                probes,
            });
        };

        // Binary search to the requested resolution.
        while hi / lo > 1.0 + self.tolerance {
            let mid = (lo * hi).sqrt();
            let (result, sustained) = self.probe(mid, &mut probes);
            if sustained {
                lo = mid;
                best = result;
            } else {
                hi = mid;
            }
        }
        Some(SaturationResult {
            rate: lo,
            at_rate: best,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::SimDuration;

    #[test]
    fn finds_fabric_knee_in_plausible_range() {
        let result = SaturationSearch::new(SystemKind::Fabric, PayloadKind::DoNothing)
            .block_param(BlockParam::MaxMessageCount(50))
            .rate_range(100.0, 6400.0)
            .run()
            .expect("fabric sustains the minimum rate");
        // The model's validation stage serves ≈ 1,500–1,700 tx/s.
        assert!(
            (400.0..4000.0).contains(&result.rate),
            "knee at {} tx/s",
            result.rate
        );
        assert!(result.at_rate.delivery_ratio() >= 0.9);
        // The ramp recorded both sustained and failed probes.
        assert!(result.probes.len() >= 3);
        assert!(result.probes.iter().any(|&(_, d)| d < 0.9));
    }

    #[test]
    fn corda_os_knee_is_tiny() {
        let result = SaturationSearch::new(SystemKind::CordaOs, PayloadKind::DoNothing)
            .rate_range(2.0, 400.0)
            .windows(crate::client::Windows::scaled(0.05))
            .run()
            .expect("corda sustains a trickle");
        assert!(result.rate < 100.0, "Corda OS knee at {}", result.rate);
    }

    #[test]
    fn impossible_target_returns_none() {
        // Quorum with blockperiod 5 s cannot confirm anything inside a
        // 3-second listen window, so even the minimum rate fails.
        let result = SaturationSearch::new(SystemKind::Quorum, PayloadKind::DoNothing)
            .block_param(BlockParam::BlockPeriod(SimDuration::from_secs(5)))
            .windows(crate::client::Windows::scaled(0.01))
            .rate_range(10.0, 100.0)
            .run();
        assert!(result.is_none());
    }

    #[test]
    #[should_panic(expected = "target must be in (0, 1]")]
    fn invalid_target_rejected() {
        let _ =
            SaturationSearch::new(SystemKind::Fabric, PayloadKind::DoNothing).target_delivery(0.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < min < max")]
    fn invalid_range_rejected() {
        let _ =
            SaturationSearch::new(SystemKind::Fabric, PayloadKind::DoNothing).rate_range(5.0, 5.0);
    }
}
