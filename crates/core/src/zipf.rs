//! A seeded, deterministic Zipfian key sampler with a precomputed CDF.
//!
//! BLOCKBENCH's YCSB port (Dinh et al.) drives contention by skewing key
//! popularity with a Zipfian distribution: key rank `r` (1-based) is drawn
//! with probability `r^-s / H(n, s)` where `H` is the generalized harmonic
//! number. The sampler here inverts a precomputed CDF with a binary search,
//! so a draw is a pure function of the uniform input — the same `(seed,
//! client, thread, seq)` coordinates always yield the same key, across
//! runs, `--jobs` splits, and system subsets.

/// A Zipfian distribution over ranks `0..n` with exponent `s`.
///
/// `s = 0` degenerates to the uniform distribution; larger exponents
/// concentrate mass on the lowest ranks (rank 0 is the hottest key).
///
/// # Example
///
/// ```
/// use coconut::zipf::Zipf;
///
/// let z = Zipf::new(100, 1.2);
/// assert_eq!(z.len(), 100);
/// // u = 0 maps to the hottest rank, u -> 1 walks down the tail.
/// assert_eq!(z.sample(0.0), 0);
/// assert!(z.sample(0.999_999) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[r]` = P(rank <= r); the last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for r in 1..=n {
            total += (r as f64).powf(-s);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        // Guard against accumulated rounding ever leaving the top rank
        // unreachable.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` only for the degenerate single-rank distribution's emptiness
    /// check (never: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform `u` in `[0, 1)` to a rank by inverting the CDF
    /// (binary search, `O(log n)`).
    pub fn sample(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        // partition_point returns the first rank whose CDF covers u.
        self.cdf.partition_point(|&p| p < u || (p == u && u < 1.0)) as u64
    }
}

/// Turns a derived 64-bit hash into a uniform `f64` in `[0, 1)`.
pub fn unit_from_hash(h: u64) -> f64 {
    // 53 mantissa bits: exact, uniform, and never 1.0.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::SeedDeriver;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 0.99);
        for w in z.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*z.cdf.last().unwrap(), 1.0);
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        assert_eq!(z.sample(0.10), 0);
        assert_eq!(z.sample(0.30), 1);
        assert_eq!(z.sample(0.60), 2);
        assert_eq!(z.sample(0.90), 3);
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        // With s = 1.4 over 100 keys, the hottest rank alone holds > 30 %
        // of the mass; under uniform it holds 1 %.
        let skewed = Zipf::new(100, 1.4);
        assert!(skewed.cdf[0] > 0.30, "cdf[0] = {}", skewed.cdf[0]);
        let flat = Zipf::new(100, 0.0);
        assert!((flat.cdf[0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn seeded_draw_frequencies_are_pinned() {
        // Statistical pin: the hottest key's empirical frequency from the
        // deterministic hash stream must sit within tolerance of the
        // analytic mass — and be exactly reproducible (same seed → same
        // counts, independent of draw order or job splits).
        let z = Zipf::new(64, 1.2);
        let seeds = SeedDeriver::new(0xC0C0);
        let draws = 20_000u64;
        let count_hot = |z: &Zipf| {
            (0..draws)
                .filter(|&i| z.sample(unit_from_hash(seeds.seed("zipf-pin", i))) == 0)
                .count() as f64
        };
        let hot = count_hot(&z);
        let expected = z.cdf[0] * draws as f64;
        let tolerance = 0.05 * draws as f64;
        assert!(
            (hot - expected).abs() < tolerance,
            "hot {hot} vs expected {expected}"
        );
        // Bit-level determinism across repeated evaluation.
        assert_eq!(hot, count_hot(&z.clone()));
    }

    #[test]
    fn unit_from_hash_stays_in_range() {
        for h in [0, 1, u64::MAX, u64::MAX / 2, 0xDEAD_BEEF] {
            let u = unit_from_hash(h);
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }
}
