//! Rendering benchmark results: the paper's table rows and heat maps.

use std::io::Write as _;
use std::path::Path;

use crate::json::Json;
use crate::runner::BenchmarkResult;
use crate::stats::Stats;

/// A renderable experiment report.
///
/// Every experiment-family result — [`Fig3Result`], [`Fig5Result`],
/// [`TableResult`], [`ChaosResult`], [`SweepResult`] — emits a fixed-width
/// text rendering and a deterministic pretty-JSON form through this one
/// interface, so the `repro` binary dispatches output format uniformly
/// instead of matching per result type. Both forms are pure functions of
/// the result: identical configs and seeds serialize byte-identically.
///
/// [`Fig3Result`]: crate::experiments::Fig3Result
/// [`Fig5Result`]: crate::experiments::Fig5Result
/// [`TableResult`]: crate::experiments::TableResult
/// [`ChaosResult`]: crate::experiments::ChaosResult
/// [`SweepResult`]: crate::experiments::SweepResult
pub trait Report {
    /// Renders the result as fixed-width text in the paper's layout.
    fn render(&self) -> String;

    /// The result as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String;

    /// The result as CSV, for reports whose rows are flat
    /// [`BenchmarkResult`]s; `None` where no flat-row form exists.
    fn to_csv(&self) -> Option<String> {
        None
    }
}

/// Renders results as a paper-style table with MTPS / MFLS statistics and
/// transaction counts (the layout of Tables 7–20).
///
/// # Example
///
/// ```
/// use coconut::prelude::*;
///
/// let spec = BenchmarkSpec::new(SystemKind::Fabric, PayloadKind::DoNothing)
///     .rate(100.0)
///     .block_param(BlockParam::MaxMessageCount(20))
///     .send_duration(SimDuration::from_secs(2))
///     .repetitions(1);
/// let result = run_benchmark(&spec, 1);
/// let rendered = table(&[result]);
/// assert!(rendered.contains("MTPS"));
/// assert!(rendered.contains("Fabric"));
/// ```
pub fn table(results: &[BenchmarkResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| System | Benchmark | RL | Param | Ops | MTPS | SD | SEM | 95% CI | MFLS | SD | SEM | 95% CI | D | Received | Expected |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | ±{:.2} | {:.2} | {:.2} | {:.2} | ±{:.2} | {:.2} | {:.2} | {:.0} |\n",
            r.system,
            r.benchmark,
            r.rate,
            r.block_param,
            r.ops_per_tx,
            r.mtps.mean,
            r.mtps.sd,
            r.mtps.sem,
            r.mtps.ci95,
            r.mfls.mean,
            r.mfls.sd,
            r.mfls.sem,
            r.mfls.ci95,
            r.duration.mean,
            r.received.mean,
            r.expected,
        ));
    }
    out
}

/// Renders the Figure 3 / Figure 4 heat map: the best-MTPS cell per
/// (benchmark, system) with the corresponding MFLS and Duration.
///
/// `grid[b][s]` must hold the best result of benchmark `b` on system `s`
/// (or `None` if the cell failed completely); `benchmarks` and `systems`
/// are the axis labels.
pub fn heatmap(
    benchmarks: &[&str],
    systems: &[&str],
    grid: &[Vec<Option<BenchmarkResult>>],
) -> String {
    assert_eq!(grid.len(), benchmarks.len(), "one row per benchmark");
    let width = 26;
    let mut out = String::new();
    out.push_str(&format!("{:24}", ""));
    for s in systems {
        out.push_str(&format!("{s:^width$}"));
    }
    out.push('\n');
    for (bi, b) in benchmarks.iter().enumerate() {
        assert_eq!(grid[bi].len(), systems.len(), "one column per system");
        let mut lines = [
            format!("{b:<24}"),
            format!("{:24}", ""),
            format!("{:24}", ""),
        ];
        for cell in &grid[bi] {
            match cell {
                Some(r) => {
                    lines[0].push_str(&format!("{:^width$}", format!("MTPS={:.2}", r.mtps.mean)));
                    lines[1].push_str(&format!("{:^width$}", format!("MFLS={:.2}s", r.mfls.mean)));
                    lines[2].push_str(&format!(
                        "{:^width$}",
                        format!("D={:.2}s ({})", r.duration.mean, r.block_param)
                    ));
                }
                None => {
                    lines[0].push_str(&format!("{:^width$}", "MTPS=0.00"));
                    lines[1].push_str(&format!("{:^width$}", "MFLS=0.00s"));
                    lines[2].push_str(&format!("{:^width$}", "D=0.00s"));
                }
            }
        }
        out.push_str(&lines.join("\n"));
        out.push_str("\n\n");
    }
    out
}

/// Renders a generic aligned-text heat map: one row per `rows` label, one
/// column per `cols` label, with `cells[r][c]` holding the stacked text
/// lines of that cell (an empty cell renders blank). The column width fits
/// the longest line; output is a pure function of the inputs.
///
/// This is the renderer behind the chaos sweep's system × fault-kind grid;
/// [`heatmap`] stays the [`BenchmarkResult`]-specific Figure 3/4 layout.
///
/// # Panics
///
/// Panics unless `cells` is exactly `rows.len()` × `cols.len()`.
pub fn grid_heatmap(rows: &[&str], cols: &[&str], cells: &[Vec<Vec<String>>]) -> String {
    assert_eq!(cells.len(), rows.len(), "one cell row per row label");
    let label_w = rows.iter().map(|r| r.len()).max().unwrap_or(0).max(1) + 2;
    let cell_w = cols
        .iter()
        .map(|c| c.len())
        .chain(
            cells
                .iter()
                .flat_map(|row| row.iter().flat_map(|cell| cell.iter().map(String::len))),
        )
        .max()
        .unwrap_or(0)
        .max(4)
        + 4;
    let mut out = String::new();
    out.push_str(&format!("{:label_w$}", ""));
    for c in cols {
        out.push_str(&format!("{c:^cell_w$}"));
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
    for (ri, r) in rows.iter().enumerate() {
        assert_eq!(cells[ri].len(), cols.len(), "one cell per column label");
        let depth = cells[ri].iter().map(Vec::len).max().unwrap_or(0).max(1);
        for line in 0..depth {
            if line == 0 {
                out.push_str(&format!("{r:<label_w$}"));
            } else {
                out.push_str(&format!("{:label_w$}", ""));
            }
            for cell in &cells[ri] {
                let text = cell.get(line).map_or("", String::as_str);
                out.push_str(&format!("{text:^cell_w$}"));
            }
            // Centering pads both sides; strip the trailing run so the
            // output has no invisible end-of-line whitespace.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders a latency-distribution table (mean / p50 / p95 / p99) — an
/// extension beyond the paper's mean-only reporting.
pub fn latency_table(results: &[BenchmarkResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| System | Benchmark | RL | MFLS | p50 | p95 | p99 |\n|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.system, r.benchmark, r.rate, r.mfls.mean, r.p50.mean, r.p95.mean, r.p99.mean
        ));
    }
    out
}

/// Renders a log-scale series table for Figure 5 (MTPS vs node count).
pub fn scalability_table(systems: &[&str], node_counts: &[u32], grid: &[Vec<f64>]) -> String {
    assert_eq!(grid.len(), systems.len(), "one row per system");
    let mut out = String::new();
    out.push_str("| System |");
    for n in node_counts {
        out.push_str(&format!(" {n} nodes |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in node_counts {
        out.push_str("---|");
    }
    out.push('\n');
    for (si, s) in systems.iter().enumerate() {
        assert_eq!(grid[si].len(), node_counts.len());
        out.push_str(&format!("| {s} |"));
        for v in &grid[si] {
            if *v == 0.0 {
                out.push_str(" fail |");
            } else {
                out.push_str(&format!(" {v:.2} |"));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders results as CSV (header + one row per result), the format most
/// plotting pipelines ingest directly.
pub fn to_csv(results: &[BenchmarkResult]) -> String {
    let mut out = String::from(
        "system,benchmark,rate,block_param,ops_per_tx,mtps_mean,mtps_sd,mtps_sem,mtps_ci95,\
         mfls_mean,mfls_sd,p50,p95,p99,duration_mean,received_mean,expected,live\n",
    );
    for r in results {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.2},{:.0},{}\n",
            r.system,
            r.benchmark,
            r.rate,
            r.block_param,
            r.ops_per_tx,
            r.mtps.mean,
            r.mtps.sd,
            r.mtps.sem,
            r.mtps.ci95,
            r.mfls.mean,
            r.mfls.sd,
            r.p50.mean,
            r.p95.mean,
            r.p99.mean,
            r.duration.mean,
            r.received.mean,
            r.expected,
            r.live,
        ));
    }
    out
}

/// Persists results as CSV (see [`to_csv`]).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_csv(results: &[BenchmarkResult], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_csv(results))
}

fn stats_to_json(s: &Stats) -> Json {
    Json::Obj(vec![
        ("mean".into(), Json::Num(s.mean)),
        ("sd".into(), Json::Num(s.sd)),
        ("sem".into(), Json::Num(s.sem)),
        ("ci95".into(), Json::Num(s.ci95)),
        ("n".into(), Json::Num(s.n as f64)),
    ])
}

fn stats_from_json(v: &Json, field: &str) -> std::io::Result<Stats> {
    let obj = v
        .get(field)
        .ok_or_else(|| bad_data(&format!("missing stats field '{field}'")))?;
    let num = |key: &str| {
        obj.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad_data(&format!("missing number '{field}.{key}'")))
    };
    Ok(Stats {
        mean: num("mean")?,
        sd: num("sd")?,
        sem: num("sem")?,
        ci95: num("ci95")?,
        n: num("n")? as usize,
    })
}

fn bad_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Renders results as pretty JSON (the paper persists all collected
/// evaluation data; we use a file per experiment). The output is stable:
/// identical results serialize byte-identically.
pub fn to_json(results: &[BenchmarkResult]) -> String {
    let items = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("system".into(), Json::Str(r.system.clone())),
                ("benchmark".into(), Json::Str(r.benchmark.clone())),
                ("rate".into(), Json::Num(r.rate)),
                ("block_param".into(), Json::Str(r.block_param.clone())),
                ("ops_per_tx".into(), Json::Num(r.ops_per_tx as f64)),
                ("mtps".into(), stats_to_json(&r.mtps)),
                ("mfls".into(), stats_to_json(&r.mfls)),
                ("p50".into(), stats_to_json(&r.p50)),
                ("p95".into(), stats_to_json(&r.p95)),
                ("p99".into(), stats_to_json(&r.p99)),
                ("duration".into(), stats_to_json(&r.duration)),
                ("received".into(), stats_to_json(&r.received)),
                ("expected".into(), Json::Num(r.expected)),
                ("live".into(), Json::Bool(r.live)),
            ])
        })
        .collect();
    Json::Arr(items).to_pretty()
}

/// Persists results as pretty JSON (see [`to_json`]).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_json(results: &[BenchmarkResult], path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(results).as_bytes())
}

/// Loads results saved by [`save_json`].
///
/// # Errors
///
/// Returns I/O or deserialization errors.
pub fn load_json(path: &Path) -> std::io::Result<Vec<BenchmarkResult>> {
    let data = std::fs::read_to_string(path)?;
    let root = crate::json::parse(&data).map_err(|e| bad_data(&e))?;
    let items = root
        .as_array()
        .ok_or_else(|| bad_data("top-level value must be an array"))?;
    items
        .iter()
        .map(|v| {
            let s = |key: &str| {
                v.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad_data(&format!("missing string '{key}'")))
            };
            let num = |key: &str| {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad_data(&format!("missing number '{key}'")))
            };
            Ok(BenchmarkResult {
                system: s("system")?,
                benchmark: s("benchmark")?,
                rate: num("rate")?,
                block_param: s("block_param")?,
                ops_per_tx: num("ops_per_tx")? as u32,
                mtps: stats_from_json(v, "mtps")?,
                mfls: stats_from_json(v, "mfls")?,
                p50: stats_from_json(v, "p50")?,
                p95: stats_from_json(v, "p95")?,
                p99: stats_from_json(v, "p99")?,
                duration: stats_from_json(v, "duration")?,
                received: stats_from_json(v, "received")?,
                expected: num("expected")?,
                live: v
                    .get("live")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad_data("missing bool 'live'"))?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn dummy(system: &str, benchmark: &str, mtps: f64) -> BenchmarkResult {
        BenchmarkResult {
            system: system.into(),
            benchmark: benchmark.into(),
            rate: 200.0,
            block_param: "MM=100".into(),
            ops_per_tx: 1,
            mtps: Stats::from_samples(&[mtps]),
            mfls: Stats::from_samples(&[1.5]),
            p50: Stats::from_samples(&[1.2]),
            p95: Stats::from_samples(&[3.0]),
            p99: Stats::from_samples(&[4.5]),
            duration: Stats::from_samples(&[30.0]),
            received: Stats::from_samples(&[6000.0]),
            expected: 6000.0,
            live: true,
        }
    }

    #[test]
    fn table_contains_all_columns() {
        let t = table(&[dummy("Fabric", "DoNothing", 800.0)]);
        for needle in [
            "MTPS",
            "MFLS",
            "95% CI",
            "Fabric",
            "DoNothing",
            "800.00",
            "MM=100",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn heatmap_renders_cells_and_failures() {
        let grid = vec![vec![Some(dummy("Fabric", "DoNothing", 1400.0)), None]];
        let h = heatmap(&["DoNothing"], &["Fabric", "Quorum"], &grid);
        assert!(h.contains("MTPS=1400.00"));
        assert!(h.contains("MTPS=0.00"), "failed cells show zeroes");
        assert!(h.contains("DoNothing"));
    }

    #[test]
    fn grid_heatmap_aligns_and_handles_empty_cells() {
        let cells = vec![
            vec![
                vec!["rec=0.0 s".to_string(), "deliv=1.000".to_string()],
                vec![],
            ],
            vec![vec!["n/a".to_string()], vec!["rec=2.0 s".to_string()]],
        ];
        let h = grid_heatmap(&["Fabric", "Quorum"], &["crash", "loss"], &cells);
        assert!(h.contains("crash"));
        assert!(h.contains("rec=0.0 s"));
        assert!(h.contains("n/a"));
        // No line carries trailing whitespace (byte-stable rendering).
        assert!(h.lines().all(|l| l == l.trim_end()), "{h:?}");
        // Deterministic.
        assert_eq!(
            h,
            grid_heatmap(&["Fabric", "Quorum"], &["crash", "loss"], &cells)
        );
    }

    #[test]
    #[should_panic(expected = "one cell row per row label")]
    fn grid_heatmap_validates_shape() {
        let _ = grid_heatmap(&["A", "B"], &["C"], &[vec![vec![]]]);
    }

    #[test]
    fn latency_table_shows_percentiles() {
        let t = latency_table(&[dummy("Quorum", "Balance", 300.0)]);
        assert!(t.contains("p95"));
        assert!(t.contains("3.00"));
        assert!(t.contains("4.50"));
    }

    #[test]
    fn scalability_marks_failures() {
        let t = scalability_table(&["Fabric"], &[8, 16, 32], &[vec![700.0, 0.0, 0.0]]);
        assert!(t.contains("700.00"));
        assert!(t.contains("fail"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[
            dummy("Fabric", "DoNothing", 800.0),
            dummy("Diem", "Balance", 64.0),
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("system,benchmark,rate"));
        assert!(lines[1].starts_with("Fabric,DoNothing,200,MM=100,1,800.0000"));
        assert!(lines[2].contains("Diem,Balance"));
        assert!(lines[1].ends_with(",true"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("coconut-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.csv");
        save_csv(&[dummy("Quorum", "Balance", 365.0)], &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("Quorum,Balance"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("coconut-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.json");
        let original = vec![dummy("Diem", "Balance", 64.0)];
        save_json(&original, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].system, "Diem");
        assert_eq!(loaded[0].mtps.mean, 64.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "one row per benchmark")]
    fn heatmap_validates_shape() {
        let _ = heatmap(&["A", "B"], &["S"], &[vec![None]]);
    }
}
