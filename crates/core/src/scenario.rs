//! The scenario DSL: one deterministic timeline engine under every
//! campaign.
//!
//! A [`ScenarioBuilder`] composes an experiment as a *timeline* — load
//! phases (flash crowds, ramps, diurnal cycles) layered over a constant
//! base rate, fault events reusing the simnet
//! [`FaultPlan`](coconut_simnet::FaultPlan) vocabulary (crash/heal windows,
//! partitions, loss bursts, Byzantine windows, membership join/leave), and
//! checkpointed [`Check`] assertions evaluated on the deterministic clock —
//! and compiles it into an immutable [`Timeline`]. The runner executes a
//! timeline against any system with a content-addressed per-cell seed,
//! exactly like the classic experiment grids, so filtering a campaign or
//! changing the worker count never changes a remaining cell's bytes.
//!
//! All four classic campaigns ([`crate::experiments::chaos`],
//! the sweep, [`crate::experiments::overload`],
//! [`crate::experiments::churn`]) are expressed on this engine, and their
//! golden-pinned reports are reproduced byte-for-byte: an overlay-free
//! timeline builds exactly the schedule [`run_chaos`] built, and a single
//! flash-crowd overlay reproduces the overload campaign's pulse schedule
//! (same seed streams, same id tagging, same merge order).
//!
//! # Same-tick ordering
//!
//! Three contracts pin what happens when events share a virtual timestamp,
//! so scenario runs are deterministic by construction and not by accident:
//!
//! 1. **Faults before client actions** — the chaos loop drains every fault
//!    due at time `t` strictly before any submission or timeout at `t`
//!    (see [`run_chaos_with_schedule`]).
//! 2. **Faults among themselves** — the
//!    [`FaultScheduler`](coconut_simnet::FaultScheduler) stable-sorts by
//!    time only; ties replay in the order the builder added them. A
//!    timeline that crashes and partitions at one instant applies the
//!    crash first iff it was declared first.
//! 3. **Client sends among themselves** — the merged schedule is sorted by
//!    `(at, tx.id())`, and overlay ids carry a per-phase tag bit
//!    ([`overlay_tag`]) so base and overlay ids can never collide.

use coconut_chains::{Stage, StageReport, SystemStats};
use coconut_simnet::{FaultEvent, FaultPlan, LatencyModel, RegionMap};
use coconut_types::{
    ClientId, ClientTx, NodeId, PayloadKind, SeedDeriver, SimDuration, SimTime, ThreadId, TxId,
};

use std::sync::Arc;

use crate::chaos::{run_chaos_with_schedule, ChaosRun, ClientProtection, RetryPolicy};
use crate::client::{build_schedule_for, ScheduledTx, Windows};
use crate::json::Json;
use crate::params::{build_system, SystemKind, SystemSetup};
use crate::runner::BenchmarkSpec;
use crate::workload::{paper, Workload};

/// The shape of one load phase layered over the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShape {
    /// A flash crowd: constant `(multiplier − 1) ×` base extra load over
    /// the phase (the overload campaign's pulse).
    Flash {
        /// Total offered load during the phase, relative to the base rate.
        multiplier: f64,
    },
    /// A linear ramp: extra load grows from zero at the phase start to
    /// `(to_multiplier − 1) ×` base at the phase end.
    Ramp {
        /// Total offered load at the phase end, relative to the base rate.
        to_multiplier: f64,
    },
    /// A diurnal cycle: extra load follows
    /// `amplitude × base × (1 + sin(2π·t/period)) / 2`, i.e. swings
    /// between zero and `amplitude ×` base extra.
    Diurnal {
        /// Peak extra load relative to the base rate.
        amplitude: f64,
        /// Length of one full cycle.
        period: SimDuration,
    },
}

/// One load phase of a timeline: a [`LoadShape`] active over
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// When the phase starts.
    pub start: SimTime,
    /// When the phase ends.
    pub end: SimTime,
    /// The extra-load shape.
    pub shape: LoadShape,
}

/// The id tag of load-overlay phase `i` (0-based): bit 44 shifted by the
/// phase index plus one, so overlay ids can never collide with the base
/// schedule (per-client sequence numbers use bits 0..44, threads sit at
/// 48..56 and retry derivation at 56..). Phase 0's tag equals the overload
/// campaign's historical pulse tag.
pub fn overlay_tag(phase: usize) -> u64 {
    ((phase + 1) as u64) << 44
}

/// A checkpointed assertion, evaluated on the deterministic clock at the
/// timeline instant it was attached to (see [`Cursor::assert`]). Checks
/// never panic: each evaluates to a [`CheckOutcome`] in the report, so a
/// failed expectation is a pinned, diffable fact rather than a crashed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Check {
    /// Goodput floor: mean bucket throughput over `[since, checkpoint)` is
    /// at least `min_mtps`.
    GoodputFloor {
        /// Window start.
        since: SimTime,
        /// Required mean throughput (ops/s).
        min_mtps: f64,
    },
    /// The system has halted: zero committed operations over
    /// `[since, checkpoint)`.
    Halted {
        /// Window start (leave a drain grace after the halting fault:
        /// in-flight blocks may still land for a few seconds).
        since: SimTime,
    },
    /// Delivery floor: the run's final delivery ratio is at least
    /// `min_ratio`.
    DeliveryFloor {
        /// Required confirmed/scheduled ratio.
        min_ratio: f64,
    },
    /// The safety monitor (where the system carries one) reported zero
    /// violations. Vacuously true for CFT systems.
    SafetyClean,
    /// Safety was violated at least `count` times (the beyond-f Byzantine
    /// expectation).
    SafetyViolationsAtLeast {
        /// Required violation count.
        count: u64,
    },
    /// Re-stabilization deadline: throughput sustains ≥ `threshold` × the
    /// pre-fault mean (fault window `[fault_from, fault_until)`) by the
    /// checkpoint.
    RestabilizesBy {
        /// When the disturbance began (the pre-fault window ends here).
        fault_from: SimTime,
        /// When the disturbance ended (recovery is measured from here).
        fault_until: SimTime,
        /// Fraction of the pre-fault mean that must sustain.
        threshold: f64,
    },
    /// The system went through at least `count` configuration epochs
    /// (membership churn completed).
    EpochsAtLeast {
        /// Required epoch count.
        count: u64,
    },
    /// Stage-residence ceiling: the probe-reported share of total
    /// residence time held by `stage` stays below `max_share`. Vacuously
    /// true when the timeline did not arm [`ScenarioBuilder::probes`].
    StageResidenceBelow {
        /// The pipeline stage under the ceiling.
        stage: Stage,
        /// Exclusive upper bound on the stage's residence share.
        max_share: f64,
    },
}

impl Check {
    /// Stable label of the check kind, used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Check::GoodputFloor { .. } => "goodput-floor",
            Check::Halted { .. } => "halted",
            Check::DeliveryFloor { .. } => "delivery-floor",
            Check::SafetyClean => "safety-clean",
            Check::SafetyViolationsAtLeast { .. } => "safety-violations",
            Check::RestabilizesBy { .. } => "restabilizes-by",
            Check::EpochsAtLeast { .. } => "epochs",
            Check::StageResidenceBelow { .. } => "stage-residence",
        }
    }

    /// Evaluates the check at checkpoint `at` against a finished run.
    fn evaluate(
        &self,
        at: SimTime,
        run: &ChaosRun,
        epochs: u64,
        stages: Option<&StageReport>,
    ) -> CheckOutcome {
        let (pass, observed) = match *self {
            Check::GoodputFloor { since, min_mtps } => {
                let got = run.window_mtps(since, at);
                (got >= min_mtps, format!("{got:.1} mtps (min {min_mtps})"))
            }
            Check::Halted { since } => {
                let got = run.window_mtps(since, at);
                (got == 0.0, format!("{got:.1} mtps (want 0)"))
            }
            Check::DeliveryFloor { min_ratio } => {
                let got = run.accounting.delivery_ratio();
                (got >= min_ratio, format!("{got:.3} (min {min_ratio})"))
            }
            Check::SafetyClean => match &run.safety {
                None => (true, "n/a (CFT)".to_string()),
                Some(s) => {
                    let v = s.violations.total();
                    (v == 0, format!("{v} violations"))
                }
            },
            Check::SafetyViolationsAtLeast { count } => {
                let v = run.safety.as_ref().map_or(0, |s| s.violations.total());
                (v >= count, format!("{v} violations (min {count})"))
            }
            Check::RestabilizesBy {
                fault_from,
                fault_until,
                threshold,
            } => match run.recovery_secs(fault_from, fault_until, threshold) {
                Some(r) if fault_until + SimDuration::from_secs_f64(r) <= at => {
                    (true, format!("recovered in {r:.1} s"))
                }
                Some(r) => (false, format!("recovered in {r:.1} s, past deadline")),
                None => (false, "never recovered".to_string()),
            },
            Check::EpochsAtLeast { count } => {
                (epochs >= count, format!("{epochs} epochs (min {count})"))
            }
            Check::StageResidenceBelow { stage, max_share } => match stages {
                None => (true, "n/a (no probes)".to_string()),
                Some(r) => {
                    let got = r.residence_share(stage);
                    (got < max_share, format!("{got:.3} share (max {max_share})"))
                }
            },
        };
        CheckOutcome {
            at,
            check: self.label(),
            pass,
            observed,
        }
    }
}

/// The verdict of one checkpointed assertion after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The checkpoint's virtual time.
    pub at: SimTime,
    /// The check kind's label.
    pub check: &'static str,
    /// Whether the expectation held.
    pub pass: bool,
    /// What was actually observed, human-readable.
    pub observed: String,
}

impl CheckOutcome {
    /// The outcome as a JSON object (field order pinned by goldens).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("at_secs".into(), Json::Num(self.at.as_secs_f64())),
            ("check".into(), Json::Str(self.check.into())),
            ("pass".into(), Json::Bool(self.pass)),
            ("observed".into(), Json::Str(self.observed.clone())),
        ])
    }
}

/// Fluent builder of a scenario timeline. Configure the base workload
/// (payload, rate, windows, deployment, client policy), then move a time
/// cursor with [`ScenarioBuilder::at`] and attach load phases, fault
/// events, and assertions; [`Cursor::build`] (or
/// [`ScenarioBuilder::build`] for an event-free baseline) compiles the
/// immutable [`Timeline`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    payload: PayloadKind,
    workload: Arc<dyn Workload + Send + Sync>,
    rate: f64,
    ops_per_tx: u32,
    windows: Windows,
    setup: SystemSetup,
    policy: RetryPolicy,
    protection: ClientProtection,
    plan: FaultPlan,
    phases: Vec<LoadPhase>,
    checks: Vec<(SimTime, Check)>,
    probes: bool,
}

impl ScenarioBuilder {
    /// A scenario sending `payload` at the aggregate `rate` over `windows`,
    /// with the default deployment, the chaos-suite retry policy, and no
    /// client protection.
    pub fn new(payload: PayloadKind, rate: f64, windows: Windows) -> Self {
        ScenarioBuilder {
            payload,
            workload: Arc::new(paper(payload)),
            rate,
            ops_per_tx: 1,
            windows,
            setup: SystemSetup::default(),
            policy: RetryPolicy::chaos_default(),
            protection: ClientProtection::disabled(),
            plan: FaultPlan::new(),
            phases: Vec::new(),
            checks: Vec::new(),
            probes: false,
        }
    }

    /// Replaces the transaction generator with an arbitrary [`Workload`]
    /// instance (e.g. [`crate::workload::Smallbank`] or
    /// [`crate::workload::Ycsb`]). The builder's `payload` kind is kept
    /// for spec labelling; the schedule's payload stream comes entirely
    /// from `workload`. The default is the paper workload of the `payload`
    /// kind passed to [`ScenarioBuilder::new`], which reproduces the
    /// legacy `payload_for` stream bit-for-bit.
    pub fn workload(mut self, workload: impl Workload + Send + Sync + 'static) -> Self {
        self.workload = Arc::new(workload);
        self
    }

    /// [`ScenarioBuilder::workload`] for an already-boxed instance, e.g.
    /// one picked by name at runtime.
    pub fn workload_boxed(mut self, workload: Box<dyn Workload + Send + Sync>) -> Self {
        self.workload = Arc::from(workload);
        self
    }

    /// Sets the deployment (nodes, admission pools, standby count).
    pub fn setup(mut self, setup: SystemSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Sets the client retry policy.
    pub fn policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms client-side overload protection.
    pub fn protection(mut self, protection: ClientProtection) -> Self {
        self.protection = protection;
        self
    }

    /// Sets operations per transaction/batch.
    pub fn ops_per_tx(mut self, ops: u32) -> Self {
        self.ops_per_tx = ops;
        self
    }

    /// Arms per-stage pipeline probes
    /// ([`coconut_chains::StageProbe`]): the run's [`ScenarioRun`] then
    /// carries a [`StageReport`] of per-stage residence times, queue
    /// depths, utilization, and sheds. Probes are passive — they never
    /// sample randomness or move the clock — so the run's accounting is
    /// byte-identical with probes on or off.
    pub fn probes(mut self, on: bool) -> Self {
        self.probes = on;
        self
    }

    /// Moves the time cursor to `t`; subsequent cursor calls anchor there.
    pub fn at(self, t: SimTime) -> Cursor {
        Cursor { b: self, t }
    }

    /// Compiles an event-free timeline (the empty scenario: base load only,
    /// no faults, no checks — a legal baseline cell).
    pub fn build(self) -> Timeline {
        Timeline {
            payload: self.payload,
            workload: self.workload,
            rate: self.rate,
            ops_per_tx: self.ops_per_tx,
            windows: self.windows,
            setup: self.setup,
            policy: self.policy,
            protection: self.protection,
            plan: self.plan,
            phases: self.phases,
            checks: self.checks,
            probes: self.probes,
        }
    }
}

/// A time cursor over a [`ScenarioBuilder`]: every event method anchors at
/// the cursor's instant and returns the cursor for chaining.
#[derive(Debug, Clone)]
pub struct Cursor {
    b: ScenarioBuilder,
    t: SimTime,
}

impl Cursor {
    /// Moves the cursor to `t`.
    pub fn at(mut self, t: SimTime) -> Cursor {
        self.t = t;
        self
    }

    /// Crashes every node in `nodes` at the cursor (no scheduled heal).
    pub fn crash(mut self, nodes: &[NodeId]) -> Cursor {
        for &n in nodes {
            self.b.plan = self.b.plan.at(self.t, FaultEvent::CrashNode(n));
        }
        self
    }

    /// Restarts every node in `nodes` at the cursor.
    pub fn restart(mut self, nodes: &[NodeId]) -> Cursor {
        for &n in nodes {
            self.b.plan = self.b.plan.at(self.t, FaultEvent::RestartNode(n));
        }
        self
    }

    /// The classic crash window: crash `nodes` at the cursor, restart them
    /// all at `heal_at` (all crashes precede all restarts, matching
    /// [`FaultPlan::crash_window`]).
    pub fn crash_until(mut self, nodes: &[NodeId], heal_at: SimTime) -> Cursor {
        self.b.plan = self.b.plan.crash_window(nodes, self.t, heal_at);
        self
    }

    /// A loss window at drop probability `p` from the cursor until `until`.
    pub fn loss(mut self, p: f64, until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.loss_window(p, self.t, until);
        self
    }

    /// A raw loss burst of the given `window` length starting at the
    /// cursor (the classic loss-burst arm's event form).
    pub fn loss_burst(mut self, p: f64, window: SimDuration) -> Cursor {
        self.b.plan = self.b.plan.at(self.t, FaultEvent::LossBurst { p, window });
        self
    }

    /// A Byzantine window: `nodes` equivocate and double-vote from the
    /// cursor until `until` (event order per [`FaultPlan::byzantine_window`]).
    pub fn byzantine(mut self, nodes: &[NodeId], until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.byzantine_window(nodes, self.t, until);
        self
    }

    /// A partition window: isolate `nodes` from the cursor until `until`.
    pub fn partition(mut self, nodes: &[NodeId], until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.partition_window(nodes, self.t, until);
        self
    }

    /// A latency-spike window: from the cursor until `until`, inter-server
    /// delays follow `model` instead of the configured one.
    ///
    /// # Panics
    ///
    /// Panics if `until` is not after the cursor.
    pub fn latency_spike(mut self, model: LatencyModel, until: SimTime) -> Cursor {
        assert!(
            until > self.t,
            "the latency-spike window must have positive length"
        );
        self.b.plan = self.b.plan.at(
            self.t,
            FaultEvent::LatencySpike {
                model,
                window: until - self.t,
            },
        );
        self
    }

    /// A straggler window: from the cursor until `until`, `node`'s timers
    /// and messages are stretched by `factor` — the limping-but-alive gray
    /// failure (panics per [`FaultPlan::slow_window`]).
    pub fn slow_node(mut self, node: NodeId, factor: f64, until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.slow_window(node, factor, self.t, until);
        self
    }

    /// A flaky-link window: from the cursor until `until`, each message on
    /// `a ↔ b` drops independently with probability `p` (panics per
    /// [`FaultPlan::flaky_window`]).
    pub fn flaky_link(mut self, a: NodeId, b: NodeId, p: f64, until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.flaky_window(a, b, p, self.t, until);
        self
    }

    /// A half-open-link window: from the cursor until `until`, every
    /// `from → to` message is dropped while replies keep flowing; the heal
    /// is global (panics per [`FaultPlan::asym_partition_window`]).
    pub fn asym_partition(mut self, from: &[NodeId], to: &[NodeId], until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.asym_partition_window(from, to, self.t, until);
        self
    }

    /// A regioned-WAN window: from the cursor until `until`, the
    /// [`RegionMap`]'s extra cross-region latency applies on top of the
    /// configured latency models (panics per [`FaultPlan::region_window`]).
    pub fn region_latency(mut self, map: RegionMap, until: SimTime) -> Cursor {
        self.b.plan = self.b.plan.region_window(map, self.t, until);
        self
    }

    /// A membership join of `node` at the cursor.
    pub fn join(mut self, node: NodeId) -> Cursor {
        self.b.plan = self.b.plan.join_at(node, self.t);
        self
    }

    /// A membership leave of `node` at the cursor.
    pub fn leave(mut self, node: NodeId) -> Cursor {
        self.b.plan = self.b.plan.leave_at(node, self.t);
        self
    }

    /// A flash crowd from the cursor until `until`: total offered load is
    /// `multiplier ×` the base rate during the phase.
    ///
    /// # Panics
    ///
    /// Panics if `until` is not after the cursor or `multiplier <= 1`.
    pub fn flash_crowd(self, multiplier: f64, until: SimTime) -> Cursor {
        assert!(multiplier > 1.0, "a flash crowd must add load");
        self.phase(until, LoadShape::Flash { multiplier })
    }

    /// A linear ramp from the cursor until `until`: offered load grows from
    /// the base rate to `to_multiplier ×` it.
    ///
    /// # Panics
    ///
    /// Panics if `until` is not after the cursor or `to_multiplier <= 1`.
    pub fn ramp_load(self, to_multiplier: f64, until: SimTime) -> Cursor {
        assert!(to_multiplier > 1.0, "a ramp must add load");
        self.phase(until, LoadShape::Ramp { to_multiplier })
    }

    /// A diurnal cycle from the cursor until `until`: extra load swings
    /// sinusoidally between zero and `amplitude ×` the base rate with the
    /// given `period`.
    ///
    /// # Panics
    ///
    /// Panics if `until` is not after the cursor, `amplitude` is not
    /// positive, or `period` is zero.
    pub fn diurnal(self, amplitude: f64, period: SimDuration, until: SimTime) -> Cursor {
        assert!(amplitude > 0.0, "diurnal amplitude must be positive");
        assert!(
            period > SimDuration::ZERO,
            "diurnal period must be positive"
        );
        self.phase(until, LoadShape::Diurnal { amplitude, period })
    }

    fn phase(mut self, until: SimTime, shape: LoadShape) -> Cursor {
        assert!(until > self.t, "a load phase must have positive length");
        self.b.phases.push(LoadPhase {
            start: self.t,
            end: until,
            shape,
        });
        self
    }

    /// Attaches `check`, evaluated at the cursor's instant on the
    /// deterministic clock once the run finishes.
    pub fn assert(mut self, check: Check) -> Cursor {
        self.b.checks.push((self.t, check));
        self
    }

    /// Compiles the timeline.
    pub fn build(self) -> Timeline {
        self.b.build()
    }
}

/// A compiled scenario: the immutable timeline the runner executes. Built
/// by [`ScenarioBuilder`]; runs are pure functions of `(timeline, system,
/// seed)`.
#[derive(Debug, Clone)]
pub struct Timeline {
    payload: PayloadKind,
    workload: Arc<dyn Workload + Send + Sync>,
    rate: f64,
    ops_per_tx: u32,
    windows: Windows,
    setup: SystemSetup,
    policy: RetryPolicy,
    protection: ClientProtection,
    plan: FaultPlan,
    phases: Vec<LoadPhase>,
    checks: Vec<(SimTime, Check)>,
    probes: bool,
}

/// The outcome of executing one [`Timeline`] against one system.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The client-side run (accounting, buckets, latency, safety).
    pub run: ChaosRun,
    /// The system-side counters at the end of the run.
    pub stats: SystemStats,
    /// Configuration epochs the system ended on.
    pub epochs: u64,
    /// One verdict per checkpointed assertion, in declaration order.
    pub checks: Vec<CheckOutcome>,
    /// Per-stage pipeline telemetry, present iff the timeline armed
    /// [`ScenarioBuilder::probes`].
    pub stage_report: Option<StageReport>,
    /// The workload's post-run invariant ([`Workload::verify`]) over the
    /// system's final ledger, or `None` when the system exposes no ledger.
    pub verified: Option<Result<(), String>>,
}

impl ScenarioRun {
    /// `true` when every checkpointed assertion held.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

impl Timeline {
    /// The base offered load (tx/s across all clients).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The send/listen windows.
    pub fn windows(&self) -> Windows {
        self.windows
    }

    /// The compiled fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The load phases, in declaration order.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// The checkpointed assertions, in declaration order.
    pub fn checks(&self) -> &[(SimTime, Check)] {
        &self.checks
    }

    /// The transaction generator driving the schedule — use it to run the
    /// workload's [`Workload::verify`] invariant over a system's final
    /// [`coconut_iel::LedgerState`] after [`Timeline::run`].
    pub fn workload(&self) -> &(dyn Workload + Send + Sync) {
        self.workload.as_ref()
    }

    /// Builds the full submission schedule: the base schedule (seed stream
    /// `("schedule", 0)` — identical to the classic client's) merged with
    /// one overlay per load phase (seed stream `("pulse", i)`, ids tagged
    /// with [`overlay_tag`]`(i)`), sorted by `(at, tx.id())`. With no
    /// phases this is byte-identical to what [`run_chaos`] builds
    /// internally; with a single flash phase it is byte-identical to the
    /// overload campaign's pulse schedule.
    ///
    /// [`run_chaos`]: crate::chaos::run_chaos
    pub fn schedule(&self, seed: u64) -> Vec<ScheduledTx> {
        let seeds = SeedDeriver::new(seed);
        let mut all = build_schedule_for(
            self.workload.as_ref(),
            self.rate,
            self.ops_per_tx,
            self.windows,
            seeds.seed("schedule", 0),
        );
        for (i, phase) in self.phases.iter().enumerate() {
            all.extend(self.overlay(i, phase, &seeds));
        }
        all.sort_by_key(|s| (s.at, s.tx.id()));
        all
    }

    /// The overlay schedule of phase `i`.
    fn overlay(&self, i: usize, phase: &LoadPhase, seeds: &SeedDeriver) -> Vec<ScheduledTx> {
        let tag = overlay_tag(i);
        let overlay_seed = seeds.seed("pulse", i as u64);
        match phase.shape {
            // A flash phase is a constant-rate sub-schedule built exactly
            // like the base one, shifted into the phase window and
            // re-identified — the overload campaign's historical pulse
            // construction, reproduced byte-for-byte for phase 0.
            LoadShape::Flash { multiplier } => {
                let len = phase.end - phase.start;
                let sub = build_schedule_for(
                    self.workload.as_ref(),
                    self.rate * (multiplier - 1.0),
                    self.ops_per_tx,
                    Windows {
                        send: len,
                        listen: len,
                    },
                    overlay_seed,
                );
                let offset = phase.start - SimTime::ZERO;
                sub.into_iter()
                    .map(|s| {
                        let at = s.at + offset;
                        let id = TxId::new(s.tx.id().client(), s.tx.id().seq() | tag);
                        ScheduledTx {
                            at,
                            tx: ClientTx::new(id, s.tx.thread(), s.tx.payloads().to_vec(), at),
                        }
                    })
                    .collect()
            }
            // Varying-rate shapes step the send clock by the instantaneous
            // inter-send gap `1 / r(t)`; when the rate is (near) zero the
            // clock probes forward without emitting. Ids carry the phase
            // tag plus a monotone sequence, so they are unique by
            // construction.
            LoadShape::Ramp { .. } | LoadShape::Diurnal { .. } => {
                // Floor below which no send is scheduled; while below it
                // the clock probes forward one gap (1 s) at a time, so a
                // ramp that opens at zero still wakes up quickly.
                const MIN_RATE: f64 = 1.0;
                let span = (phase.end - phase.start).as_secs_f64();
                let phase_frac =
                    (SeedDeriver::new(overlay_seed).seed("phase", 0) % 1000) as f64 / 1000.0;
                let mut out = Vec::new();
                let mut t = 0.0_f64;
                let mut seq = 0u64;
                let mut phased = false;
                while t < span {
                    let r = self.extra_rate(phase, t);
                    if r < MIN_RATE {
                        t += 1.0 / MIN_RATE;
                        phased = false;
                        continue;
                    }
                    let gap = 1.0 / r;
                    if !phased {
                        // Offset the first send of each active stretch by a
                        // seeded phase fraction of one gap, mirroring the
                        // base client's de-lockstepping.
                        t += gap * phase_frac;
                        phased = true;
                        if t >= span {
                            break;
                        }
                    }
                    let at = phase.start + SimDuration::from_secs_f64(t);
                    let client = ClientId((seq % 4) as u32);
                    let thread = ThreadId(((seq / 4) % 4) as u32);
                    let id = TxId::new(client, tag | seq);
                    let payloads: Vec<_> = (0..self.ops_per_tx)
                        .map(|k| self.workload.payload_at(client, thread, seq + k as u64))
                        .collect();
                    out.push(ScheduledTx {
                        at,
                        tx: ClientTx::new(id, thread, payloads, at),
                    });
                    seq += 1;
                    t += gap;
                }
                out
            }
        }
    }

    /// The extra (overlay) aggregate rate of `phase` at `t` seconds into
    /// the phase.
    fn extra_rate(&self, phase: &LoadPhase, t: f64) -> f64 {
        let span = (phase.end - phase.start).as_secs_f64();
        match phase.shape {
            LoadShape::Flash { multiplier } => self.rate * (multiplier - 1.0),
            LoadShape::Ramp { to_multiplier } => {
                self.rate * (to_multiplier - 1.0) * (t / span).clamp(0.0, 1.0)
            }
            LoadShape::Diurnal { amplitude, period } => {
                let phase_angle = 2.0 * std::f64::consts::PI * t / period.as_secs_f64();
                self.rate * amplitude * (1.0 + phase_angle.sin()) / 2.0
            }
        }
    }

    /// Executes the timeline against a fresh deployment of `system`. All
    /// randomness derives from `seed`: identical `(timeline, system, seed)`
    /// give identical [`ScenarioRun`]s, regardless of what other cells run
    /// around them.
    pub fn run(&self, system: SystemKind, seed: u64) -> ScenarioRun {
        let spec = BenchmarkSpec::new(system, self.payload)
            .rate(self.rate)
            .windows(self.windows)
            .repetitions(1);
        let mut sys = build_system(system, &self.setup, seed);
        if self.probes {
            sys.enable_stage_probes();
        }
        // Install the workload's initial ledger state (no-op for the
        // paper's self-bootstrapping workloads, whose preload is empty).
        let preload = self.workload.preload();
        if !preload.is_empty() {
            sys.preload(&preload);
        }
        let schedule = self.schedule(seed);
        let run = run_chaos_with_schedule(
            sys.as_mut(),
            &spec,
            &self.plan,
            &self.policy,
            &self.protection,
            &schedule,
            seed,
        );
        let stats = sys.stats();
        let verified = sys.ledger_state().map(|l| self.workload.verify(&l));
        let epochs = sys.config_epoch();
        let stage_report = if self.probes {
            sys.stage_report()
        } else {
            None
        };
        let checks = self
            .checks
            .iter()
            .map(|(at, c)| c.evaluate(*at, &run, epochs, stage_report.as_ref()))
            .collect();
        ScenarioRun {
            run,
            stats,
            epochs,
            checks,
            stage_report,
            verified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::build_schedule;

    fn windows() -> Windows {
        Windows {
            send: SimDuration::from_secs(15),
            listen: SimDuration::from_secs(25),
        }
    }

    #[test]
    fn empty_scenario_is_the_bare_baseline() {
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows()).build();
        assert!(tl.plan().is_empty());
        assert!(tl.phases().is_empty());
        assert!(tl.checks().is_empty());
        // The schedule is byte-identical to the classic client's.
        let expect = build_schedule(
            PayloadKind::DoNothing,
            100.0,
            1,
            windows(),
            SeedDeriver::new(9).seed("schedule", 0),
        );
        let got = tl.schedule(9);
        assert_eq!(got.len(), expect.len());
        assert!(got
            .iter()
            .zip(&expect)
            .all(|(a, b)| a.at == b.at && a.tx == b.tx));
        // And it runs: everything confirms, no checks to evaluate.
        let sr = tl.run(SystemKind::Fabric, 9);
        assert!(sr.run.accounting.is_complete());
        assert_eq!(sr.run.accounting.confirmed, sr.run.accounting.scheduled);
        assert!(sr.checks.is_empty());
        assert!(sr.all_checks_pass());
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let build = || {
            ScenarioBuilder::new(PayloadKind::DoNothing, 80.0, windows())
                .at(SimTime::from_secs(3))
                .crash_until(&[NodeId(1)], SimTime::from_secs(7))
                .at(SimTime::from_secs(4))
                .flash_crowd(3.0, SimTime::from_secs(8))
                .at(SimTime::from_secs(14))
                .assert(Check::DeliveryFloor { min_ratio: 0.5 })
                .build()
        };
        let a = build().run(SystemKind::Quorum, 21);
        let b = build().run(SystemKind::Quorum, 21);
        assert_eq!(a.run.accounting, b.run.accounting);
        assert_eq!(a.run.buckets, b.run.buckets);
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn same_tick_fault_order_is_declaration_order() {
        // A crash and a partition declared at the same instant compile to a
        // plan that replays them in declaration order (the scheduler's
        // stable-sort contract), so same-tick scenarios are deterministic.
        let t = SimTime::from_secs(5);
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 50.0, windows())
            .at(t)
            .crash(&[NodeId(2)])
            .at(t)
            .partition(&[NodeId(3)], SimTime::from_secs(9))
            .build();
        let events = tl.plan().events();
        assert_eq!(events[0], (t, FaultEvent::CrashNode(NodeId(2))));
        assert!(matches!(events[1], (at, FaultEvent::Partition(_)) if at == t));
        assert_eq!(events[2], (SimTime::from_secs(9), FaultEvent::Heal));
    }

    #[test]
    fn gray_fault_verbs_compile_to_the_expected_plan() {
        let t = SimTime::from_secs(4);
        let heal = SimTime::from_secs(12);
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 50.0, windows())
            .at(t)
            .slow_node(NodeId(0), 16.0, heal)
            .at(t)
            .flaky_link(NodeId(0), NodeId(1), 0.3, heal)
            .at(t)
            .asym_partition(&[NodeId(0)], &[NodeId(2)], heal)
            .at(t)
            .region_latency(
                RegionMap::round_robin(4, 2, SimDuration::from_millis(80)),
                heal,
            )
            .build();
        let events = tl.plan().events();
        assert!(matches!(
            events[0],
            (at, FaultEvent::SlowNode { node: NodeId(0), .. }) if at == t
        ));
        assert!(matches!(
            events[1],
            (at, FaultEvent::FlakyLink { drop_prob, .. }) if at == t && drop_prob == 0.3
        ));
        assert!(matches!(events[2], (at, FaultEvent::AsymmetricPartition { .. }) if at == t));
        // Only the half-open link needs an explicit global heal; the plan
        // stores insertion order, so it precedes the region event here.
        assert_eq!(events[3], (heal, FaultEvent::Heal));
        assert!(matches!(events[4], (at, FaultEvent::RegionLatency { .. }) if at == t));
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn stage_residence_check_reads_the_probe_report() {
        // With probes armed the check compares the stage's share of total
        // residence against the ceiling; a share below 1.1 always holds.
        let sr = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows())
            .probes(true)
            .at(SimTime::from_secs(2))
            .assert(Check::StageResidenceBelow {
                stage: Stage::Ingress,
                max_share: 1.1,
            })
            .build()
            .run(SystemKind::Fabric, 7);
        assert!(sr.checks[0].pass, "{:?}", sr.checks);
        assert!(sr.checks[0].observed.contains("share"));
        // Without probes the check is vacuous and says so.
        let bare = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows())
            .at(SimTime::from_secs(2))
            .assert(Check::StageResidenceBelow {
                stage: Stage::Ingress,
                max_share: 0.0,
            })
            .build()
            .run(SystemKind::Fabric, 7);
        assert!(bare.checks[0].pass);
        assert!(bare.checks[0].observed.contains("n/a"));
    }

    #[test]
    fn overlapping_fault_windows_compose() {
        // Two overlapping loss windows: both bursts are scheduled; at the
        // client ingress the later burst supersedes the earlier one while
        // both are active (last-scheduled-wins), and the run completes its
        // accounting either way.
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows())
            .at(SimTime::from_secs(2))
            .loss(0.3, SimTime::from_secs(10))
            .at(SimTime::from_secs(4))
            .loss(0.05, SimTime::from_secs(6))
            .build();
        assert_eq!(tl.plan().len(), 2);
        let sr = tl.run(SystemKind::Fabric, 5);
        assert!(sr.run.accounting.is_complete());
        assert!(sr.run.accounting.retries > 0, "losses must trigger retries");
    }

    #[test]
    fn assertion_at_phase_boundary_uses_full_buckets_only() {
        // A checkpoint exactly at a phase boundary measures only the full
        // buckets inside its window — the window_mtps contract — so a
        // boundary assertion can never read half a bucket from the next
        // phase.
        let run = ChaosRun {
            accounting: Default::default(),
            buckets: vec![10, 10, 0, 0, 20, 20],
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            p99: 0.0,
            live: true,
            safety: None,
            liveness: None,
        };
        // Phase boundary at t = 2 s: [0, 2) sees only the two 10-buckets.
        let c = Check::GoodputFloor {
            since: SimTime::ZERO,
            min_mtps: 10.0,
        };
        let out = c.evaluate(SimTime::from_secs(2), &run, 0, None);
        assert!(out.pass, "{}", out.observed);
        // Halted over [2, 4) holds even though bucket 4 is busy again.
        let h = Check::Halted {
            since: SimTime::from_secs(2),
        };
        assert!(h.evaluate(SimTime::from_secs(4), &run, 0, None).pass);
        // A sub-bucket sliver past the boundary covers no full bucket:
        // Halted still holds at t = 4.5 s.
        assert!(
            h.evaluate(
                SimTime::from_secs(4) + SimDuration::from_millis(500),
                &run,
                0,
                None
            )
            .pass
        );
        // But one more full bucket flips it.
        assert!(!h.evaluate(SimTime::from_secs(5), &run, 0, None).pass);
    }

    #[test]
    fn flash_overlay_ids_carry_phase_tags_and_stay_unique() {
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows())
            .at(SimTime::from_secs(2))
            .flash_crowd(4.0, SimTime::from_secs(6))
            .at(SimTime::from_secs(8))
            .flash_crowd(2.0, SimTime::from_secs(12))
            .build();
        let sched = tl.schedule(3);
        // Sorted by (at, id) with unique ids across base + both overlays.
        assert!(sched
            .windows(2)
            .all(|w| (w[0].at, w[0].tx.id()) < (w[1].at, w[1].tx.id())));
        let mut ids: Vec<_> = sched.iter().map(|s| s.tx.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), sched.len());
        // Phase tags separate the overlays.
        assert_ne!(overlay_tag(0), overlay_tag(1));
        let tagged = |tag: u64| sched.iter().filter(|s| s.tx.id().seq() & tag != 0).count();
        assert!(tagged(overlay_tag(0)) > 0);
        assert!(tagged(overlay_tag(1)) > 0);
    }

    #[test]
    fn ramp_and_diurnal_shapes_scale_extra_load() {
        let mk = |shape: LoadShape| {
            let mut b = ScenarioBuilder::new(PayloadKind::DoNothing, 100.0, windows());
            b.phases.push(LoadPhase {
                start: SimTime::from_secs(2),
                end: SimTime::from_secs(12),
                shape,
            });
            b.build()
        };
        // Ramp: ~half the flash volume of the same peak.
        let ramp = mk(LoadShape::Ramp { to_multiplier: 5.0 });
        let flash = mk(LoadShape::Flash { multiplier: 5.0 });
        let count = |tl: &Timeline| {
            tl.schedule(7)
                .iter()
                .filter(|s| s.tx.id().seq() & overlay_tag(0) != 0)
                .count() as f64
        };
        let (nr, nf) = (count(&ramp), count(&flash));
        assert!(
            (nr / nf - 0.5).abs() < 0.1,
            "ramp {nr} should be ~half of flash {nf}"
        );
        // Diurnal: mean extra is amplitude/2 × base over the phase.
        let diurnal = mk(LoadShape::Diurnal {
            amplitude: 2.0,
            period: SimDuration::from_secs(5),
        });
        let nd = count(&diurnal);
        let expect = 100.0 * 1.0 * 10.0; // base × amp/2 × span
        assert!(
            (nd - expect).abs() / expect < 0.15,
            "diurnal {nd} vs expected {expect}"
        );
        // All overlay sends stay inside their phase.
        for s in ramp.schedule(7) {
            if s.tx.id().seq() & overlay_tag(0) != 0 {
                assert!(s.at >= SimTime::from_secs(2) && s.at < SimTime::from_secs(13));
            }
        }
    }

    #[test]
    fn checks_evaluate_against_the_run() {
        let tl = ScenarioBuilder::new(PayloadKind::DoNothing, 60.0, windows())
            .at(SimTime::from_secs(4))
            .crash_until(&[NodeId(1)], SimTime::from_secs(8))
            .at(SimTime::from_secs(25))
            .assert(Check::RestabilizesBy {
                fault_from: SimTime::from_secs(4),
                fault_until: SimTime::from_secs(8),
                threshold: 0.7,
            })
            .assert(Check::DeliveryFloor { min_ratio: 0.99 })
            .assert(Check::SafetyClean)
            .build();
        let sr = tl.run(SystemKind::Fabric, 11);
        assert_eq!(sr.checks.len(), 3);
        assert!(
            sr.all_checks_pass(),
            "f-tolerant crash with retries must pass all checks: {:?}",
            sr.checks
        );
        // And a check that cannot hold reports failure instead of lying.
        let halted = Check::Halted {
            since: SimTime::ZERO,
        };
        let out = halted.evaluate(SimTime::from_secs(25), &sr.run, sr.epochs, None);
        assert!(!out.pass);
    }
}
