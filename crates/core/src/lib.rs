//! COCONUT — an automati**C** bl**O**ck**C**hain perf**O**rma**N**ce
//! eval**U**ation sys**T**em.
//!
//! This crate is the benchmarking framework of the paper: it generates the
//! paper's workloads (DoNothing, KeyValue, BankingApp), runs them through
//! the COCONUT client model (four client applications with four workload
//! threads each, rate-limited, sending for 300 virtual seconds and
//! listening for 330), collects finalization notifications *on the client
//! side* (the end-to-end methodology of §4.5), and computes the paper's
//! metrics — MTPS, MFLS, Duration, and the number of transactions — with
//! SD / SEM / 95% CI statistics over repetitions.
//!
//! The [`experiments`] module regenerates every figure and table of the
//! paper's evaluation section; the [`report`] module renders them.
//!
//! # Quickstart
//!
//! ```
//! use coconut::prelude::*;
//!
//! // Benchmark the modelled Fabric with the DoNothing workload for two
//! // virtual seconds at 200 tx/s, one repetition. Small blocks keep the
//! // short window from ending before Fabric's 2 s batch timeout.
//! let spec = BenchmarkSpec::new(SystemKind::Fabric, PayloadKind::DoNothing)
//!     .rate(200.0)
//!     .block_param(BlockParam::MaxMessageCount(20))
//!     .send_duration(SimDuration::from_secs(2))
//!     .repetitions(1);
//! let result = run_benchmark(&spec, 42);
//! assert!(result.mtps.mean > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod exec;
pub mod experiments;
pub mod json;
pub mod params;
pub mod report;
pub mod runner;
pub mod saturation;
pub mod scenario;
pub mod stats;
pub mod workload;
pub mod zipf;

pub use chaos::{
    run_chaos, run_chaos_protected, run_chaos_with_schedule, AimdPolicy, BreakerPolicy,
    BreakerState, ChaosRun, CircuitBreaker, ClientProtection, DeliveryAccounting, RetryBudget,
    RetryPolicy,
};
pub use exec::{
    bottleneck_cell_seed, cell_seed, contention_cell_seed, run_grid, scenario_cell_seed,
    sweep_cell_seed, unit_seed,
};
pub use params::{BlockParam, SystemKind, SystemSetup};
pub use report::Report;
pub use runner::{
    run_benchmark, run_unit, run_workload_one, BenchmarkResult, BenchmarkSpec, UnitResult,
};
pub use saturation::{SaturationResult, SaturationSearch};
pub use scenario::{
    Check, CheckOutcome, Cursor, LoadPhase, LoadShape, ScenarioBuilder, ScenarioRun, Timeline,
};
pub use stats::Stats;
pub use workload::{paper, ContentionKnobs, PaperWorkload, Smallbank, Workload, Ycsb};

/// Everything most users need, in one import.
pub mod prelude {
    pub use crate::params::{BlockParam, SystemKind, SystemSetup};
    pub use crate::report::{heatmap, table, Report};
    pub use crate::runner::{run_benchmark, run_unit, BenchmarkResult, BenchmarkSpec, UnitResult};
    pub use crate::stats::Stats;
    pub use coconut_types::{PayloadKind, SimDuration, SimTime};
}
