//! The named scenario library: reusable timelines behind
//! `repro scenario --name <n>`.
//!
//! Each [`NamedScenario`] is a ~10-line timeline built on
//! [`crate::scenario::ScenarioBuilder`]: the four classic campaign shapes
//! (crash/heal, beyond-f halt, loss burst, Byzantine window) plus
//! composites no bespoke campaign ever covered — churn under 8× overload,
//! a partition during a flash crowd, rolling restarts under a diurnal
//! load cycle, a ramp to saturation. Every cell's seed is
//! content-addressed by [`crate::exec::scenario_cell_seed`]`(name,
//! system)`, so running one scenario or one system reproduces exactly the
//! bytes of the full library run, at any worker count.
//!
//! Checkpointed assertions ride on each timeline; their verdicts are part
//! of the report (and the golden pin), so an expectation that stops
//! holding shows up as a one-line diff, not a crashed run.

use super::chaos::{byzantine_domain, fault_domain};
use super::overload::tight_limits;
use super::ExperimentConfig;
use crate::chaos::{ClientProtection, RetryPolicy};
use crate::client::Windows;
use crate::json::Json;
use crate::params::{SystemKind, SystemSetup};
use crate::report::Report;
use crate::scenario::{Check, CheckOutcome, ScenarioBuilder, Timeline};
use coconut_chains::Stage;
use coconut_types::{NodeId, PayloadKind, SimDuration, SimTime};

/// Virtual-time anchors shared by every library scenario, derived from the
/// config's scale — the chaos campaign's grid: at least 20 s of sending,
/// events at the quarter points.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    windows: Windows,
    /// First quarter of the send window — where disturbances start.
    q1: SimTime,
    /// Half of the send window — where single-window disturbances end.
    mid: SimTime,
    /// Three quarters of the send window.
    q3: SimTime,
    /// End of the send window.
    send_end: SimTime,
    /// End of the listen window — where final assertions checkpoint.
    listen_end: SimTime,
}

fn anchors(cfg: &ExperimentConfig) -> Anchors {
    let send_secs = ((300.0 * cfg.scale).round() as u64).max(20);
    Anchors {
        windows: Windows {
            send: SimDuration::from_secs(send_secs),
            listen: SimDuration::from_secs(send_secs + 10),
        },
        q1: SimTime::from_secs(send_secs / 4),
        mid: SimTime::from_secs(send_secs / 2),
        q3: SimTime::from_secs(send_secs * 3 / 4),
        send_end: SimTime::from_secs(send_secs),
        listen_end: SimTime::from_secs(send_secs + 10),
    }
}

/// The chaos campaign's payload mapping: a write workload for the Cordas
/// (DoNothing would bypass the notary), DoNothing elsewhere.
fn payload(kind: SystemKind) -> PayloadKind {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PayloadKind::KeyValueSet,
        _ => PayloadKind::DoNothing,
    }
}

/// The chaos campaign's below-saturation steady rates, so throughput
/// changes are attributable to the timeline's events.
fn steady_rate(kind: SystemKind) -> f64 {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => 4.0,
        _ => 50.0,
    }
}

fn base(kind: SystemKind, a: Anchors) -> ScenarioBuilder {
    ScenarioBuilder::new(payload(kind), steady_rate(kind), a.windows)
}

fn f_nodes(kind: SystemKind) -> Vec<NodeId> {
    (0..fault_domain(kind).f_tolerant).map(NodeId).collect()
}

fn all_systems() -> Vec<SystemKind> {
    SystemKind::ALL.to_vec()
}

fn bft_systems() -> Vec<SystemKind> {
    SystemKind::ALL
        .into_iter()
        .filter(|&k| byzantine_domain(k).is_some())
        .collect()
}

fn lossy_systems() -> Vec<SystemKind> {
    vec![SystemKind::Fabric, SystemKind::Quorum]
}

/// One entry of the scenario library.
#[derive(Clone)]
pub struct NamedScenario {
    /// Stable name (the `--name` key and the seed scope).
    pub name: &'static str,
    /// What the scenario probes, one line.
    pub about: &'static str,
    /// The timeline, summarized for `--list` and the docs table.
    pub timeline: &'static str,
    /// The systems the scenario applies to.
    pub systems: fn() -> Vec<SystemKind>,
    /// Compiles the timeline for one system at one scale.
    build: fn(SystemKind, Anchors) -> Timeline,
}

impl std::fmt::Debug for NamedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedScenario")
            .field("name", &self.name)
            .finish()
    }
}

fn crash_heal(k: SystemKind, a: Anchors) -> Timeline {
    base(k, a)
        .at(a.q1)
        .crash_until(&f_nodes(k), a.mid)
        .at(a.listen_end)
        .assert(Check::RestabilizesBy {
            fault_from: a.q1,
            fault_until: a.mid,
            threshold: 0.7,
        })
        .assert(Check::DeliveryFloor { min_ratio: 0.95 })
        .assert(Check::SafetyClean)
        .build()
}

fn beyond_f_halt(k: SystemKind, a: Anchors) -> Timeline {
    let nodes: Vec<NodeId> = (0..fault_domain(k).beyond_f).map(NodeId).collect();
    base(k, a)
        // No retries: the halt must show in raw commits.
        .policy(RetryPolicy::disabled())
        .at(a.q1)
        .crash(&nodes)
        .at(a.listen_end)
        // 5 s drain grace: in-flight blocks may still land after the crash.
        .assert(Check::Halted {
            since: a.q1 + SimDuration::from_secs(5),
        })
        .build()
}

fn loss_burst(k: SystemKind, a: Anchors) -> Timeline {
    let window = SimDuration::from_secs_f64(a.windows.send.as_secs_f64() / 5.0);
    base(k, a)
        .at(a.q1)
        .loss_burst(0.05, window)
        .at(a.listen_end)
        .assert(Check::DeliveryFloor { min_ratio: 0.99 })
        .build()
}

fn byzantine_quorum_holds(k: SystemKind, a: Anchors) -> Timeline {
    let d = byzantine_domain(k).expect("library restricts this scenario to BFT systems");
    let nodes: Vec<NodeId> = (0..d.f_tolerant).map(NodeId).collect();
    base(k, a)
        .at(a.q1)
        .byzantine(&nodes, a.mid)
        .at(a.listen_end)
        .assert(Check::SafetyClean)
        .assert(Check::DeliveryFloor { min_ratio: 0.9 })
        .build()
}

fn byzantine_overrun(k: SystemKind, a: Anchors) -> Timeline {
    let d = byzantine_domain(k).expect("library restricts this scenario to BFT systems");
    let nodes: Vec<NodeId> = (0..d.beyond_f()).map(NodeId).collect();
    base(k, a)
        .at(a.q1)
        .byzantine(&nodes, a.mid)
        .at(a.listen_end)
        .assert(Check::SafetyViolationsAtLeast { count: 1 })
        .build()
}

fn overload_pulse(k: SystemKind, a: Anchors) -> Timeline {
    base(k, a)
        .setup(SystemSetup::default().with_admission(tight_limits(k)))
        .protection(ClientProtection::overload_default())
        .at(a.q1)
        .flash_crowd(8.0, a.mid)
        .at(a.listen_end)
        .assert(Check::RestabilizesBy {
            fault_from: a.q1,
            fault_until: a.mid,
            threshold: 0.7,
        })
        .build()
}

fn single_join(k: SystemKind, a: Anchors) -> Timeline {
    let joiner = NodeId(fault_domain(k).total);
    base(k, a)
        .setup(SystemSetup::default().with_standby(1))
        .at(a.q1)
        .join(joiner)
        .at(a.listen_end)
        .assert(Check::EpochsAtLeast { count: 1 })
        .assert(Check::SafetyClean)
        .build()
}

fn rolling_replace(k: SystemKind, a: Anchors) -> Timeline {
    let d = fault_domain(k);
    base(k, a)
        .setup(SystemSetup::default().with_standby(1))
        .at(a.q1)
        .join(NodeId(d.total))
        .at(a.mid)
        .leave(NodeId(d.total - 1))
        .at(a.listen_end)
        .assert(Check::EpochsAtLeast { count: 2 })
        .assert(Check::SafetyClean)
        .build()
}

fn churn_under_overload(k: SystemKind, a: Anchors) -> Timeline {
    let joiner = NodeId(fault_domain(k).total);
    base(k, a)
        .setup(
            SystemSetup::default()
                .with_standby(1)
                .with_admission(tight_limits(k)),
        )
        .at(a.q1)
        .flash_crowd(8.0, a.q3)
        .at(a.mid)
        .join(joiner)
        .at(a.listen_end)
        .assert(Check::EpochsAtLeast { count: 1 })
        .assert(Check::SafetyClean)
        .build()
}

fn partition_flash_crowd(k: SystemKind, a: Anchors) -> Timeline {
    base(k, a)
        .at(a.q1)
        .partition(&f_nodes(k), a.mid)
        .at(a.q1)
        .flash_crowd(4.0, a.mid)
        .at(a.listen_end)
        .assert(Check::RestabilizesBy {
            fault_from: a.q1,
            fault_until: a.mid,
            threshold: 0.7,
        })
        .assert(Check::SafetyClean)
        .build()
}

fn rolling_restart_diurnal(k: SystemKind, a: Anchors) -> Timeline {
    let period = SimDuration::from_secs((a.windows.send.as_secs_f64() / 4.0).max(4.0) as u64);
    base(k, a)
        .at(SimTime::from_secs(2))
        .diurnal(1.0, period, a.send_end)
        .at(a.q1)
        .crash_until(&[NodeId(0)], a.mid)
        .at(a.mid)
        .crash_until(&[NodeId(1)], a.q3)
        .at(a.listen_end)
        .assert(Check::RestabilizesBy {
            fault_from: a.q1,
            fault_until: a.q3,
            threshold: 0.7,
        })
        .assert(Check::SafetyClean)
        .build()
}

fn ramp_to_saturation(k: SystemKind, a: Anchors) -> Timeline {
    base(k, a)
        .setup(SystemSetup::default().with_admission(tight_limits(k)))
        .at(SimTime::from_secs(2))
        .ramp_load(6.0, a.send_end)
        .at(a.q1)
        .assert(Check::GoodputFloor {
            since: SimTime::ZERO,
            min_mtps: steady_rate(k) * 0.5,
        })
        .at(a.listen_end)
        .assert(Check::DeliveryFloor { min_ratio: 0.2 })
        .build()
}

fn slow_leader_flash_crowd(k: SystemKind, a: Anchors) -> Timeline {
    base(k, a)
        .probes(true)
        .at(a.q1)
        .slow_node(NodeId(0), 32.0, a.mid)
        .at(a.q1)
        .flash_crowd(2.0, a.mid)
        .at(a.listen_end)
        .assert(Check::RestabilizesBy {
            fault_from: a.q1,
            fault_until: a.mid,
            threshold: 0.7,
        })
        .assert(Check::SafetyClean)
        // The probe-backed check: even with the leader limping under a 2x
        // crowd, ingress must not hold the majority of residence time.
        .assert(Check::StageResidenceBelow {
            stage: Stage::Ingress,
            max_share: 0.5,
        })
        .build()
}

/// The library, in report order. Names are stable — they are seed scopes
/// and golden keys; add new scenarios at the end, never rename.
pub fn scenario_library() -> Vec<NamedScenario> {
    vec![
        NamedScenario {
            name: "crash-heal",
            about: "f-tolerant crash window: the classic chaos arm",
            timeline: "crash f nodes @q1, heal @mid; assert restabilize+delivery+safety",
            systems: all_systems,
            build: crash_heal,
        },
        NamedScenario {
            name: "beyond-f-halt",
            about: "crash beyond f with no retries: commits must stop",
            timeline: "crash beyond-f nodes @q1, no heal; assert halted after 5 s drain",
            systems: all_systems,
            build: beyond_f_halt,
        },
        NamedScenario {
            name: "loss-burst",
            about: "5% ingress/consensus loss vs the retry client",
            timeline: "loss burst @q1 for send/5; assert delivery ≥ 0.99",
            systems: lossy_systems,
            build: loss_burst,
        },
        NamedScenario {
            name: "byzantine-quorum-holds",
            about: "f equivocating validators: safety must hold",
            timeline: "byzantine f @[q1,mid); assert safety clean + delivery ≥ 0.9",
            systems: bft_systems,
            build: byzantine_quorum_holds,
        },
        NamedScenario {
            name: "byzantine-overrun",
            about: "f+1 equivocating validators: safety must break, visibly",
            timeline: "byzantine f+1 @[q1,mid); assert ≥ 1 counted violation",
            systems: bft_systems,
            build: byzantine_overrun,
        },
        NamedScenario {
            name: "overload-pulse",
            about: "8x flash crowd against the protected client",
            timeline: "flash 8x @[q1,mid), tight pools, budget+breaker; assert restabilize",
            systems: all_systems,
            build: overload_pulse,
        },
        NamedScenario {
            name: "single-join",
            about: "one standby joins mid-run: epoch-based reconfiguration",
            timeline: "join standby @q1; assert ≥ 1 epoch + safety clean",
            systems: all_systems,
            build: single_join,
        },
        NamedScenario {
            name: "rolling-replace",
            about: "join a standby, retire a member: two epoch changes",
            timeline: "join @q1, leave @mid; assert ≥ 2 epochs + safety clean",
            systems: all_systems,
            build: rolling_replace,
        },
        NamedScenario {
            name: "churn-under-overload",
            about: "a join lands inside an 8x flash crowd (composite)",
            timeline: "flash 8x @[q1,q3), join @mid, tight pools; assert epoch + safety",
            systems: all_systems,
            build: churn_under_overload,
        },
        NamedScenario {
            name: "partition-flash-crowd",
            about: "minority partition during a 4x flash crowd (composite)",
            timeline: "partition f nodes + flash 4x @[q1,mid); assert restabilize + safety",
            systems: all_systems,
            build: partition_flash_crowd,
        },
        NamedScenario {
            name: "rolling-restart-diurnal",
            about: "one-at-a-time restarts under a diurnal load cycle (composite)",
            timeline: "diurnal 1x amp, crash n0 @[q1,mid) then n1 @[mid,q3); assert restabilize",
            systems: all_systems,
            build: rolling_restart_diurnal,
        },
        NamedScenario {
            name: "ramp-to-saturation",
            about: "linear ramp to 6x through the admission pools (composite)",
            timeline: "ramp to 6x over [2 s, send), tight pools; assert early goodput + delivery",
            systems: all_systems,
            build: ramp_to_saturation,
        },
        NamedScenario {
            name: "slow-leader-flash-crowd",
            about: "a limping leader under a 2x flash crowd (gray composite)",
            timeline: "slow n0 x32 + flash 2x @[q1,mid), probes; assert restabilize + safety + ingress share",
            systems: all_systems,
            build: slow_leader_flash_crowd,
        },
    ]
}

/// The library's scenario names, in report order.
pub fn scenario_names() -> Vec<&'static str> {
    scenario_library().iter().map(|s| s.name).collect()
}

/// A parameterized library run: which scenarios × systems to execute.
/// Filtering never changes a remaining cell's numbers — every cell's seed
/// is content-addressed by `("scenario", name, system)`.
#[derive(Debug, Clone)]
pub struct ScenarioCampaign {
    names: Vec<&'static str>,
    systems: Vec<SystemKind>,
}

impl ScenarioCampaign {
    /// Every library scenario on every system it applies to.
    pub fn full() -> Self {
        ScenarioCampaign {
            names: scenario_names(),
            systems: SystemKind::ALL.to_vec(),
        }
    }

    /// Restricts the run to the named scenarios (canonicalized to library
    /// order). Returns `Err` with the unknown name otherwise.
    pub fn with_names(mut self, names: &[&str]) -> Result<Self, String> {
        let library = scenario_names();
        for n in names {
            if !library.contains(n) {
                return Err((*n).to_string());
            }
        }
        self.names = library.into_iter().filter(|n| names.contains(n)).collect();
        Ok(self)
    }

    /// Restricts the run to `systems` (canonicalized to
    /// [`SystemKind::ALL`] order).
    pub fn with_systems(mut self, systems: &[SystemKind]) -> Self {
        self.systems = SystemKind::ALL
            .into_iter()
            .filter(|s| systems.contains(s))
            .collect();
        self
    }

    /// Expands into `(scenario, system)` cells in canonical report order.
    fn cells(&self) -> Vec<(NamedScenario, SystemKind)> {
        let mut out = Vec::new();
        for s in scenario_library() {
            if !self.names.contains(&s.name) {
                continue;
            }
            for k in (s.systems)() {
                if self.systems.contains(&k) {
                    out.push((s.clone(), k));
                }
            }
        }
        out
    }
}

/// One scenario × system cell of the library run.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// The scenario's name.
    pub scenario: &'static str,
    /// System under test.
    pub system: SystemKind,
    /// Base offered load (tx/s).
    pub rate: f64,
    /// Mean throughput over the active span (ops/s).
    pub mtps: f64,
    /// Mean finalization latency (s).
    pub mfls: f64,
    /// 95th-percentile finalization latency (s).
    pub p95: f64,
    /// Confirmed / scheduled.
    pub delivery_ratio: f64,
    /// Transactions scheduled.
    pub scheduled: u64,
    /// Transactions confirmed.
    pub confirmed: u64,
    /// Re-sends performed.
    pub retries: u64,
    /// System-side `Busy` answers.
    pub busy: u64,
    /// TTL-evicted transactions.
    pub evicted: u64,
    /// Configuration epochs at the end of the run.
    pub epochs: u64,
    /// Whether the system still served confirmations at the end.
    pub live: bool,
    /// Safety verdict (vacuously `true` for CFT systems).
    pub safety_ok: bool,
    /// The checkpointed assertions' verdicts, in declaration order.
    pub checks: Vec<CheckOutcome>,
}

impl ScenarioCell {
    /// `true` when every checkpointed assertion held.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    fn render_row(&self) -> String {
        let checks = format!(
            "{}/{}",
            self.checks.iter().filter(|c| c.pass).count(),
            self.checks.len()
        );
        format!(
            "{:<18} {:>6.0} {:>8.1} {:>7.3} {:>6.3} {:>6} {:>6} {:>6} {:>6} {:>4} {:>6} {:>6}",
            self.system.label(),
            self.rate,
            self.mtps,
            self.mfls,
            self.delivery_ratio,
            self.retries,
            self.busy,
            self.evicted,
            self.epochs,
            if self.live { "yes" } else { "no" },
            if self.safety_ok { "ok" } else { "VIOL" },
            checks,
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.into())),
            ("system".into(), Json::Str(self.system.label().into())),
            ("rate".into(), Json::Num(self.rate)),
            ("mtps".into(), Json::Num(self.mtps)),
            ("mfls".into(), Json::Num(self.mfls)),
            ("p95".into(), Json::Num(self.p95)),
            ("delivery_ratio".into(), Json::Num(self.delivery_ratio)),
            ("scheduled".into(), Json::Num(self.scheduled as f64)),
            ("confirmed".into(), Json::Num(self.confirmed as f64)),
            ("retries".into(), Json::Num(self.retries as f64)),
            ("busy".into(), Json::Num(self.busy as f64)),
            ("evicted".into(), Json::Num(self.evicted as f64)),
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("live".into(), Json::Bool(self.live)),
            ("safety_ok".into(), Json::Bool(self.safety_ok)),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(CheckOutcome::to_json).collect()),
            ),
        ])
    }
}

/// The outcome of a library run: cells in canonical (scenario, system)
/// order.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario names the run covered, library order.
    pub names: Vec<&'static str>,
    /// The cells.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioResult {
    /// The cell of `scenario` × `system`, if it ran.
    pub fn cell(&self, scenario: &str, system: SystemKind) -> Option<&ScenarioCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.system == system)
    }
}

/// Runs `campaign`'s cells on the grid executor (`cfg.jobs` workers). Each
/// cell compiles its named timeline at the config's scale and runs it with
/// the content-addressed seed `("scenario", name, system)` — any worker
/// count or campaign subset reproduces the same cell bytes.
pub fn scenarios_for(cfg: &ExperimentConfig, campaign: &ScenarioCampaign) -> ScenarioResult {
    let a = anchors(cfg);
    let items = campaign.cells();
    let cells = crate::exec::run_grid(&items, cfg.jobs, |_, (s, k)| {
        let seed = crate::exec::scenario_cell_seed(cfg.seed, s.name, *k);
        let timeline = (s.build)(*k, a);
        let sr = timeline.run(*k, seed);
        let acct = &sr.run.accounting;
        ScenarioCell {
            scenario: s.name,
            system: *k,
            rate: timeline.rate(),
            mtps: sr.run.mtps,
            mfls: sr.run.mfls,
            p95: sr.run.p95,
            delivery_ratio: acct.delivery_ratio(),
            scheduled: acct.scheduled,
            confirmed: acct.confirmed,
            retries: acct.retries,
            busy: sr.stats.busy,
            evicted: sr.stats.evicted,
            epochs: sr.epochs,
            live: sr.run.live,
            safety_ok: sr
                .run
                .safety
                .as_ref()
                .is_none_or(|r| r.violations.is_clean()),
            checks: sr.checks,
        }
    });
    ScenarioResult {
        names: campaign.names.clone(),
        cells,
    }
}

/// Runs the full library: every scenario on every system it applies to.
pub fn scenarios(cfg: &ExperimentConfig) -> ScenarioResult {
    scenarios_for(cfg, &ScenarioCampaign::full())
}

impl Report for ScenarioResult {
    /// Renders one table per scenario. Deterministic: the same config
    /// yields byte-identical output.
    fn render(&self) -> String {
        let library = scenario_library();
        let mut out = String::new();
        out.push_str("Scenario library — one deterministic timeline engine under every run\n");
        for name in &self.names {
            let Some(s) = library.iter().find(|s| s.name == *name) else {
                continue;
            };
            out.push_str(&format!(
                "\n== {} — {}\n   {}\n",
                s.name, s.about, s.timeline
            ));
            out.push_str(&format!(
                "{:<18} {:>6} {:>8} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>4} {:>6} {:>6}\n",
                "system",
                "rate",
                "mtps",
                "mfls",
                "deliv",
                "retry",
                "busy",
                "evict",
                "epochs",
                "live",
                "safety",
                "checks",
            ));
            for cell in self.cells.iter().filter(|c| c.scenario == *name) {
                out.push_str(&cell.render_row());
                out.push('\n');
            }
            for cell in self.cells.iter().filter(|c| c.scenario == *name) {
                for check in cell.checks.iter().filter(|c| !c.pass) {
                    out.push_str(&format!(
                        "   ! {} @ {:.0} s {}: {}\n",
                        cell.system.label(),
                        check.at.as_secs_f64(),
                        check.check,
                        check.observed,
                    ));
                }
            }
        }
        out
    }

    /// The run as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "scenarios".into(),
                Json::Arr(
                    self.names
                        .iter()
                        .map(|n| Json::Str((*n).to_string()))
                        .collect(),
                ),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(ScenarioCell::to_json).collect()),
            ),
        ])
        .to_pretty()
    }
}

/// Renders the library as a `--list` table: name, systems, about,
/// timeline.
pub fn render_scenario_list() -> String {
    let mut out = String::new();
    out.push_str("Named scenarios (repro scenario --name <name>):\n\n");
    for s in scenario_library() {
        let systems = (s.systems)();
        let sys = if systems.len() == SystemKind::ALL.len() {
            "all".to_string()
        } else {
            systems
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!("  {:<24} [{sys}]\n", s.name));
        out.push_str(&format!("      {}\n", s.about));
        out.push_str(&format!("      timeline: {}\n", s.timeline));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            seed: 0xC0C0,
            full_sweep: false,
            jobs: Some(2),
        }
    }

    #[test]
    fn library_has_ten_plus_uniquely_named_scenarios() {
        let names = scenario_names();
        assert!(names.len() >= 10, "library must ship 10+ scenarios");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names must be unique");
        // Every scenario applies to at least one system and compiles on
        // all of them at a small scale.
        let a = anchors(&quick());
        for s in scenario_library() {
            let systems = (s.systems)();
            assert!(!systems.is_empty(), "{}", s.name);
            for k in systems {
                let tl = (s.build)(k, a);
                assert!(!tl.checks().is_empty(), "{} asserts nothing", s.name);
            }
        }
    }

    #[test]
    fn campaign_filters_and_rejects_unknown_names() {
        let c = ScenarioCampaign::full()
            .with_names(&["crash-heal", "byzantine-overrun"])
            .unwrap()
            .with_systems(&[SystemKind::Quorum]);
        let cells = c.cells();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|(_, k)| *k == SystemKind::Quorum));
        assert_eq!(
            ScenarioCampaign::full()
                .with_names(&["no-such-scenario"])
                .unwrap_err(),
            "no-such-scenario"
        );
    }

    #[test]
    fn classics_hold_their_expectations() {
        let r = scenarios_for(
            &quick(),
            &ScenarioCampaign::full()
                .with_names(&[
                    "crash-heal",
                    "beyond-f-halt",
                    "byzantine-quorum-holds",
                    "byzantine-overrun",
                ])
                .unwrap()
                .with_systems(&[SystemKind::Quorum]),
        );
        assert_eq!(r.cells.len(), 4);
        for cell in &r.cells {
            assert!(
                cell.all_checks_pass(),
                "{} on {} failed: {:?}",
                cell.scenario,
                cell.system,
                cell.checks
            );
        }
        // The overrun proves the attack beyond f, and the report says so.
        let overrun = r.cell("byzantine-overrun", SystemKind::Quorum).unwrap();
        assert!(!overrun.safety_ok);
    }

    #[test]
    fn subset_runs_are_byte_identical_to_the_full_library() {
        let full = scenarios(&quick());
        let subset = scenarios_for(
            &quick(),
            &ScenarioCampaign::full()
                .with_names(&["churn-under-overload"])
                .unwrap()
                .with_systems(&[SystemKind::Diem]),
        );
        let a = full.cell("churn-under-overload", SystemKind::Diem).unwrap();
        let b = subset
            .cell("churn-under-overload", SystemKind::Diem)
            .unwrap();
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }
}
