//! Tables 7–20: the per-system highlight tables of §5.1–§5.7.
//!
//! Each function reproduces one MTPS/MFLS table together with its paired
//! number-of-transactions table (the paper always prints them as a pair,
//! e.g. Table 7 + Table 8 for Corda OS).

use coconut_types::{PayloadKind, SimDuration};

use crate::params::{BlockParam, SystemKind, SystemSetup};
use crate::report::{self, Report};
use crate::runner::{run_unit, BenchmarkResult, BenchmarkSpec};
use crate::workload::BenchmarkUnit;

use super::ExperimentConfig;

/// A reproduced table pair: the rows and a rendered form.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Which paper tables these rows reproduce (e.g. "Tables 7+8").
    pub title: String,
    /// The measured rows.
    pub rows: Vec<BenchmarkResult>,
}

impl Report for TableResult {
    /// Renders the rows in the paper's table layout.
    fn render(&self) -> String {
        format!("{}\n{}", self.title, report::table(&self.rows))
    }

    /// The rows as a flat JSON array (the [`report::to_json`] layout).
    fn to_json(&self) -> String {
        report::to_json(&self.rows)
    }

    /// The rows as CSV (the [`report::to_csv`] layout).
    fn to_csv(&self) -> Option<String> {
        Some(report::to_csv(&self.rows))
    }
}

/// Runs one unit and extracts the row for `pick`. The seed is derived
/// from the row's content (system, benchmark, parameters), so rows can
/// run in any order — or in parallel — without perturbing each other.
fn unit_row(
    cfg: &ExperimentConfig,
    system: SystemKind,
    unit: BenchmarkUnit,
    pick: PayloadKind,
    rate: f64,
    param: BlockParam,
    ops: u32,
) -> BenchmarkResult {
    let template = BenchmarkSpec::new(system, pick)
        .setup(SystemSetup::with_block_param(param))
        .rate(rate)
        .ops_per_tx(ops)
        .windows(cfg.windows())
        .repetitions(cfg.repetitions);
    let seed = crate::exec::unit_seed(cfg.seed, "table", unit, &template);
    let unit_result = run_unit(system, unit, &template, seed);
    unit_result
        .benchmarks
        .into_iter()
        .find(|r| r.benchmark == pick.label())
        .expect("benchmark ran inside its unit")
}

/// **Tables 7 + 8**: Corda OS, KeyValue-Set at RL = 20 and RL = 160.
pub fn table7_8(cfg: &ExperimentConfig) -> TableResult {
    let rows = crate::exec::run_grid(&[20.0, 160.0], cfg.jobs, |_, &rl| {
        unit_row(
            cfg,
            SystemKind::CordaOs,
            BenchmarkUnit::KeyValue,
            PayloadKind::KeyValueSet,
            rl,
            BlockParam::None,
            1,
        )
    });
    TableResult {
        title: "Tables 7+8: Corda OS — KeyValue-Set".into(),
        rows,
    }
}

/// **Tables 9 + 10**: Corda Enterprise, KeyValue-Set at RL = 20 and 160.
pub fn table9_10(cfg: &ExperimentConfig) -> TableResult {
    let rows = crate::exec::run_grid(&[20.0, 160.0], cfg.jobs, |_, &rl| {
        unit_row(
            cfg,
            SystemKind::CordaEnterprise,
            BenchmarkUnit::KeyValue,
            PayloadKind::KeyValueSet,
            rl,
            BlockParam::None,
            1,
        )
    });
    TableResult {
        title: "Tables 9+10: Corda Enterprise — KeyValue-Set".into(),
        rows,
    }
}

/// **Tables 11 + 12**: BitShares, DoNothing at RL = 1600,
/// block_interval = 1 s, 100 operations per transaction.
pub fn table11_12(cfg: &ExperimentConfig) -> TableResult {
    let rows = vec![unit_row(
        cfg,
        SystemKind::Bitshares,
        BenchmarkUnit::DoNothing,
        PayloadKind::DoNothing,
        1600.0,
        BlockParam::BlockInterval(SimDuration::from_secs(1)),
        100,
    )];
    TableResult {
        title: "Tables 11+12: BitShares — DoNothing (BI = 1 s, 100 ops/tx)".into(),
        rows,
    }
}

/// **Tables 13 + 14**: Fabric, BankingApp-SendPayment at RL = 800 and
/// 1600 with MaxMessageCount = 100.
pub fn table13_14(cfg: &ExperimentConfig) -> TableResult {
    let rows = crate::exec::run_grid(&[800.0, 1600.0], cfg.jobs, |_, &rl| {
        unit_row(
            cfg,
            SystemKind::Fabric,
            BenchmarkUnit::BankingApp,
            PayloadKind::SendPayment,
            rl,
            BlockParam::MaxMessageCount(100),
            1,
        )
    });
    TableResult {
        title: "Tables 13+14: Fabric — BankingApp-SendPayment (MM = 100)".into(),
        rows,
    }
}

/// **Tables 15 + 16**: Quorum, BankingApp-Balance at RL = 400 with
/// blockperiod 2 s (the liveness failure) and 5 s.
pub fn table15_16(cfg: &ExperimentConfig) -> TableResult {
    let rows = crate::exec::run_grid(&[2u64, 5], cfg.jobs, |_, &bp| {
        unit_row(
            cfg,
            SystemKind::Quorum,
            BenchmarkUnit::BankingApp,
            PayloadKind::Balance,
            400.0,
            BlockParam::BlockPeriod(SimDuration::from_secs(bp)),
            1,
        )
    });
    TableResult {
        title: "Tables 15+16: Quorum — BankingApp-Balance (BP ∈ {2 s, 5 s})".into(),
        rows,
    }
}

/// **Tables 17 + 18**: Sawtooth, BankingApp-CreateAccount at
/// RL ∈ {200, 1600} × publishing delay ∈ {1 s, 10 s}, 100 tx per batch.
pub fn table17_18(cfg: &ExperimentConfig) -> TableResult {
    let cells = [(200.0, 1u64), (1600.0, 1), (200.0, 10), (1600.0, 10)];
    let rows = crate::exec::run_grid(&cells, cfg.jobs, |_, &(rl, pd)| {
        unit_row(
            cfg,
            SystemKind::Sawtooth,
            BenchmarkUnit::BankingApp,
            PayloadKind::CreateAccount,
            rl,
            BlockParam::PublishingDelay(SimDuration::from_secs(pd)),
            100,
        )
    });
    TableResult {
        title: "Tables 17+18: Sawtooth — BankingApp-CreateAccount (PD ∈ {1 s, 10 s})".into(),
        rows,
    }
}

/// **Tables 19 + 20**: Diem, KeyValue-Get at RL ∈ {200, 1600} ×
/// max_block_size ∈ {100, 2000}.
pub fn table19_20(cfg: &ExperimentConfig) -> TableResult {
    let cells = [
        (200.0, 100usize),
        (1600.0, 100),
        (200.0, 2000),
        (1600.0, 2000),
    ];
    let rows = crate::exec::run_grid(&cells, cfg.jobs, |_, &(rl, bs)| {
        unit_row(
            cfg,
            SystemKind::Diem,
            BenchmarkUnit::KeyValue,
            PayloadKind::KeyValueGet,
            rl,
            BlockParam::MaxBlockSize(bs),
            1,
        )
    });
    TableResult {
        title: "Tables 19+20: Diem — KeyValue-Get (BS ∈ {100, 2000})".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.01,
            repetitions: 1,
            seed: 11,
            full_sweep: false,
            jobs: None,
        }
    }

    #[test]
    fn corda_enterprise_beats_open_source() {
        let cfg = tiny();
        let os = table7_8(&cfg);
        let ent = table9_10(&cfg);
        // At the low rate limiter, Enterprise's Set throughput must exceed
        // OS's (Tables 7 vs 9: 4.08 vs 12.84 MTPS).
        assert!(
            ent.rows[0].mtps.mean > os.rows[0].mtps.mean,
            "Ent {} vs OS {}",
            ent.rows[0].mtps.mean,
            os.rows[0].mtps.mean
        );
        assert!(os.render().contains("Corda OS"));
    }

    #[test]
    fn quorum_balance_fails_at_short_blockperiod() {
        // BP = 5 s needs a window several block periods long.
        let cfg = ExperimentConfig {
            scale: 0.08,
            repetitions: 1,
            seed: 11,
            full_sweep: false,
            jobs: None,
        };
        let t = table15_16(&cfg);
        assert_eq!(t.rows.len(), 2);
        // BP = 2 s row: total failure (Table 15: 0.00 MTPS).
        assert_eq!(t.rows[0].mtps.mean, 0.0, "BP=2s must fail");
        assert!(!t.rows[0].live);
        // BP = 5 s row: works.
        assert!(t.rows[1].mtps.mean > 0.0, "BP=5s must deliver");
    }

    #[test]
    fn bitshares_do_nothing_hits_the_rate() {
        let t = table11_12(&tiny());
        // Table 11: 1,599.89 MTPS at RL = 1600 — ops counted as txs.
        assert!(
            t.rows[0].mtps.mean > 1_000.0,
            "expected ≈1600 op/s, got {}",
            t.rows[0].mtps.mean
        );
    }
}
