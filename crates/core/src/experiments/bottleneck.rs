//! Per-stage bottleneck attribution: *why* each system tops out.
//!
//! The overload campaign ([`super::overload`]) shows *that* every system's
//! goodput collapses past a saturation knee; this campaign explains *which
//! pipeline stage* is responsible. Each system runs one ramp-to-saturation
//! cell — base load at ¼ of its reference rate, ramping linearly to
//! [`PEAK_MULTIPLIER`] × base by the end of the send window, under the
//! same tight admission pools as the overload campaign — with the
//! [`StageProbe`](coconut_chains::StageProbe) pipeline instrumentation
//! armed. The probe timestamps every transaction across six stages
//! (ingress → mempool wait → consensus → execution → commit → notify) on
//! the deterministic clock, with constant-memory accumulators, so the
//! campaign's cost is one extra pass over timestamps the models already
//! compute.
//!
//! [`attribute`] then turns the per-stage aggregates into a machine-checked
//! verdict:
//!
//! 1. A stage is **saturated** when its mean sampled utilization is at
//!    least [`UTIL_SATURATED`] or it shed at least [`SHED_SATURATED`] of
//!    all submissions (bounded-queue rejections, evictions, drops).
//! 2. If any stage is saturated, the verdict is the saturated stage with
//!    the largest share of total residence time (ties resolve to the
//!    earlier pipeline stage).
//! 3. Otherwise a stage must *dominate* — at least [`DOMINANT_SHARE`] of
//!    total residence and [`SHARE_MARGIN`] clear of the runner-up — or the
//!    verdict is `distributed` (no single stage to blame).
//!
//! The verdicts reproduce the paper's per-system explanations: the Cordas
//! top out in commit (notary signing and finality distribution, §5.8),
//! Sawtooth in its bounded queue (mempool backpressure, §5.6), Quorum in
//! ordering (the block-period stall, §5.5).
//!
//! Every cell's seed is content-addressed
//! ([`crate::exec::bottleneck_cell_seed`]), so `--systems` filters and any
//! `--jobs` worker count render byte-identical reports.

use super::overload::{payload, reference_rate, tight_limits};
use super::ExperimentConfig;
use crate::chaos::ChaosRun;
use crate::client::Windows;
use crate::exec::bottleneck_cell_seed;
use crate::json::Json;
use crate::params::{SystemKind, SystemSetup};
use crate::report::Report;
use crate::scenario::{ScenarioBuilder, Timeline};
use coconut_chains::{Stage, StageReport, SystemStats};
use coconut_types::{SimDuration, SimTime};

/// Offered load at the end of the ramp, relative to the cell's base rate
/// (¼ of the system's reference rate): 8× the reference rate, past every
/// system's saturation knee.
pub const PEAK_MULTIPLIER: f64 = 32.0;

/// A stage whose mean sampled utilization reaches this is saturated.
pub const UTIL_SATURATED: f64 = 0.5;

/// A stage that sheds this fraction of all submissions is saturated.
pub const SHED_SATURATED: f64 = 0.10;

/// Without saturation, a verdict stage must hold at least this share of
/// total residence time…
pub const DOMINANT_SHARE: f64 = 0.5;

/// …and be at least this far ahead of the runner-up.
pub const SHARE_MARGIN: f64 = 0.1;

/// The attribution verdict of one system's cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottleneckVerdict {
    /// The bottleneck stage, or `None` for `distributed`.
    pub stage: Option<Stage>,
    /// Every saturated stage, in [`Stage::ALL`] order.
    pub saturated: Vec<Stage>,
}

impl BottleneckVerdict {
    /// The verdict's stable label (`"distributed"` when no single stage
    /// is to blame).
    pub fn label(&self) -> &'static str {
        self.stage.map_or("distributed", |s| s.label())
    }
}

/// Applies the verdict rule to a finished cell's [`StageReport`] (see the
/// module docs for the rule). Pure and deterministic: a function of the
/// report alone, so tests can machine-check verdicts against hand-built
/// reports.
pub fn attribute(report: &StageReport) -> BottleneckVerdict {
    let submissions = report.get(Stage::Ingress).count.max(1) as f64;
    let saturated: Vec<Stage> = Stage::ALL
        .into_iter()
        .filter(|&s| {
            let snap = report.get(s);
            snap.utilization_mean >= UTIL_SATURATED
                || snap.sheds as f64 / submissions >= SHED_SATURATED
        })
        .collect();
    if !saturated.is_empty() {
        // The saturated stage holding the most residence time; ties go to
        // the earlier pipeline stage (Stage::ALL order, via max_by on a
        // strictly-greater comparison).
        let mut best = saturated[0];
        for &s in &saturated[1..] {
            if report.residence_share(s) > report.residence_share(best) {
                best = s;
            }
        }
        return BottleneckVerdict {
            stage: Some(best),
            saturated,
        };
    }
    let mut shares: Vec<(Stage, f64)> = Stage::ALL
        .into_iter()
        .map(|s| (s, report.residence_share(s)))
        .collect();
    // Stable sort: equal shares keep pipeline order, so the earlier stage
    // wins exact ties.
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let (top, top_share) = shares[0];
    let runner_up = shares[1].1;
    let stage = if top_share >= DOMINANT_SHARE && top_share - runner_up >= SHARE_MARGIN {
        Some(top)
    } else {
        None
    };
    BottleneckVerdict {
        stage,
        saturated: Vec::new(),
    }
}

/// One system's ramp-to-saturation cell.
#[derive(Debug, Clone)]
pub struct BottleneckCell {
    /// System under test.
    pub system: SystemKind,
    /// The ramp's base offered load (tx/s).
    pub base_rate: f64,
    /// Offered load at the ramp's end (tx/s).
    pub offered_peak: f64,
    /// Peak bucket goodput (ops/s): the cell's saturation knee.
    pub knee_mtps: f64,
    /// When the peak bucket started.
    pub knee_at: SimTime,
    /// The machine-checked verdict.
    pub verdict: BottleneckVerdict,
    /// Per-stage aggregates from the probe.
    pub report: StageReport,
    /// System-side counters at the end of the run.
    pub stats: SystemStats,
    /// The full client-side run.
    pub run: ChaosRun,
}

/// The outcome of the bottleneck campaign: one cell per system, in the
/// requested order.
#[derive(Debug, Clone)]
pub struct BottleneckResult {
    /// Cells, one per system.
    pub cells: Vec<BottleneckCell>,
}

impl BottleneckResult {
    /// The cell of `system`, if run.
    pub fn cell(&self, system: SystemKind) -> Option<&BottleneckCell> {
        self.cells.iter().find(|c| c.system == system)
    }
}

/// Virtual-time anchors: the overload campaign's shortened windows (at
/// least 10 s of sending, listen = send + 8 s), with the ramp opening at
/// [`ramp_start`] so every system has a sub-saturation baseline first.
fn windows(cfg: &ExperimentConfig) -> Windows {
    let send_secs = ((100.0 * cfg.scale).round() as u64).max(10);
    Windows {
        send: SimDuration::from_secs(send_secs),
        listen: SimDuration::from_secs(send_secs + 8),
    }
}

/// When the ramp starts (the first 2 s are pure base load).
fn ramp_start() -> SimTime {
    SimTime::from_secs(2)
}

/// One cell as a scenario: base load at ¼ reference, a linear ramp to
/// [`PEAK_MULTIPLIER`]× base over the rest of the send window, tight
/// admission pools, probes armed.
fn cell_scenario(kind: SystemKind, windows: Windows) -> Timeline {
    let send_end = SimTime::ZERO + windows.send;
    ScenarioBuilder::new(payload(kind), reference_rate(kind) * 0.25, windows)
        .setup(SystemSetup::default().with_admission(tight_limits(kind)))
        .probes(true)
        .at(ramp_start())
        .ramp_load(PEAK_MULTIPLIER, send_end)
        .build()
}

/// The saturation knee of a finished run: the bucket where goodput peaked
/// (ties resolve to the earliest bucket) as `(ops/s, bucket start)`.
fn knee(run: &ChaosRun) -> (f64, SimTime) {
    let mut best = 0u64;
    let mut at = 0usize;
    for (i, &b) in run.buckets.iter().enumerate() {
        if b > best {
            best = b;
            at = i;
        }
    }
    let mtps = best as f64 / run.bucket_len.as_secs_f64();
    (mtps, SimTime::ZERO + run.bucket_len * at as u64)
}

/// Runs the bottleneck campaign over all seven systems.
pub fn bottleneck(cfg: &ExperimentConfig) -> BottleneckResult {
    bottleneck_for(cfg, &SystemKind::ALL)
}

/// Runs the campaign over `systems` only. Cell seeds are content-addressed
/// by system, so a subset's cells are byte-identical to the same cells of
/// the full campaign, for any worker count.
pub fn bottleneck_for(cfg: &ExperimentConfig, systems: &[SystemKind]) -> BottleneckResult {
    let windows = windows(cfg);
    let items: Vec<SystemKind> = systems.to_vec();
    let cells = crate::exec::run_grid(&items, cfg.jobs, |_, &system| {
        let seed = bottleneck_cell_seed(cfg.seed, system);
        let base_rate = reference_rate(system) * 0.25;
        let sr = cell_scenario(system, windows).run(system, seed);
        let report = sr.stage_report.expect("bottleneck cells always arm probes");
        let (knee_mtps, knee_at) = knee(&sr.run);
        BottleneckCell {
            system,
            base_rate,
            offered_peak: base_rate * PEAK_MULTIPLIER,
            knee_mtps,
            knee_at,
            verdict: attribute(&report),
            report,
            stats: sr.stats,
            run: sr.run,
        }
    });
    BottleneckResult { cells }
}

impl BottleneckCell {
    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        let stages = Stage::ALL
            .into_iter()
            .map(|s| {
                let snap = self.report.get(s);
                Json::Obj(vec![
                    ("stage".into(), Json::Str(s.label().into())),
                    ("count".into(), Json::Num(snap.count as f64)),
                    ("sum_secs".into(), Json::Num(snap.sum_secs)),
                    ("mean_secs".into(), Json::Num(snap.mean_secs)),
                    ("p50_secs".into(), Json::Num(snap.p50_secs)),
                    ("p95_secs".into(), Json::Num(snap.p95_secs)),
                    ("p99_secs".into(), Json::Num(snap.p99_secs)),
                    ("max_secs".into(), Json::Num(snap.max_secs)),
                    ("share".into(), Json::Num(self.report.residence_share(s))),
                    ("depth_mean".into(), Json::Num(snap.depth_mean)),
                    ("depth_max".into(), Json::Num(snap.depth_max as f64)),
                    ("utilization_mean".into(), Json::Num(snap.utilization_mean)),
                    ("utilization_max".into(), Json::Num(snap.utilization_max)),
                    ("sheds".into(), Json::Num(snap.sheds as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("base_rate".into(), Json::Num(self.base_rate)),
            ("offered_peak".into(), Json::Num(self.offered_peak)),
            ("knee_mtps".into(), Json::Num(self.knee_mtps)),
            ("knee_at_secs".into(), Json::Num(self.knee_at.as_secs_f64())),
            ("verdict".into(), Json::Str(self.verdict.label().into())),
            (
                "saturated".into(),
                Json::Arr(
                    self.verdict
                        .saturated
                        .iter()
                        .map(|s| Json::Str(s.label().into()))
                        .collect(),
                ),
            ),
            ("scheduled".into(), Json::Num(a.scheduled as f64)),
            ("confirmed".into(), Json::Num(a.confirmed as f64)),
            ("busy".into(), Json::Num(self.stats.busy as f64)),
            ("evicted".into(), Json::Num(self.stats.evicted as f64)),
            ("stages".into(), Json::Arr(stages)),
        ])
    }
}

impl Report for BottleneckResult {
    /// Renders the verdict table followed by each system's per-stage
    /// breakdown. Deterministic: the same config yields byte-identical
    /// output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Bottleneck attribution — ramp to saturation, per-stage residence and verdicts\n\n",
        );
        out.push_str(&format!(
            "{:<18} {:>8} {:>9} {:>9} {:>8} {:<13} {}\n",
            "system", "base", "peak", "knee", "knee@s", "verdict", "saturated"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        for c in &self.cells {
            let saturated = if c.verdict.saturated.is_empty() {
                "-".to_string()
            } else {
                c.verdict
                    .saturated
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{:<18} {:>8.0} {:>9.0} {:>9.1} {:>8.0} {:<13} {}\n",
                c.system.label(),
                c.base_rate,
                c.offered_peak,
                c.knee_mtps,
                c.knee_at.as_secs_f64(),
                c.verdict.label(),
                saturated,
            ));
        }
        out.push('\n');
        for c in &self.cells {
            out.push_str(&format!("== {}\n", c.system.label()));
            out.push_str(&format!(
                "{:<13} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>7}\n",
                "stage",
                "count",
                "share",
                "mean ms",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "depth",
                "dmax",
                "util",
                "sheds",
            ));
            for s in Stage::ALL {
                let snap = c.report.get(s);
                out.push_str(&format!(
                    "{:<13} {:>8} {:>6.1}% {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.1} {:>7} {:>6.2} {:>7}\n",
                    s.label(),
                    snap.count,
                    100.0 * c.report.residence_share(s),
                    1e3 * snap.mean_secs,
                    1e3 * snap.p50_secs,
                    1e3 * snap.p95_secs,
                    1e3 * snap.p99_secs,
                    snap.depth_mean,
                    snap.depth_max,
                    snap.utilization_mean,
                    snap.sheds,
                ));
            }
            out.push('\n');
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Obj(vec![(
            "cells".into(),
            Json::Arr(self.cells.iter().map(BottleneckCell::to_json).collect()),
        )])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_chains::StageProbe;

    /// A report hand-built from raw spans: `spans[i]` = (stage, enter µs,
    /// exit µs), plus optional utilization samples and sheds.
    fn report(
        spans: &[(Stage, u64, u64)],
        utils: &[(Stage, f64)],
        sheds: &[(Stage, u64)],
    ) -> StageReport {
        let mut p = StageProbe::new();
        p.enable();
        for (i, &(stage, enter, exit)) in spans.iter().enumerate() {
            p.span(
                stage,
                coconut_types::TxId::new(coconut_types::ClientId(0), i as u64),
                SimTime::from_micros(enter),
                SimTime::from_micros(exit),
            );
        }
        for &(stage, u) in utils {
            p.utilization(stage, u);
        }
        for &(stage, n) in sheds {
            p.shed(stage, n);
        }
        p.report()
    }

    #[test]
    fn saturated_stage_wins_even_without_residence_majority() {
        // Commit saturates (high mean utilization) but Consensus holds more
        // residence: the verdict is still Commit — saturation gates.
        let r = report(
            &[
                (Stage::Ingress, 0, 0),
                (Stage::Consensus, 0, 3_000_000),
                (Stage::Commit, 3_000_000, 4_000_000),
            ],
            &[(Stage::Commit, 0.9), (Stage::Commit, 0.8)],
            &[],
        );
        let v = attribute(&r);
        assert_eq!(v.stage, Some(Stage::Commit));
        assert_eq!(v.saturated, vec![Stage::Commit]);
        assert_eq!(v.label(), "commit");
    }

    #[test]
    fn shed_fraction_saturates_a_queue() {
        // 10 submissions, 3 shed at mempool-wait: the bounded queue is the
        // bottleneck even though execution holds the residence time.
        let mut spans = vec![(Stage::Execution, 0, 5_000_000)];
        for i in 0..10u64 {
            spans.push((Stage::Ingress, i, i));
        }
        let r = report(&spans, &[], &[(Stage::MempoolWait, 3)]);
        let v = attribute(&r);
        assert_eq!(v.stage, Some(Stage::MempoolWait));
    }

    #[test]
    fn dominant_residence_without_saturation_names_the_stage() {
        let r = report(
            &[
                (Stage::Ingress, 0, 0),
                (Stage::Consensus, 0, 8_000_000),
                (Stage::Execution, 8_000_000, 9_000_000),
                (Stage::Notify, 9_000_000, 10_000_000),
            ],
            &[],
            &[],
        );
        let v = attribute(&r);
        assert_eq!(v.stage, Some(Stage::Consensus));
        assert!(v.saturated.is_empty());
    }

    #[test]
    fn near_ties_are_distributed() {
        let r = report(
            &[
                (Stage::Consensus, 0, 4_000_000),
                (Stage::Commit, 4_000_000, 8_000_000),
                (Stage::Execution, 8_000_000, 10_000_000),
            ],
            &[],
            &[],
        );
        let v = attribute(&r);
        assert_eq!(v.stage, None);
        assert_eq!(v.label(), "distributed");
    }

    #[test]
    fn saturation_ties_resolve_to_residence_then_pipeline_order() {
        // Two saturated stages with equal residence: the earlier pipeline
        // stage wins.
        let r = report(
            &[
                (Stage::Consensus, 0, 1_000_000),
                (Stage::Commit, 1_000_000, 2_000_000),
            ],
            &[(Stage::Consensus, 0.9), (Stage::Commit, 0.9)],
            &[],
        );
        assert_eq!(attribute(&r).stage, Some(Stage::Consensus));
    }

    #[test]
    fn empty_report_is_distributed() {
        let v = attribute(&report(&[], &[], &[]));
        assert_eq!(v.stage, None);
        assert!(v.saturated.is_empty());
    }

    #[test]
    fn knee_picks_earliest_peak_bucket() {
        let run = ChaosRun {
            accounting: Default::default(),
            buckets: vec![5, 40, 40, 10],
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            p99: 0.0,
            live: true,
            safety: None,
            liveness: None,
        };
        let (mtps, at) = knee(&run);
        assert_eq!(mtps, 40.0);
        assert_eq!(at, SimTime::from_secs(1));
    }
}
