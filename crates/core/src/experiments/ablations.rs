//! Ablations: isolating the design choices and anomaly models that
//! DESIGN.md calls out. Each returns a small set of labelled results so
//! the bench harness can print paired comparisons.

use coconut_chains::bitshares::{Bitshares, BitsharesConfig};
use coconut_chains::corda::{Corda, CordaConfig};
use coconut_chains::diem::{Diem, DiemConfig};
use coconut_chains::fabric::{Fabric, FabricConfig};
use coconut_chains::quorum::{Quorum, QuorumConfig};
use coconut_chains::sawtooth::{Sawtooth, SawtoothConfig};
use coconut_chains::BlockchainSystem;
use coconut_types::{PayloadKind, SimDuration, SimTime};

use crate::params::SystemKind;
use crate::runner::{run_one, BenchmarkSpec, RepMeasurement};

use super::ExperimentConfig;

/// One labelled ablation arm.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// What this arm varied.
    pub label: String,
    /// The measurement at that setting.
    pub measurement: RepMeasurement,
}

/// Renders a list of arms as a compact table.
pub fn render_arms(title: &str, arms: &[AblationArm]) -> String {
    let mut out = format!(
        "{title}\n| Arm | MTPS | MFLS (s) | Received | Expected |\n|---|---|---|---|---|\n"
    );
    for a in arms {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.0} | {:.0} |\n",
            a.label,
            a.measurement.mtps,
            a.measurement.mfls,
            a.measurement.received,
            a.measurement.expected
        ));
    }
    out
}

fn measure(
    system: &mut (dyn BlockchainSystem + Send),
    kind: SystemKind,
    benchmark: PayloadKind,
    rate: f64,
    ops: u32,
    cfg: &ExperimentConfig,
) -> RepMeasurement {
    let spec = BenchmarkSpec::new(kind, benchmark)
        .rate(rate)
        .ops_per_tx(ops)
        .windows(cfg.windows())
        .repetitions(1);
    run_one(system, &spec, SimTime::ZERO, 0, cfg.seed)
}

/// All seven ablations as `(title, arms)` pairs, run on the grid executor
/// (`cfg.jobs` workers). Every ablation seeds its systems from `cfg.seed`
/// directly — not from its position in this list — so the parallel run is
/// identical to calling each function by hand.
pub fn all_ablations(cfg: &ExperimentConfig) -> Vec<(&'static str, Vec<AblationArm>)> {
    type AblationFn = fn(&ExperimentConfig) -> Vec<AblationArm>;
    const ABLATIONS: [(&str, AblationFn); 7] = [
        ("Ablation: Corda signing discipline", ablation_corda_signing),
        ("Ablation: Sawtooth queue bound", ablation_sawtooth_queue),
        ("Ablation: Quorum txpool stall", ablation_quorum_stall),
        ("Ablation: Diem spiking", ablation_diem_spiking),
        (
            "Ablation: BitShares operations per tx",
            ablation_bitshares_ops,
        ),
        (
            "Ablation: Fabric block cutting",
            ablation_fabric_block_cutting,
        ),
        (
            "Ablation: end-to-end vs node-side measurement",
            ablation_endtoend_vs_node,
        ),
    ];
    crate::exec::run_grid(&ABLATIONS, cfg.jobs, |_, &(title, f)| (title, f(cfg)))
}

/// Corda signing discipline: serial (OS) vs parallel (Enterprise hardware
/// profile with serial signing forced) — isolates §5.1 reason 2.
pub fn ablation_corda_signing(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for (label, serial) in [("parallel signing", false), ("serial signing", true)] {
        let mut chain_cfg = CordaConfig::enterprise();
        chain_cfg.serial_signing = serial;
        let mut sys = Corda::new(chain_cfg, cfg.seed);
        let m = measure(
            &mut sys,
            SystemKind::CordaEnterprise,
            PayloadKind::KeyValueSet,
            40.0,
            1,
            cfg,
        );
        arms.push(AblationArm {
            label: label.into(),
            measurement: m,
        });
    }
    arms
}

/// Sawtooth's bounded validator queue: the paper-like bound vs an
/// effectively unbounded queue — isolates the §5.6 rejection behaviour.
pub fn ablation_sawtooth_queue(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for (label, limit) in [
        ("queue limit 100", 100usize),
        ("unbounded queue", usize::MAX / 2),
    ] {
        let chain_cfg = SawtoothConfig {
            queue_limit: limit,
            ..Default::default()
        };
        let mut sys = Sawtooth::new(chain_cfg, cfg.seed);
        let m = measure(
            &mut sys,
            SystemKind::Sawtooth,
            PayloadKind::DoNothing,
            800.0,
            1,
            cfg,
        );
        arms.push(AblationArm {
            label: label.into(),
            measurement: m,
        });
    }
    arms
}

/// Quorum's txpool stall anomaly on/off at blockperiod 1 s under load
/// (§5.5).
pub fn ablation_quorum_stall(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for (label, anomaly) in [("stall anomaly on", true), ("stall anomaly off", false)] {
        let chain_cfg = QuorumConfig {
            block_period: SimDuration::from_secs(1),
            stall_anomaly: anomaly,
            ..Default::default()
        };
        let mut sys = Quorum::new(chain_cfg, cfg.seed);
        let m = measure(
            &mut sys,
            SystemKind::Quorum,
            PayloadKind::DoNothing,
            1600.0,
            1,
            cfg,
        );
        arms.push(AblationArm {
            label: label.into(),
            measurement: m,
        });
    }
    arms
}

/// Diem's spiking validator stalls on/off (§5.7).
pub fn ablation_diem_spiking(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for (label, interval) in [
        ("spiking on", Some(SimDuration::from_secs(25))),
        ("spiking off", None),
    ] {
        let chain_cfg = DiemConfig {
            spike_interval: interval,
            ..Default::default()
        };
        let mut sys = Diem::new(chain_cfg, cfg.seed);
        let m = measure(
            &mut sys,
            SystemKind::Diem,
            PayloadKind::DoNothing,
            200.0,
            1,
            cfg,
        );
        arms.push(AblationArm {
            label: label.into(),
            measurement: m,
        });
    }
    arms
}

/// BitShares operations per transaction: 1 / 50 / 100 (§5.3, Table 2).
pub fn ablation_bitshares_ops(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for ops in [1u32, 50, 100] {
        let mut sys = Bitshares::new(BitsharesConfig::default(), cfg.seed);
        let m = measure(
            &mut sys,
            SystemKind::Bitshares,
            PayloadKind::DoNothing,
            1600.0,
            ops,
            cfg,
        );
        arms.push(AblationArm {
            label: format!("{ops} op(s)/tx"),
            measurement: m,
        });
    }
    arms
}

/// Fabric's block cutting: MaxMessageCount ∈ {100, 500, 1000, 2000}
/// (Table 5; §5.4 finds only minor impact).
pub fn ablation_fabric_block_cutting(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let mut arms = Vec::new();
    for mm in [100usize, 500, 1000, 2000] {
        let chain_cfg = FabricConfig {
            max_message_count: mm,
            ..Default::default()
        };
        let mut sys = Fabric::new(chain_cfg, cfg.seed);
        sys.run_until(SimTime::from_secs(2));
        let m = measure(
            &mut sys,
            SystemKind::Fabric,
            PayloadKind::DoNothing,
            1600.0,
            1,
            cfg,
        );
        arms.push(AblationArm {
            label: format!("MM={mm}"),
            measurement: m,
        });
    }
    arms
}

/// End-to-end (client-side) vs node-side measurement: the paper's core
/// methodological claim (§5.8.2). At 16 peers Fabric's chain keeps
/// finalizing but clients receive nothing — node-side metrics would hide
/// the outage.
pub fn ablation_endtoend_vs_node(cfg: &ExperimentConfig) -> Vec<AblationArm> {
    let chain_cfg = FabricConfig {
        peers: 16,
        ..Default::default()
    };
    let mut sys = Fabric::new(chain_cfg, cfg.seed);
    sys.run_until(SimTime::from_secs(2));
    let client_side = measure(
        &mut sys,
        SystemKind::Fabric,
        PayloadKind::DoNothing,
        400.0,
        1,
        cfg,
    );
    // Node-side view: what the chain itself processed.
    let node_side_txs = sys.valid_txs() + sys.invalid_txs();
    let send_secs = cfg.windows().send.as_secs_f64();
    let node_side = RepMeasurement {
        mtps: node_side_txs as f64 / send_secs,
        mfls: 0.0, // node logs cannot produce an end-to-end latency
        duration: send_secs,
        p50: 0.0,
        p95: 0.0,
        p99: 0.0,
        received: node_side_txs as f64,
        expected: client_side.expected,
        live: true,
    };
    vec![
        AblationArm {
            label: "client-side (end-to-end)".into(),
            measurement: client_side,
        },
        AblationArm {
            label: "node-side (log extraction)".into(),
            measurement: node_side,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.01,
            repetitions: 1,
            seed: 5,
            full_sweep: false,
            jobs: None,
        }
    }

    #[test]
    fn serial_signing_is_slower() {
        let arms = ablation_corda_signing(&tiny());
        assert!(arms[0].measurement.mtps > arms[1].measurement.mtps);
    }

    #[test]
    fn queue_bound_protects_timeliness() {
        // The bound rejects load at the door; the unbounded queue accepts
        // everything and drowns, confirming no more within the window —
        // the paper's §5.6 dynamic. Needs a window spanning a few blocks.
        let cfg = ExperimentConfig {
            scale: 0.05,
            ..tiny()
        };
        let arms = ablation_sawtooth_queue(&cfg);
        let bounded = &arms[0].measurement;
        let unbounded = &arms[1].measurement;
        assert!(bounded.received > 0.0, "the bounded queue still confirms");
        assert!(unbounded.received > 0.0);
        // The bound keeps the confirmation latency down by rejecting load;
        // the unbounded queue lets waits grow instead.
        assert!(
            bounded.mfls <= unbounded.mfls,
            "bounded latency {} vs unbounded {}",
            bounded.mfls,
            unbounded.mfls
        );
    }

    #[test]
    fn quorum_stall_kills_throughput() {
        let arms = ablation_quorum_stall(&tiny());
        assert_eq!(arms[0].measurement.received, 0.0, "anomaly on → nothing");
        assert!(arms[1].measurement.received > 0.0, "anomaly off → progress");
    }

    #[test]
    fn endtoend_reveals_the_fabric_outage() {
        let arms = ablation_endtoend_vs_node(&tiny());
        assert_eq!(arms[0].measurement.received, 0.0, "clients see nothing");
        assert!(
            arms[1].measurement.received > 0.0,
            "the chain itself advanced"
        );
    }

    #[test]
    fn bitshares_ops_scale_throughput() {
        let arms = ablation_bitshares_ops(&tiny());
        assert!(arms[2].measurement.mtps > arms[0].measurement.mtps * 2.0);
    }

    #[test]
    fn render_includes_labels() {
        let arms = ablation_diem_spiking(&tiny());
        let out = render_arms("Diem spiking", &arms);
        assert!(out.contains("spiking on"));
        assert!(out.contains("MTPS"));
    }
}
