//! Gray-failure campaign: limping nodes, half-open links, flaky paths and
//! WAN stretch — the faults that don't crash anything.
//!
//! The chaos campaign ([`super::chaos`]) kills nodes outright; real
//! deployments degrade more often than they die. This campaign injects the
//! four canonical gray failures from the gray-failure literature into every
//! system, at three severities each, and grades the outcome with the
//! consensus-side [`LivenessMonitor`](coconut_consensus::LivenessMonitor)
//! rather than client-side throughput alone:
//!
//! * **slow-leader** — node 0 (the initial primary/proposer/leader by every
//!   engine's rotation convention) has its service times and timers
//!   stretched ×{8, 32, 128}. BFT engines must view-change away from it;
//!   CFT engines re-elect once heartbeats slip.
//! * **slow-follower** — the same straggler injected at the
//!   highest-numbered node: the control case where quorums exclude the
//!   straggler and goodput should barely move.
//! * **flaky-link** — the 0 ↔ 1 link drops each message independently with
//!   p ∈ {0.1, 0.3, 0.6}; retransmissions and vote redundancy should ride
//!   through it.
//! * **asym-partition** — node 0's *outbound* traffic to a growing victim
//!   set is dropped while inbound replies still flow (the half-open
//!   failure that defeats naive "can I reach it?" health checks).
//! * **region-wan** — a three-region [`RegionMap`] adds {20, 80, 240} ms of
//!   cross-region RTT to every inter-region link.
//!
//! Every fault opens at ¼ of the send window and heals at ½, so each cell
//! measures a clean before / during / after. Each cell reports goodput
//! retention during the fault window (vs. the same system's fault-free
//! baseline cell), end-to-end p99 inflation, time-to-recover after the
//! heal ([`ChaosRun::recovery_secs`]), and the liveness verdict with its
//! view-change and storm counters.
//!
//! The flow-based Cordas have no inter-validator network to impair: only
//! the straggler arms reach their notary pool, and the other kinds are
//! documented no-ops (cells stay at baseline by construction).
//!
//! Every cell's seed is content-addressed
//! ([`crate::exec::grayfail_cell_seed`]), so `--systems` filters and any
//! `--jobs` worker count render byte-identical reports.

use super::chaos::fault_domain;
use super::churn::{payload, steady_rate};
use super::ExperimentConfig;
use crate::chaos::ChaosRun;
use crate::client::Windows;
use crate::exec::grayfail_cell_seed;
use crate::json::Json;
use crate::params::SystemKind;
use crate::report::Report;
use crate::scenario::{ScenarioBuilder, Timeline};
use coconut_chains::SystemStats;
use coconut_types::{NodeId, SimDuration, SimTime};

/// Straggler time-stretch factors, low → high severity. The mid factor is
/// chosen to trip every BFT timeout (e.g. 100 ms base delays × 32 exceeds
/// DiemBFT's 3 s round timer).
pub const SLOW_FACTORS: [f64; 3] = [8.0, 32.0, 128.0];

/// Per-message drop probabilities of the flaky 0 ↔ 1 link.
pub const FLAKY_PROBS: [f64; 3] = [0.1, 0.3, 0.6];

/// Cross-region round-trip times of the WAN arm (ms).
pub const WAN_RTTS_MS: [u64; 3] = [20, 80, 240];

/// Regions of the WAN arm's round-robin map.
pub const WAN_REGIONS: u32 = 3;

/// Severity labels, in grid order. They are seed components — never
/// reorder or rename (see [`crate::exec::grayfail_cell_seed`]).
pub const SEVERITIES: [&str; 3] = ["low", "mid", "high"];

/// Goodput-recovery threshold after the heal: sustained ≥ 70 % of the
/// pre-fault mean over a three-bucket window.
pub const RECOVERY_THRESHOLD: f64 = 0.7;

/// The five injected gray-fault kinds, in grid (and report) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrayKind {
    /// Node 0 — the initial leader by every engine's rotation — limps.
    SlowLeader,
    /// The highest-numbered node limps (the control arm).
    SlowFollower,
    /// The 0 ↔ 1 link drops messages independently.
    FlakyLink,
    /// Node 0's outbound traffic to a victim set is dropped; replies flow.
    AsymPartition,
    /// A three-region map stretches every cross-region link.
    RegionWan,
}

impl GrayKind {
    /// All kinds, in grid order.
    pub const ALL: [GrayKind; 5] = [
        GrayKind::SlowLeader,
        GrayKind::SlowFollower,
        GrayKind::FlakyLink,
        GrayKind::AsymPartition,
        GrayKind::RegionWan,
    ];

    /// The kind's stable label — a seed component, never renamed.
    pub fn label(self) -> &'static str {
        match self {
            GrayKind::SlowLeader => "slow-leader",
            GrayKind::SlowFollower => "slow-follower",
            GrayKind::FlakyLink => "flaky-link",
            GrayKind::AsymPartition => "asym-partition",
            GrayKind::RegionWan => "region-wan",
        }
    }
}

/// One cell of the grid: a system under one gray fault at one severity, or
/// the system's fault-free baseline (`kind == None`).
#[derive(Debug, Clone)]
pub struct GrayfailCell {
    /// System under test.
    pub system: SystemKind,
    /// The injected fault, or `None` for the baseline cell.
    pub kind: Option<GrayKind>,
    /// Severity label (`"-"` for the baseline).
    pub severity: &'static str,
    /// Human description of the injected parameters.
    pub params: String,
    /// Goodput during the fault window (ops/s).
    pub fault_mtps: f64,
    /// `fault_mtps` over the baseline cell's same-window goodput (1.0 for
    /// the baseline itself).
    pub retention: f64,
    /// Whole-run p99 latency over the baseline's (1.0 for the baseline).
    pub p99_inflation: f64,
    /// Virtual seconds from the heal until goodput sustains
    /// [`RECOVERY_THRESHOLD`] × the pre-fault mean; `None` if it never
    /// does (and for the baseline, which has nothing to recover from).
    pub recovery_secs: Option<f64>,
    /// The liveness verdict's label (`"n/a"` if the system exposes no
    /// monitor).
    pub verdict: String,
    /// View/round/term changes (or missed slots) the monitor counted.
    pub view_changes: u64,
    /// View-change storms the monitor counted.
    pub storms: u64,
    /// System-side counters at run end.
    pub stats: SystemStats,
    /// The full client-side run (liveness report included).
    pub run: ChaosRun,
}

impl GrayfailCell {
    /// `"baseline"` or the fault kind's label.
    pub fn kind_label(&self) -> &'static str {
        self.kind.map_or("baseline", GrayKind::label)
    }
}

/// The outcome of the gray-failure campaign: per system, the baseline cell
/// followed by kinds × severities, in grid order.
#[derive(Debug, Clone)]
pub struct GrayfailResult {
    /// All cells, grid order.
    pub cells: Vec<GrayfailCell>,
}

impl GrayfailResult {
    /// The cell of `(system, kind, severity)`; `kind == None` finds the
    /// baseline.
    pub fn cell(
        &self,
        system: SystemKind,
        kind: Option<GrayKind>,
        severity: &str,
    ) -> Option<&GrayfailCell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.kind == kind && c.severity == severity)
    }
}

/// Virtual-time anchors: at least 20 s of sending (scaled), listen = send +
/// 8 s (long enough to drain, short enough that the end-of-run tail gap
/// stays under the monitor's 10 s stall gap), fault on at ¼, heal at ½.
struct Anchors {
    windows: Windows,
    fault_from: SimTime,
    heal_at: SimTime,
}

fn anchors(cfg: &ExperimentConfig) -> Anchors {
    let send_secs = ((300.0 * cfg.scale).round() as u64).max(20);
    Anchors {
        windows: Windows {
            send: SimDuration::from_secs(send_secs),
            listen: SimDuration::from_secs(send_secs + 8),
        },
        fault_from: SimTime::from_secs(send_secs / 4),
        heal_at: SimTime::from_secs(send_secs / 2),
    }
}

/// The victim set of the asymmetric-partition arm at severity `sev`:
/// one node, the back half, or everyone but node 0.
fn asym_victims(total: u32, sev: usize) -> Vec<NodeId> {
    match sev {
        0 => vec![NodeId(total - 1)],
        1 => (total.div_ceil(2)..total).map(NodeId).collect(),
        _ => (1..total).map(NodeId).collect(),
    }
}

/// One cell as a scenario plus its parameter description.
fn cell_scenario(
    system: SystemKind,
    kind: Option<GrayKind>,
    sev: usize,
    a: &Anchors,
) -> (Timeline, String) {
    let total = fault_domain(system).total;
    let base = ScenarioBuilder::new(payload(system), steady_rate(system), a.windows);
    let Some(kind) = kind else {
        return (base.build(), "-".to_string());
    };
    let cur = base.at(a.fault_from);
    match kind {
        GrayKind::SlowLeader => {
            let f = SLOW_FACTORS[sev];
            (
                cur.slow_node(NodeId(0), f, a.heal_at).build(),
                format!("x{f:.0}"),
            )
        }
        GrayKind::SlowFollower => {
            let f = SLOW_FACTORS[sev];
            (
                cur.slow_node(NodeId(total - 1), f, a.heal_at).build(),
                format!("x{f:.0}"),
            )
        }
        GrayKind::FlakyLink => {
            let p = FLAKY_PROBS[sev];
            (
                cur.flaky_link(NodeId(0), NodeId(1), p, a.heal_at).build(),
                format!("p={p:.1}"),
            )
        }
        GrayKind::AsymPartition => {
            let to = asym_victims(total, sev);
            let params = format!("0→{}/{}", to.len(), total);
            (
                cur.asym_partition(&[NodeId(0)], &to, a.heal_at).build(),
                params,
            )
        }
        GrayKind::RegionWan => {
            let rtt = WAN_RTTS_MS[sev];
            let map = coconut_simnet::RegionMap::round_robin(
                total,
                WAN_REGIONS,
                SimDuration::from_millis(rtt),
            );
            (
                cur.region_latency(map, a.heal_at).build(),
                format!("rtt={rtt}ms"),
            )
        }
    }
}

/// Builds one finished cell from its run, relative to its baseline.
fn finish_cell(
    system: SystemKind,
    kind: Option<GrayKind>,
    severity: &'static str,
    params: String,
    a: &Anchors,
    baseline: Option<&GrayfailCell>,
    sr: crate::scenario::ScenarioRun,
) -> GrayfailCell {
    let fault_mtps = sr.run.window_mtps(a.fault_from, a.heal_at);
    let (retention, p99_inflation, recovery_secs) = match baseline {
        None => (1.0, 1.0, None),
        Some(b) => {
            let retention = if b.fault_mtps > 0.0 {
                fault_mtps / b.fault_mtps
            } else {
                1.0
            };
            let inflation = if b.run.p99 > 0.0 {
                sr.run.p99 / b.run.p99
            } else {
                1.0
            };
            (
                retention,
                inflation,
                sr.run
                    .recovery_secs(a.fault_from, a.heal_at, RECOVERY_THRESHOLD),
            )
        }
    };
    let (verdict, view_changes, storms) = sr.run.liveness.as_ref().map_or_else(
        || ("n/a".to_string(), 0, 0),
        |l| (l.verdict.label(), l.view_changes, l.storms),
    );
    GrayfailCell {
        system,
        kind,
        severity,
        params,
        fault_mtps,
        retention,
        p99_inflation,
        recovery_secs,
        verdict,
        view_changes,
        storms,
        stats: sr.stats,
        run: sr.run,
    }
}

/// Runs the gray-failure campaign over all seven systems.
pub fn grayfail(cfg: &ExperimentConfig) -> GrayfailResult {
    grayfail_for(cfg, &SystemKind::ALL)
}

/// Runs the campaign over `systems` only. Cell seeds are content-addressed
/// by `(system, kind, severity)`, so a subset's cells are byte-identical
/// to the same cells of the full campaign, for any worker count.
pub fn grayfail_for(cfg: &ExperimentConfig, systems: &[SystemKind]) -> GrayfailResult {
    let a = anchors(cfg);
    // Baselines first: every fault cell is graded against its system's
    // fault-free run of the same windows and seed scope.
    let baseline_items: Vec<SystemKind> = systems.to_vec();
    let baselines = crate::exec::run_grid(&baseline_items, cfg.jobs, |_, &system| {
        let seed = grayfail_cell_seed(cfg.seed, system, "baseline", "-");
        let (tl, params) = cell_scenario(system, None, 0, &a);
        finish_cell(system, None, "-", params, &a, None, tl.run(system, seed))
    });
    let items: Vec<(SystemKind, GrayKind, usize)> = systems
        .iter()
        .flat_map(|&s| {
            GrayKind::ALL
                .into_iter()
                .flat_map(move |k| (0..SEVERITIES.len()).map(move |i| (s, k, i)))
        })
        .collect();
    let fault_cells = crate::exec::run_grid(&items, cfg.jobs, |_, &(system, kind, sev)| {
        let severity = SEVERITIES[sev];
        let seed = grayfail_cell_seed(cfg.seed, system, kind.label(), severity);
        let (tl, params) = cell_scenario(system, Some(kind), sev, &a);
        let baseline = baselines.iter().find(|b| b.system == system);
        finish_cell(
            system,
            Some(kind),
            severity,
            params,
            &a,
            baseline,
            tl.run(system, seed),
        )
    });
    // Assemble grid order: per system, the baseline then its fault cells.
    let per_system = GrayKind::ALL.len() * SEVERITIES.len();
    let mut cells = Vec::with_capacity(baselines.len() + fault_cells.len());
    for (i, b) in baselines.into_iter().enumerate() {
        cells.push(b);
        cells.extend(
            fault_cells[i * per_system..(i + 1) * per_system]
                .iter()
                .cloned(),
        );
    }
    GrayfailResult { cells }
}

impl GrayfailCell {
    fn to_json(&self) -> Json {
        let acct = &self.run.accounting;
        Json::Obj(vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("kind".into(), Json::Str(self.kind_label().into())),
            ("severity".into(), Json::Str(self.severity.into())),
            ("params".into(), Json::Str(self.params.clone())),
            ("fault_mtps".into(), Json::Num(self.fault_mtps)),
            ("retention".into(), Json::Num(self.retention)),
            ("p99_inflation".into(), Json::Num(self.p99_inflation)),
            (
                "recovery_secs".into(),
                self.recovery_secs.map_or(Json::Null, Json::Num),
            ),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            ("view_changes".into(), Json::Num(self.view_changes as f64)),
            ("storms".into(), Json::Num(self.storms as f64)),
            ("mtps".into(), Json::Num(self.run.mtps)),
            ("p99_secs".into(), Json::Num(self.run.p99)),
            ("scheduled".into(), Json::Num(acct.scheduled as f64)),
            ("confirmed".into(), Json::Num(acct.confirmed as f64)),
            ("busy".into(), Json::Num(self.stats.busy as f64)),
        ])
    }
}

impl Report for GrayfailResult {
    /// Renders the grid, one block per system. Deterministic: the same
    /// config yields byte-identical output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Gray failures — stragglers, flaky links, half-open partitions, WAN\n\n");
        let mut current: Option<SystemKind> = None;
        for c in &self.cells {
            if current != Some(c.system) {
                current = Some(c.system);
                out.push_str(&format!("== {}\n", c.system.label()));
                out.push_str(&format!(
                    "{:<15} {:<4} {:<9} {:>9} {:>9} {:>7} {:>8} {:>6} {:>6}  {}\n",
                    "kind",
                    "sev",
                    "params",
                    "fault t/s",
                    "retain",
                    "p99 x",
                    "recov s",
                    "vc",
                    "storms",
                    "verdict",
                ));
            }
            let recov = c
                .recovery_secs
                .map_or("-".to_string(), |s| format!("{s:.0}"));
            out.push_str(&format!(
                "{:<15} {:<4} {:<9} {:>9.1} {:>8.0}% {:>7.2} {:>8} {:>6} {:>6}  {}\n",
                c.kind_label(),
                if c.severity == "-" { "-" } else { c.severity },
                c.params,
                c.fault_mtps,
                100.0 * c.retention,
                c.p99_inflation,
                recov,
                c.view_changes,
                c.storms,
                c.verdict,
            ));
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Obj(vec![(
            "cells".into(),
            Json::Arr(self.cells.iter().map(GrayfailCell::to_json).collect()),
        )])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            seed: 0xC0C0,
            full_sweep: false,
            jobs: Some(2),
        }
    }

    #[test]
    fn asym_victim_sets_grow_with_severity() {
        assert_eq!(asym_victims(4, 0), vec![NodeId(3)]);
        assert_eq!(asym_victims(4, 1), vec![NodeId(2), NodeId(3)]);
        assert_eq!(asym_victims(4, 2), vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Odd totals: the "back half" never swallows node 0's quorum peers.
        assert_eq!(asym_victims(3, 1), vec![NodeId(2)]);
    }

    #[test]
    fn baseline_cells_are_their_own_reference() {
        let r = grayfail_for(&quick(), &[SystemKind::Fabric]);
        let b = r.cell(SystemKind::Fabric, None, "-").expect("baseline");
        assert_eq!(b.retention, 1.0);
        assert_eq!(b.p99_inflation, 1.0);
        assert!(b.recovery_secs.is_none());
        assert!(b.run.accounting.is_complete());
        // 1 baseline + 5 kinds × 3 severities.
        assert_eq!(r.cells.len(), 16);
    }

    #[test]
    fn subset_cells_match_full_campaign() {
        // Content-addressed seeds: the Quorum cells of a one-system run are
        // byte-identical to the Quorum cells of a two-system run.
        let solo = grayfail_for(&quick(), &[SystemKind::Quorum]);
        let duo = grayfail_for(&quick(), &[SystemKind::Fabric, SystemKind::Quorum]);
        for c in &solo.cells {
            let other = duo
                .cell(c.system, c.kind, c.severity)
                .expect("cell present in the larger run");
            assert_eq!(c.run.accounting, other.run.accounting);
            assert_eq!(c.run.buckets, other.run.buckets);
            assert_eq!(c.verdict, other.verdict);
        }
    }

    #[test]
    fn jobs_do_not_change_results() {
        let mut one = quick();
        one.jobs = Some(1);
        let mut eight = quick();
        eight.jobs = Some(8);
        let a = grayfail_for(&one, &[SystemKind::Sawtooth]);
        let b = grayfail_for(&eight, &[SystemKind::Sawtooth]);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn slow_follower_is_gentler_than_slow_leader() {
        // The control arm: a straggling follower at mid severity retains at
        // least as much goodput as the same straggle on the leader.
        let r = grayfail_for(&quick(), &[SystemKind::Sawtooth]);
        let leader = r
            .cell(SystemKind::Sawtooth, Some(GrayKind::SlowLeader), "mid")
            .unwrap();
        let follower = r
            .cell(SystemKind::Sawtooth, Some(GrayKind::SlowFollower), "mid")
            .unwrap();
        assert!(
            follower.retention >= leader.retention,
            "follower {} < leader {}",
            follower.retention,
            leader.retention
        );
    }
}
