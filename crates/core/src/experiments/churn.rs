//! Membership-churn campaign: protocol-correct node join/leave under
//! steady load, across all seven systems.
//!
//! Each cell runs one system through one churn *arm* — a single join, a
//! single leave, a rolling replacement (join a standby, then retire an
//! original member once the joiner is synced), or a join landing while the
//! system is overloaded (tight admission pools at 8× the steady rate). The
//! join path exercises the engines' epoch-based reconfiguration end to
//! end: the joiner catches up (state transfer) before it may vote or lead,
//! quorum sizes are recomputed at the epoch boundary, and the BFT safety
//! monitors check the cross-epoch invariants (no stale-epoch commits, no
//! pre-sync votes) over the whole run.
//!
//! Per cell the report gives the throughput dip while the membership
//! changes (MTPS before / during / after the churn window, and their
//! ratio), the re-stabilization time (virtual seconds from the last
//! membership event until throughput sustains ≥ 70 % of the pre-churn
//! mean), the number of epoch changes the system went through, the
//! completed join/leave counts, and the safety verdict.
//!
//! Every cell's seed is content-addressed by `("churn", system, arm)` —
//! never by grid position — so restricting the campaign to a subset of
//! systems or arms, or changing the worker count, cannot change any
//! remaining cell's numbers: the same [`ExperimentConfig`] renders
//! byte-identical reports.

use super::chaos::fault_domain;
use super::overload::tight_limits;
use super::ExperimentConfig;
use crate::chaos::ChaosRun;
use crate::client::Windows;
use crate::json::Json;
use crate::params::{SystemKind, SystemSetup};
use crate::report::Report;
use crate::scenario::ScenarioBuilder;
use coconut_types::{NodeId, PayloadKind, SeedDeriver, SimDuration, SimTime};

/// The offered-load multiplier of the join-under-overload arm, relative
/// to the arm's steady rate.
pub const OVERLOAD_MULTIPLIER: f64 = 8.0;

/// One churn scenario: which membership events the cell schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnArm {
    /// One standby node joins mid-run; membership grows by one.
    SingleJoin,
    /// One original member leaves mid-run; membership shrinks by one.
    SingleLeave,
    /// A standby joins, then — once the joiner has synced and voted — an
    /// original member retires: membership size is preserved across two
    /// epoch changes.
    RollingReplace,
    /// [`ChurnArm::SingleJoin`] while the system is saturated: tight
    /// admission pools and [`OVERLOAD_MULTIPLIER`]× the steady rate, so
    /// the reconfiguration competes with `Busy` backpressure and TTL
    /// eviction.
    JoinUnderLoad,
}

impl ChurnArm {
    /// All arms in report column order.
    pub const ALL: [ChurnArm; 4] = [
        ChurnArm::SingleJoin,
        ChurnArm::SingleLeave,
        ChurnArm::RollingReplace,
        ChurnArm::JoinUnderLoad,
    ];

    /// Stable label; also the seed scope of the arm's cells.
    pub const fn label(self) -> &'static str {
        match self {
            ChurnArm::SingleJoin => "single-join",
            ChurnArm::SingleLeave => "single-leave",
            ChurnArm::RollingReplace => "rolling-replace",
            ChurnArm::JoinUnderLoad => "join-under-load",
        }
    }

    /// Standby nodes the deployment must provision for this arm.
    const fn standby(self) -> u32 {
        match self {
            ChurnArm::SingleLeave => 0,
            _ => 1,
        }
    }
}

impl std::fmt::Display for ChurnArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A parameterized churn campaign: which systems × arms to run.
/// [`ChurnCampaign::full`] covers all seven systems and all four arms; the
/// builders filter. Filtering never changes a remaining cell's numbers
/// because every cell's seed is content-addressed by
/// `("churn", system, arm)`.
#[derive(Debug, Clone)]
pub struct ChurnCampaign {
    systems: Vec<SystemKind>,
    arms: Vec<ChurnArm>,
}

impl ChurnCampaign {
    /// All seven systems × all four arms.
    pub fn full() -> Self {
        ChurnCampaign {
            systems: SystemKind::ALL.to_vec(),
            arms: ChurnArm::ALL.to_vec(),
        }
    }

    /// Restricts the campaign to `systems` (canonicalized to
    /// [`SystemKind::ALL`] order, whatever order the filter lists them in,
    /// so output stays canonical).
    pub fn with_systems(mut self, systems: &[SystemKind]) -> Self {
        self.systems = SystemKind::ALL
            .into_iter()
            .filter(|s| systems.contains(s))
            .collect();
        self
    }

    /// Restricts the campaign to `arms` (canonicalized to
    /// [`ChurnArm::ALL`] order).
    pub fn with_arms(mut self, arms: &[ChurnArm]) -> Self {
        self.arms = ChurnArm::ALL
            .into_iter()
            .filter(|a| arms.contains(a))
            .collect();
        self
    }

    /// The systems this campaign runs, in canonical order.
    pub fn systems(&self) -> &[SystemKind] {
        &self.systems
    }

    /// The arms this campaign runs, in canonical order.
    pub fn arms(&self) -> &[ChurnArm] {
        &self.arms
    }

    /// Expands the campaign into `(system, arm)` cell coordinates, in
    /// canonical report order.
    pub fn cells(&self) -> Vec<(SystemKind, ChurnArm)> {
        let mut out = Vec::new();
        for &system in &self.systems {
            for &arm in &self.arms {
                out.push((system, arm));
            }
        }
        out
    }
}

/// One churn cell: one system through one arm.
#[derive(Debug, Clone)]
pub struct ChurnCell {
    /// System under test.
    pub system: SystemKind,
    /// The churn scenario.
    pub arm: ChurnArm,
    /// Human description of the membership change, e.g.
    /// "join 4→5 validators".
    pub churn: String,
    /// Offered load (tx/s).
    pub rate: f64,
    /// MTPS before the first membership event.
    pub pre_mtps: f64,
    /// MTPS over the churn window (first event until the last event).
    pub churn_mtps: f64,
    /// MTPS after the last membership event.
    pub post_mtps: f64,
    /// `churn_mtps / pre_mtps` — the throughput dip while membership
    /// changes (1.0 = no dip; 0.0 when there is no pre-churn baseline).
    pub dip_ratio: f64,
    /// Mean finalization latency over the whole run (s) — churn-induced
    /// latency shows up here against the fault-free arm of the same
    /// system.
    pub mfls: f64,
    /// 95th-percentile finalization latency (s).
    pub p95: f64,
    /// Virtual seconds from the last membership event until throughput
    /// sustains ≥ 70 % of the pre-churn mean (`None` — never
    /// re-stabilized).
    pub restabilize_secs: Option<f64>,
    /// Configuration epochs the system ended on (one per completed
    /// membership change).
    pub epochs: u64,
    /// Completed joins observed by the runtime.
    pub joins: u64,
    /// Completed leaves observed by the runtime.
    pub leaves: u64,
    /// `true` when the system's safety monitor (where it carries one)
    /// reported zero violations — including the cross-epoch invariants.
    /// Vacuously `true` for the CFT systems.
    pub safety_ok: bool,
    /// The full run this cell summarizes.
    pub run: ChaosRun,
}

/// The outcome of a churn campaign: cells in canonical
/// (system, arm) order.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// The systems the campaign ran, canonical order.
    pub systems: Vec<SystemKind>,
    /// The arms the campaign ran, canonical order.
    pub arms: Vec<ChurnArm>,
    /// The cells, in [`ChurnCampaign::cells`] order.
    pub cells: Vec<ChurnCell>,
}

impl ChurnResult {
    /// The cell of `system` × `arm`, if it was run.
    pub fn cell(&self, system: SystemKind, arm: ChurnArm) -> Option<&ChurnCell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.arm == arm)
    }
}

/// Virtual-time anchors of the campaign, derived from the config's scale.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    windows: Windows,
    /// The first membership event (join, or the leave of the leave arm).
    first_at: SimTime,
    /// The second membership event (the rolling arm's leave). Joiner sync
    /// takes ~250 ms, so the joiner is long active by this point.
    second_at: SimTime,
}

fn anchors(cfg: &ExperimentConfig) -> Anchors {
    // Same anchors as the chaos campaign: at least 20 virtual seconds of
    // sending so pre / churn / post each span several 1 s buckets, plus a
    // 10 s listen margin for the send-window tail and time-outed retries.
    let send_secs = ((300.0 * cfg.scale).round() as u64).max(20);
    Anchors {
        windows: Windows {
            send: SimDuration::from_secs(send_secs),
            listen: SimDuration::from_secs(send_secs + 10),
        },
        first_at: SimTime::from_secs(send_secs / 4),
        second_at: SimTime::from_secs(send_secs / 2),
    }
}

/// The steady offered load of one system — the chaos campaign's
/// below-saturation rates, so throughput changes are attributable to the
/// membership change.
pub(crate) fn steady_rate(kind: SystemKind) -> f64 {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => 4.0,
        _ => 50.0,
    }
}

/// Same payload mapping as the chaos campaign: a write workload for the
/// Cordas (exercising flows and the notary under test), DoNothing
/// elsewhere.
pub(crate) fn payload(kind: SystemKind) -> PayloadKind {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PayloadKind::KeyValueSet,
        _ => PayloadKind::DoNothing,
    }
}

/// The scenario and description of one cell. The joiner is the first
/// provisioned standby (`NodeId(total)`); the leaver is the
/// highest-numbered original member (`NodeId(total − 1)`) — never node 0,
/// so the initial leader/primary keeps the chain moving while the
/// membership changes around it.
fn churn_scenario(
    system: SystemKind,
    arm: ChurnArm,
    tl: Anchors,
) -> (String, crate::scenario::Timeline) {
    let d = fault_domain(system);
    let joiner = NodeId(d.total);
    let leaver = NodeId(d.total - 1);
    let rate = match arm {
        ChurnArm::JoinUnderLoad => steady_rate(system) * OVERLOAD_MULTIPLIER,
        _ => steady_rate(system),
    };
    let mut setup = SystemSetup::default().with_standby(arm.standby());
    if arm == ChurnArm::JoinUnderLoad {
        setup = setup.with_admission(tight_limits(system));
    }
    let base = ScenarioBuilder::new(payload(system), rate, tl.windows).setup(setup);
    match arm {
        ChurnArm::SingleJoin => (
            format!("join {}→{} {}", d.total, d.total + 1, d.role_label),
            base.at(tl.first_at).join(joiner).build(),
        ),
        ChurnArm::SingleLeave => (
            format!("leave {}→{} {}", d.total, d.total - 1, d.role_label),
            base.at(tl.first_at).leave(leaver).build(),
        ),
        ChurnArm::RollingReplace => (
            format!("replace 1/{} {}", d.total, d.role_label),
            base.at(tl.first_at)
                .join(joiner)
                .at(tl.second_at)
                .leave(leaver)
                .build(),
        ),
        ChurnArm::JoinUnderLoad => (
            format!(
                "join {}→{} {} at {}x load",
                d.total,
                d.total + 1,
                d.role_label,
                OVERLOAD_MULTIPLIER as u64
            ),
            base.at(tl.first_at).join(joiner).build(),
        ),
    }
}

/// Runs the full campaign: all seven systems × all four arms.
pub fn churn(cfg: &ExperimentConfig) -> ChurnResult {
    churn_for(cfg, &ChurnCampaign::full())
}

/// Runs `campaign`'s cells on the grid executor (`cfg.jobs` workers). Each
/// cell's seed is content-addressed by `("churn", system, arm)`, so any
/// worker count or campaign subset reproduces the same cell bytes.
pub fn churn_for(cfg: &ExperimentConfig, campaign: &ChurnCampaign) -> ChurnResult {
    let tl = anchors(cfg);
    let seeds = SeedDeriver::new(cfg.seed);

    struct SpecCell {
        system: SystemKind,
        arm: ChurnArm,
        churn: String,
        timeline: crate::scenario::Timeline,
        seed: u64,
    }
    let specs: Vec<SpecCell> = campaign
        .cells()
        .into_iter()
        .map(|(system, arm)| {
            let (churn, timeline) = churn_scenario(system, arm, tl);
            SpecCell {
                system,
                arm,
                churn,
                timeline,
                seed: seeds.seed_parts(&["churn", system.label(), arm.label()]),
            }
        })
        .collect();

    let cells = crate::exec::run_grid(&specs, cfg.jobs, |_, s| {
        let sr = s.timeline.run(s.system, s.seed);
        let run = sr.run;
        let listen_end = SimTime::ZERO + tl.windows.listen;
        let last_event = match s.arm {
            ChurnArm::RollingReplace => tl.second_at,
            _ => tl.first_at,
        };
        let pre_mtps = run.window_mtps(SimTime::ZERO, tl.first_at);
        let churn_mtps = run.window_mtps(tl.first_at, tl.second_at);
        let post_mtps = run.window_mtps(tl.second_at, listen_end);
        let restabilize_secs = run.recovery_secs(tl.first_at, last_event, 0.7);
        ChurnCell {
            system: s.system,
            arm: s.arm,
            churn: s.churn.clone(),
            rate: s.timeline.rate(),
            pre_mtps,
            churn_mtps,
            post_mtps,
            dip_ratio: if pre_mtps > 0.0 {
                churn_mtps / pre_mtps
            } else {
                0.0
            },
            mfls: run.mfls,
            p95: run.p95,
            restabilize_secs,
            epochs: sr.epochs,
            joins: sr.stats.joins,
            leaves: sr.stats.leaves,
            safety_ok: run.safety.as_ref().is_none_or(|r| r.violations.is_clean()),
            run,
        }
    });

    ChurnResult {
        systems: campaign.systems.clone(),
        arms: campaign.arms.clone(),
        cells,
    }
}

impl ChurnCell {
    fn render_row(&self) -> String {
        let restab = match self.restabilize_secs {
            Some(s) => format!("{s:.1} s"),
            None => "never".to_string(),
        };
        format!(
            "{:<18} {:<15} {:<30} {:>6.0} {:>8.1} {:>8.1} {:>8.1} {:>5.2} {:>7} {:>6} {:>5} {:>6} {:>6}",
            self.system.label(),
            self.arm.label(),
            self.churn,
            self.rate,
            self.pre_mtps,
            self.churn_mtps,
            self.post_mtps,
            self.dip_ratio,
            restab,
            self.epochs,
            self.joins,
            self.leaves,
            if self.safety_ok { "ok" } else { "VIOL" },
        )
    }

    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        Json::Obj(vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("arm".into(), Json::Str(self.arm.label().into())),
            ("churn".into(), Json::Str(self.churn.clone())),
            ("rate".into(), Json::Num(self.rate)),
            ("pre_mtps".into(), Json::Num(self.pre_mtps)),
            ("churn_mtps".into(), Json::Num(self.churn_mtps)),
            ("post_mtps".into(), Json::Num(self.post_mtps)),
            ("dip_ratio".into(), Json::Num(self.dip_ratio)),
            ("mfls".into(), Json::Num(self.mfls)),
            ("p95".into(), Json::Num(self.p95)),
            (
                "restabilize_secs".into(),
                self.restabilize_secs.map_or(Json::Null, Json::Num),
            ),
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("joins".into(), Json::Num(self.joins as f64)),
            ("leaves".into(), Json::Num(self.leaves as f64)),
            ("safety_ok".into(), Json::Bool(self.safety_ok)),
            ("delivery_ratio".into(), Json::Num(a.delivery_ratio())),
            ("scheduled".into(), Json::Num(a.scheduled as f64)),
            ("confirmed".into(), Json::Num(a.confirmed as f64)),
            ("retries".into(), Json::Num(a.retries as f64)),
            ("live".into(), Json::Bool(self.run.live)),
        ])
    }
}

impl Report for ChurnResult {
    /// Renders the per-system churn table. Deterministic: the same config
    /// yields byte-identical output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Membership churn — epoch-based reconfiguration under steady load\n\
             (dip = churn-window MTPS / pre-churn MTPS; restab = seconds from the\n\
             last membership event until ≥ 70 % of the pre-churn mean sustains)\n\n",
        );
        out.push_str(&format!(
            "{:<18} {:<15} {:<30} {:>6} {:>8} {:>8} {:>8} {:>5} {:>7} {:>6} {:>5} {:>6} {:>6}\n",
            "system",
            "arm",
            "churn",
            "rate",
            "pre",
            "churn",
            "post",
            "dip",
            "restab",
            "epochs",
            "joins",
            "leave",
            "safety",
        ));
        out.push_str(&"-".repeat(140));
        out.push('\n');
        let mut last_system: Option<SystemKind> = None;
        for cell in &self.cells {
            if last_system.is_some_and(|s| s != cell.system) {
                out.push('\n');
            }
            last_system = Some(cell.system);
            out.push_str(&cell.render_row());
            out.push('\n');
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "systems".into(),
                Json::Arr(
                    self.systems
                        .iter()
                        .map(|s| Json::Str(s.label().into()))
                        .collect(),
                ),
            ),
            (
                "arms".into(),
                Json::Arr(
                    self.arms
                        .iter()
                        .map(|a| Json::Str(a.label().into()))
                        .collect(),
                ),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(ChurnCell::to_json).collect()),
            ),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            seed: 0xC0C0,
            full_sweep: false,
            jobs: Some(2),
        }
    }

    #[test]
    fn campaign_cells_expand_in_canonical_order() {
        let c = ChurnCampaign::full();
        assert_eq!(c.cells().len(), 7 * 4);
        // Filters canonicalize to ALL order regardless of input order.
        let f = ChurnCampaign::full()
            .with_systems(&[SystemKind::Fabric, SystemKind::CordaOs])
            .with_arms(&[ChurnArm::SingleLeave, ChurnArm::SingleJoin]);
        assert_eq!(f.systems(), &[SystemKind::CordaOs, SystemKind::Fabric]);
        assert_eq!(f.arms(), &[ChurnArm::SingleJoin, ChurnArm::SingleLeave]);
        assert_eq!(
            f.cells()[0],
            (SystemKind::CordaOs, ChurnArm::SingleJoin),
            "cells walk systems outer, arms inner"
        );
    }

    #[test]
    fn churn_plan_schedules_the_described_events() {
        let tl = anchors(&quick());
        // The rolling arm joins before it leaves, with the sync window
        // (≈ 250 ms) fitting comfortably between the two events.
        let (desc, timeline) = churn_scenario(SystemKind::Quorum, ChurnArm::RollingReplace, tl);
        assert!(desc.contains("replace"));
        assert_eq!(timeline.plan().events().len(), 2);
        assert!(tl.second_at - tl.first_at >= SimDuration::from_secs(1));
        // The single-leave arm needs no standby; every join arm needs one.
        assert_eq!(ChurnArm::SingleLeave.standby(), 0);
        assert_eq!(ChurnArm::RollingReplace.standby(), 1);
    }

    #[test]
    fn single_join_grows_membership_and_keeps_safety() {
        let r = churn_for(
            &quick(),
            &ChurnCampaign::full()
                .with_systems(&[SystemKind::Quorum])
                .with_arms(&[ChurnArm::SingleJoin]),
        );
        let c = &r.cells[0];
        assert_eq!(c.joins, 1, "the standby must complete its join");
        assert_eq!(c.epochs, 1, "one membership change, one epoch bump");
        assert!(c.safety_ok, "cross-epoch invariants must hold");
        assert!(c.post_mtps > 0.0, "commits continue after the join");
        assert!(c.run.live);
    }

    #[test]
    fn single_leave_shrinks_membership_without_stalling() {
        let r = churn_for(
            &quick(),
            &ChurnCampaign::full()
                .with_systems(&[SystemKind::Fabric])
                .with_arms(&[ChurnArm::SingleLeave]),
        );
        let c = &r.cells[0];
        assert_eq!(c.leaves, 1);
        assert_eq!(c.epochs, 1);
        assert!(c.post_mtps > 0.0, "the remaining quorum keeps committing");
    }
}
