//! Contention sweeps: how each system degrades as transaction footprints
//! start to overlap.
//!
//! The paper's workloads are engineered to be conflict-free ("account *n*
//! pays account *n + 1*"), so none of its campaigns exercise the systems'
//! concurrency-control paths. This campaign does: every system runs the
//! [`Smallbank`](crate::workload::Smallbank) transfer mix and the
//! Zipf-skewed [`Ycsb`](crate::workload::Ycsb) mix over a bounded account
//! pool, at three contention levels ([`LEVELS`]) that jointly raise the
//! Zipfian exponent and the hot-set draw probability. As footprints
//! concentrate, each system loses transactions through *its own* mechanism
//! — Fabric invalidates stale MVCC read sets at validation, the Cordas
//! reject notary double-spends, BitShares rejects interacting operations
//! in one batch, Sawtooth aborts conflicting batches — and the campaign
//! reports goodput plus the loss split by cause (conflicts, admission
//! rejections, busy backpressure, evictions, client timeouts).
//!
//! After each cell the workload's [`Workload::verify`] invariant runs over
//! the system's final ledger: Smallbank's conserved total balance proves
//! the concurrency-control path never double-applied or half-applied a
//! transfer; YCSB checks its preloaded keyspace survived.
//!
//! Every cell's seed is content-addressed
//! ([`crate::exec::contention_cell_seed`]), so `--systems`, `--workloads`,
//! and `--jobs` subsets render byte-identical cells.

use super::ExperimentConfig;
use crate::chaos::ChaosRun;
use crate::client::Windows;
use crate::exec::contention_cell_seed;
use crate::json::Json;
use crate::params::{SystemKind, SystemSetup};
use crate::report::Report;
use crate::scenario::{ScenarioBuilder, Timeline};
use crate::workload::{ContentionKnobs, Smallbank, Workload, Ycsb};
use coconut_chains::SystemStats;
use coconut_types::{PayloadKind, SimDuration};

/// Accounts (Smallbank) / keys (YCSB) in the shared pool. Small enough
/// that the hot set is genuinely hot within a shortened window, large
/// enough that the low-contention level stays near conflict-free.
pub const ACCOUNT_POOL: u64 = 64;

/// One contention level: a named point on the skew diagonal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionLevel {
    /// Stable label ("low", "mid", "high") — part of the cell seed.
    pub name: &'static str,
    /// Zipfian exponent over the account pool.
    pub zipf_s: f64,
    /// Probability a draw is forced into the hot set (top 5 % of ranks).
    pub hot_fraction: f64,
}

impl ContentionLevel {
    /// The level as workload knobs over [`ACCOUNT_POOL`].
    pub fn knobs(&self) -> ContentionKnobs {
        ContentionKnobs {
            zipf_s: self.zipf_s,
            hot_fraction: self.hot_fraction,
            account_pool: ACCOUNT_POOL,
        }
    }
}

/// The sweep's three levels, in increasing contention order. Exponent and
/// hot fraction move together (a diagonal sweep): the interesting regime
/// transitions happen along the diagonal, and three cells per
/// (system, workload) keep the campaign affordable.
pub const LEVELS: [ContentionLevel; 3] = [
    ContentionLevel {
        name: "low",
        zipf_s: 0.2,
        hot_fraction: 0.05,
    },
    ContentionLevel {
        name: "mid",
        zipf_s: 0.9,
        hot_fraction: 0.30,
    },
    ContentionLevel {
        name: "high",
        zipf_s: 1.4,
        hot_fraction: 0.70,
    },
];

/// The campaign's workload names, in run order. These are the values the
/// `repro --workloads` filter accepts.
pub const WORKLOADS: [&str; 2] = ["Smallbank", "YCSB"];

/// Builds the named workload at `knobs`.
///
/// # Panics
///
/// Panics on a name outside [`WORKLOADS`] — the CLI validates names before
/// the campaign runs.
pub fn workload_named(name: &str, knobs: ContentionKnobs) -> Box<dyn Workload + Send + Sync> {
    match name {
        "Smallbank" => Box::new(Smallbank::new(knobs)),
        "YCSB" => Box::new(Ycsb::new(knobs)),
        other => panic!("unknown workload {other:?}"),
    }
}

/// One (system, workload, level) cell.
#[derive(Debug, Clone)]
pub struct ContentionCell {
    /// System under test.
    pub system: SystemKind,
    /// Workload name ("Smallbank" or "YCSB").
    pub workload: &'static str,
    /// The contention level.
    pub level: ContentionLevel,
    /// Offered load (tx/s across all clients).
    pub rate: f64,
    /// Goodput (confirmed ops/s over the measurement window).
    pub goodput: f64,
    /// Concurrency-control losses ([`SystemStats::conflicts`]): MVCC
    /// invalidations, notary double-spends, interacting-op rejections,
    /// aborted batches.
    pub conflicts: u64,
    /// `conflicts` as a share of transactions accepted at ingress.
    pub conflict_share: f64,
    /// The workload invariant over the final ledger (`None` when the
    /// system exposes no ledger).
    pub verified: Option<Result<(), String>>,
    /// System-side counters at the end of the run.
    pub stats: SystemStats,
    /// The full client-side run.
    pub run: ChaosRun,
}

/// The campaign outcome: cells in (system, workload, level) order.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// All cells, systems outermost, levels innermost.
    pub cells: Vec<ContentionCell>,
}

impl ContentionResult {
    /// The cell of `(system, workload, level)`, if run.
    pub fn cell(&self, system: SystemKind, workload: &str, level: &str) -> Option<&ContentionCell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.workload == workload && c.level.name == level)
    }
}

/// Virtual-time anchors: the bottleneck campaign's windows (at least 10 s
/// of sending so per-cause rates have statistics, listen = send + 8 s).
fn windows(cfg: &ExperimentConfig) -> Windows {
    let send_secs = ((100.0 * cfg.scale).round() as u64).max(10);
    Windows {
        send: SimDuration::from_secs(send_secs),
        listen: SimDuration::from_secs(send_secs + 8),
    }
}

/// Offered load: each system's smallest paper rate limiter (200 tx/s),
/// comfortably below every saturation knee so the losses the campaign
/// measures come from contention, not overload. The Cordas run at half
/// their smallest limiter (10 tx/s): Smallbank's two-account flows carry
/// vault-scan costs the paper's single-account ops don't, and 20 tx/s
/// already saturates Corda OS — which would bury the notary's
/// double-spend signal under timeout noise.
fn cell_rate(kind: SystemKind) -> f64 {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => kind.rate_limiters()[0] * 0.5,
        _ => kind.rate_limiters()[0],
    }
}

/// One cell as a scenario: constant load, default deployment, the named
/// workload installed over the builder's label payload.
fn cell_scenario(
    kind: SystemKind,
    workload: &'static str,
    level: ContentionLevel,
    windows: Windows,
) -> Timeline {
    ScenarioBuilder::new(PayloadKind::SendPayment, cell_rate(kind), windows)
        .setup(SystemSetup::default())
        .workload_boxed(workload_named(workload, level.knobs()))
        .build()
}

/// Runs the contention campaign over all seven systems and both workloads.
pub fn contention(cfg: &ExperimentConfig) -> ContentionResult {
    contention_for(cfg, &SystemKind::ALL, &WORKLOADS)
}

/// Runs the campaign over `systems` × `workloads` only. Cell seeds are
/// content-addressed by `(system, workload, level)`, so a subset's cells
/// are byte-identical to the same cells of the full campaign, for any
/// worker count.
pub fn contention_for(
    cfg: &ExperimentConfig,
    systems: &[SystemKind],
    workloads: &[&str],
) -> ContentionResult {
    let windows = windows(cfg);
    let mut items: Vec<(SystemKind, &'static str, ContentionLevel)> = Vec::new();
    for &system in systems {
        for &name in WORKLOADS.iter().filter(|n| workloads.contains(n)) {
            for level in LEVELS {
                items.push((system, name, level));
            }
        }
    }
    let cells = crate::exec::run_grid(&items, cfg.jobs, |_, &(system, workload, level)| {
        let seed = contention_cell_seed(cfg.seed, system, workload, level.name);
        let sr = cell_scenario(system, workload, level, windows).run(system, seed);
        let accepted = sr.stats.accepted.max(1);
        ContentionCell {
            system,
            workload,
            level,
            rate: cell_rate(system),
            goodput: sr.run.mtps,
            conflicts: sr.stats.conflicts,
            conflict_share: sr.stats.conflicts as f64 / accepted as f64,
            verified: sr.verified,
            stats: sr.stats,
            run: sr.run,
        }
    });
    ContentionResult { cells }
}

/// A verification verdict's stable label.
fn verified_label(v: &Option<Result<(), String>>) -> String {
    match v {
        None => "no-ledger".into(),
        Some(Ok(())) => "ok".into(),
        Some(Err(e)) => format!("FAIL: {e}"),
    }
}

impl ContentionCell {
    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        Json::Obj(vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("workload".into(), Json::Str(self.workload.into())),
            ("level".into(), Json::Str(self.level.name.into())),
            ("zipf_s".into(), Json::Num(self.level.zipf_s)),
            ("hot_fraction".into(), Json::Num(self.level.hot_fraction)),
            ("account_pool".into(), Json::Num(ACCOUNT_POOL as f64)),
            ("rate".into(), Json::Num(self.rate)),
            ("goodput".into(), Json::Num(self.goodput)),
            ("scheduled".into(), Json::Num(a.scheduled as f64)),
            ("confirmed".into(), Json::Num(a.confirmed as f64)),
            ("accepted".into(), Json::Num(self.stats.accepted as f64)),
            ("conflicts".into(), Json::Num(self.conflicts as f64)),
            ("conflict_share".into(), Json::Num(self.conflict_share)),
            ("rejected".into(), Json::Num(self.stats.rejected as f64)),
            ("busy".into(), Json::Num(self.stats.busy as f64)),
            ("evicted".into(), Json::Num(self.stats.evicted as f64)),
            ("timed_out".into(), Json::Num(a.timed_out as f64)),
            ("backpressured".into(), Json::Num(a.backpressured as f64)),
            ("verified".into(), Json::Str(verified_label(&self.verified))),
        ])
    }
}

impl Report for ContentionResult {
    /// Renders one table per workload: goodput and the loss split by cause
    /// across the contention diagonal. Deterministic: the same config
    /// yields byte-identical output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Contention sweeps — Zipf-skewed Smallbank and YCSB, losses split by cause\n");
        for &workload in WORKLOADS.iter() {
            let cells: Vec<&ContentionCell> = self
                .cells
                .iter()
                .filter(|c| c.workload == workload)
                .collect();
            if cells.is_empty() {
                continue;
            }
            out.push_str(&format!("\n== {workload}\n"));
            out.push_str(&format!(
                "{:<18} {:<5} {:>6} {:>6} {:>8} {:>9} {:>8} {:>7} {:>6} {:>7} {:>8} {}\n",
                "system",
                "level",
                "zipf",
                "hot",
                "rate",
                "goodput",
                "conflict",
                "share",
                "reject",
                "busy",
                "timeout",
                "verified",
            ));
            out.push_str(&"-".repeat(108));
            out.push('\n');
            for c in cells {
                out.push_str(&format!(
                    "{:<18} {:<5} {:>6.1} {:>6.2} {:>8.0} {:>9.1} {:>8} {:>6.1}% {:>6} {:>7} {:>8} {}\n",
                    c.system.label(),
                    c.level.name,
                    c.level.zipf_s,
                    c.level.hot_fraction,
                    c.rate,
                    c.goodput,
                    c.conflicts,
                    100.0 * c.conflict_share,
                    c.stats.rejected,
                    c.stats.busy,
                    c.run.accounting.timed_out,
                    verified_label(&c.verified),
                ));
            }
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Obj(vec![(
            "cells".into(),
            Json::Arr(self.cells.iter().map(ContentionCell::to_json).collect()),
        )])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_in_increasing_contention_order() {
        for w in LEVELS.windows(2) {
            assert!(w[0].zipf_s < w[1].zipf_s);
            assert!(w[0].hot_fraction < w[1].hot_fraction);
        }
    }

    #[test]
    fn workload_factory_covers_the_campaign_names() {
        for name in WORKLOADS {
            let w = workload_named(name, LEVELS[0].knobs());
            assert_eq!(w.name(), name);
            assert!(!w.preload().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn workload_factory_rejects_unknown_names() {
        let _ = workload_named("TPC-C", LEVELS[0].knobs());
    }

    #[test]
    fn workload_filter_prunes_cells() {
        let cfg = ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            ..ExperimentConfig::default()
        };
        let r = contention_for(&cfg, &[SystemKind::Fabric], &["YCSB"]);
        assert_eq!(r.cells.len(), LEVELS.len());
        assert!(r.cells.iter().all(|c| c.workload == "YCSB"));
    }
}
