//! Reproductions of every figure and table in the paper's evaluation
//! (§5): Figure 3 (best-configuration heat map), Figure 4 (emulated
//! latency), Figure 5 (scalability), Tables 7–20, plus the ablations
//! called out in DESIGN.md.
//!
//! All experiments accept an [`ExperimentConfig`] whose `scale` shrinks the
//! paper's 300 s send window proportionally (0.1 → 30 s), keeping rates and
//! parameters identical — throughput and latency *shapes* are preserved
//! while runs stay cheap.

pub mod ablations;
pub mod bottleneck;
pub mod chaos;
pub mod churn;
pub mod contention;
pub mod figures;
pub mod grayfail;
pub mod overload;
pub mod scenarios;
pub mod tables;

pub use ablations::{
    ablation_bitshares_ops, ablation_corda_signing, ablation_diem_spiking,
    ablation_endtoend_vs_node, ablation_fabric_block_cutting, ablation_quorum_stall,
    ablation_sawtooth_queue, all_ablations,
};
pub use bottleneck::{
    attribute, bottleneck, bottleneck_for, BottleneckCell, BottleneckResult, BottleneckVerdict,
};
pub use chaos::{
    byzantine_domain, chaos, chaos_sweep, fault_domain, ByzantineDomain, ChaosCell, ChaosResult,
    DegradationCurve, FaultCampaign, FaultDomain, FaultKind, SweepCell, SweepResult,
};
pub use churn::{churn, churn_for, ChurnArm, ChurnCampaign, ChurnCell, ChurnResult};
pub use contention::{
    contention, contention_for, workload_named, ContentionCell, ContentionLevel, ContentionResult,
    ACCOUNT_POOL, LEVELS, WORKLOADS,
};
pub use figures::{fig3, fig4, fig5, Fig3Result, Fig5Result};
pub use grayfail::{grayfail, grayfail_for, GrayKind, GrayfailCell, GrayfailResult};
pub use overload::{
    overload, overload_curves_for, overload_probes_for, tight_limits, MetastableProbe,
    OverloadCell, OverloadCurve, OverloadResult, ProbeArm,
};
pub use scenarios::{
    render_scenario_list, scenario_library, scenario_names, scenarios, scenarios_for,
    NamedScenario, ScenarioCampaign, ScenarioCell, ScenarioResult,
};
pub use tables::{
    table11_12, table13_14, table15_16, table17_18, table19_20, table7_8, table9_10, TableResult,
};

/// Shared experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Window scale relative to the paper's 300 s / 330 s (1.0 = paper).
    pub scale: f64,
    /// Repetitions per configuration (the paper uses 3).
    pub repetitions: u32,
    /// Root seed.
    pub seed: u64,
    /// `true` → sweep the paper's full parameter grid; `false` → a reduced
    /// grid (min/max rate, two block parameters) that preserves the best
    /// cells.
    pub full_sweep: bool,
    /// Worker threads for grid execution (`None` → one per CPU). Results
    /// are byte-identical for every setting — see [`crate::exec`].
    pub jobs: Option<usize>,
}

impl Default for ExperimentConfig {
    /// Scale 0.1 (30 s windows), 2 repetitions, reduced sweep.
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.1,
            repetitions: 2,
            seed: 0xC0C0_0717,
            full_sweep: false,
            jobs: None,
        }
    }
}

impl ExperimentConfig {
    /// A configuration for fast CI runs / Criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's full-fidelity configuration (300 s, r = 3, full sweep).
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: 1.0,
            repetitions: 3,
            seed: 0xC0C0_0717,
            full_sweep: true,
            jobs: None,
        }
    }

    /// The client windows at this scale.
    pub fn windows(&self) -> crate::client::Windows {
        crate::client::Windows::scaled(self.scale)
    }
}
