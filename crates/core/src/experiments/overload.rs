//! Overload robustness: goodput-collapse curves and the metastable-failure
//! probe.
//!
//! Two instruments share one timeline and the tight admission pools
//! ([`tight_limits`]):
//!
//! * **Goodput curves** ([`overload`]'s `curves`): each system is offered
//!   `multiplier ×` its reference rate across [`MULTIPLIERS`], with the
//!   retry client but no client-side protection. Goodput (confirmed ops/s
//!   over the send window) rises with offered load until the system
//!   saturates, then collapses as admission answers `Busy`, TTL eviction
//!   sheds stale transactions, and retries amplify the offered load — the
//!   *saturation knee* ([`OverloadCurve::knee`]) is the multiplier where
//!   goodput peaks.
//! * **Metastable probe** ([`overload`]'s `probes`): the same 8× overload
//!   pulse over `[3·send/10, send/2)` is run twice per system — once with the
//!   bare retry client, once with [`ClientProtection::overload_default`]
//!   (retry budget + circuit breaker). The unprotected arm's retries
//!   amplify the pulse and sustain the overload after it ends (the
//!   metastable-failure signature); the protected arm sheds the excess and
//!   recovers no later, with strictly lower retry amplification.
//!
//! Every cell's seed is content-addressed (`["overload", system,
//! multiplier]` / `["overload-probe", system]`), so filtering or worker
//! counts never change a remaining cell's numbers, and both probe arms
//! share one seed — identical schedule, identical deployment — so their
//! difference is purely the protection under test.

use super::ExperimentConfig;
use crate::chaos::{ChaosRun, ClientProtection};
use crate::client::Windows;
use crate::json::Json;
use crate::params::{SystemKind, SystemSetup};
use crate::report::Report;
use crate::scenario::ScenarioBuilder;
use coconut_chains::runtime::PoolLimits;
use coconut_types::{PayloadKind, SeedDeriver, SimDuration, SimTime};

/// The offered-load multipliers of the goodput curve, relative to the
/// system's reference rate.
pub const MULTIPLIERS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// The probe's pulse height relative to the base rate.
pub const PULSE_MULTIPLIER: f64 = 8.0;

/// The curve's 1× reference: the paper's largest rate limiter (1600 tx/s;
/// one tenth for the Cordas), so the multiplier grid straddles every
/// system's saturation point.
pub(crate) fn reference_rate(kind: SystemKind) -> f64 {
    *kind
        .rate_limiters()
        .last()
        .expect("every system has rate limiters")
}

/// The probe's base rate: the paper's smallest rate limiter, which every
/// healthy system serves comfortably — the pulse, not the baseline, is
/// what overloads.
fn probe_base_rate(kind: SystemKind) -> f64 {
    kind.rate_limiters()[0]
}

/// The tight admission pools of the overload campaign: small enough that
/// saturation manifests as `Busy` backpressure and TTL eviction within the
/// shortened windows, instead of unbounded queueing. (Corda's capacity
/// bounds each node's flow backlog; the block-based systems bound the
/// shared pending pool.)
pub fn tight_limits(kind: SystemKind) -> PoolLimits {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PoolLimits::bounded(32),
        _ => PoolLimits::bounded(512).with_ttl(SimDuration::from_secs(4)),
    }
}

/// Same payload mapping as the chaos campaign: a write workload for the
/// Cordas (exercising flows and the notary), DoNothing elsewhere.
pub(crate) fn payload(kind: SystemKind) -> PayloadKind {
    match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PayloadKind::KeyValueSet,
        _ => PayloadKind::DoNothing,
    }
}

/// Virtual-time anchors, derived from the config's scale. Overload runs
/// use shorter windows than the chaos campaign: saturation dynamics show
/// within seconds, and the top multiplier offers 8× the largest rate
/// limiter.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    windows: Windows,
    pulse_start: SimTime,
    pulse_end: SimTime,
}

fn anchors(cfg: &ExperimentConfig) -> Anchors {
    // At least 10 virtual seconds of sending so the pre/pulse/post phases
    // each span multiple 1 s buckets, plus an 8 s listen margin matching
    // the retry client's finalization timeout.
    let send_secs = ((100.0 * cfg.scale).round() as u64).max(10);
    Anchors {
        windows: Windows {
            send: SimDuration::from_secs(send_secs),
            listen: SimDuration::from_secs(send_secs + 8),
        },
        // The pulse starts at 3/10 of the send window — late enough that
        // every system (including Fabric, whose first block waits out the
        // 2 s batch timeout) has a non-zero pre-pulse baseline.
        pulse_start: SimTime::from_secs(send_secs * 3 / 10),
        pulse_end: SimTime::from_secs(send_secs / 2),
    }
}

/// One goodput-curve cell: one system at one offered-load multiplier.
#[derive(Debug, Clone)]
pub struct OverloadCell {
    /// System under test.
    pub system: SystemKind,
    /// Offered load relative to the reference rate.
    pub multiplier: f64,
    /// Offered load (tx/s across all clients).
    pub offered: f64,
    /// Confirmed operations per second over the send window.
    pub goodput: f64,
    /// System-side `Busy` answers (bounded-pool backpressure).
    pub busy: u64,
    /// Transactions shed by TTL eviction.
    pub evicted: u64,
    /// The full run this cell summarizes.
    pub run: ChaosRun,
}

/// The goodput-vs-offered-load curve of one system, cells in ascending
/// multiplier order.
#[derive(Debug, Clone)]
pub struct OverloadCurve {
    /// System under test.
    pub system: SystemKind,
    /// The 1× offered load (tx/s).
    pub reference_rate: f64,
    /// Cells in [`MULTIPLIERS`] order.
    pub cells: Vec<OverloadCell>,
}

impl OverloadCurve {
    /// The saturation knee: the cell where goodput peaks. Ties resolve to
    /// the lowest offered load (beyond the knee, more offered load buys
    /// nothing).
    ///
    /// # Panics
    ///
    /// Panics if the curve has no cells (never produced by [`overload`]).
    pub fn knee(&self) -> &OverloadCell {
        self.cells
            .iter()
            .reduce(|best, c| if c.goodput > best.goodput { c } else { best })
            .expect("curves have at least one cell")
    }
}

/// One arm of the metastable probe.
#[derive(Debug, Clone)]
pub struct ProbeArm {
    /// `true` → retry budget + circuit breaker armed.
    pub protected: bool,
    /// MTPS before the pulse.
    pub pre_mtps: f64,
    /// MTPS while the pulse is active.
    pub pulse_mtps: f64,
    /// MTPS after the pulse ends.
    pub post_mtps: f64,
    /// Virtual seconds from pulse end until throughput sustains ≥ 70 % of
    /// the pre-pulse mean (`None` — never recovered: the metastable
    /// signature).
    pub recovery_secs: Option<f64>,
    /// Sends per scheduled transaction
    /// ([`crate::chaos::DeliveryAccounting::retry_amplification`]).
    pub amplification: f64,
    /// System-side `Busy` answers.
    pub busy: u64,
    /// Transactions shed by TTL eviction.
    pub evicted: u64,
    /// The full run this arm summarizes.
    pub run: ChaosRun,
}

/// The metastable-failure probe of one system: one overload pulse, two
/// client configurations.
#[derive(Debug, Clone)]
pub struct MetastableProbe {
    /// System under test.
    pub system: SystemKind,
    /// Baseline offered load (tx/s).
    pub base_rate: f64,
    /// Pulse height relative to the base rate.
    pub pulse_multiplier: f64,
    /// When the pulse starts.
    pub pulse_start: SimTime,
    /// When the pulse ends.
    pub pulse_end: SimTime,
    /// The bare retry client.
    pub unprotected: ProbeArm,
    /// The budget + breaker client.
    pub protected: ProbeArm,
}

/// The outcome of the overload campaign: one curve and one probe per
/// system, in [`SystemKind::ALL`] order.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Goodput curves, one per system.
    pub curves: Vec<OverloadCurve>,
    /// Metastable probes, one per system.
    pub probes: Vec<MetastableProbe>,
}

impl OverloadResult {
    /// The curve of `system`, if swept.
    pub fn curve(&self, system: SystemKind) -> Option<&OverloadCurve> {
        self.curves.iter().find(|c| c.system == system)
    }

    /// The probe of `system`, if run.
    pub fn probe(&self, system: SystemKind) -> Option<&MetastableProbe> {
        self.probes.iter().find(|p| p.system == system)
    }
}

/// One goodput-curve cell as a scenario: base load at the offered rate
/// over the whole window, tight admission pools, no faults.
fn curve_scenario(kind: SystemKind, offered: f64, tl: Anchors) -> crate::scenario::Timeline {
    ScenarioBuilder::new(payload(kind), offered, tl.windows)
        .setup(SystemSetup::default().with_admission(tight_limits(kind)))
        .build()
}

/// One probe arm as a scenario: baseline traffic over the full send
/// window, a `PULSE_MULTIPLIER ×` flash crowd over
/// `[pulse_start, pulse_end)`, and the protection under test.
fn probe_scenario(kind: SystemKind, protected: bool, tl: Anchors) -> crate::scenario::Timeline {
    let protection = if protected {
        ClientProtection::overload_default()
    } else {
        ClientProtection::disabled()
    };
    ScenarioBuilder::new(payload(kind), probe_base_rate(kind), tl.windows)
        .setup(SystemSetup::default().with_admission(tight_limits(kind)))
        .protection(protection)
        .at(tl.pulse_start)
        .flash_crowd(PULSE_MULTIPLIER, tl.pulse_end)
        .build()
}

/// Runs the overload campaign: the goodput curve (7 systems ×
/// [`MULTIPLIERS`]) and the metastable probe (7 systems × 2 arms), all
/// cells independent on the grid executor (`cfg.jobs` workers). Seeds are
/// content-addressed per cell, so any worker count renders byte-identical
/// reports.
pub fn overload(cfg: &ExperimentConfig) -> OverloadResult {
    OverloadResult {
        curves: overload_curves_for(cfg, &SystemKind::ALL),
        probes: overload_probes_for(cfg, &SystemKind::ALL),
    }
}

/// The goodput curves of `systems` only. Cell seeds are content-addressed
/// by (system, multiplier), so a subset's cells are byte-identical to the
/// same cells of the full campaign.
pub fn overload_curves_for(cfg: &ExperimentConfig, systems: &[SystemKind]) -> Vec<OverloadCurve> {
    let tl = anchors(cfg);
    let seeds = SeedDeriver::new(cfg.seed);

    struct CurveItem {
        system: SystemKind,
        multiplier: f64,
        seed: u64,
    }
    let curve_items: Vec<CurveItem> = systems
        .iter()
        .copied()
        .flat_map(|system| {
            MULTIPLIERS
                .into_iter()
                .map(move |multiplier| (system, multiplier))
        })
        .map(|(system, multiplier)| CurveItem {
            system,
            multiplier,
            seed: seeds.seed_parts(&[
                "overload",
                system.label(),
                &format!("{}", (multiplier * 1000.0).round() as u64),
            ]),
        })
        .collect();

    let cells = crate::exec::run_grid(&curve_items, cfg.jobs, |_, item| {
        let offered = reference_rate(item.system) * item.multiplier;
        let sr = curve_scenario(item.system, offered, tl).run(item.system, item.seed);
        OverloadCell {
            system: item.system,
            multiplier: item.multiplier,
            offered,
            goodput: sr.run.accounting.confirmed as f64 / tl.windows.send.as_secs_f64(),
            busy: sr.stats.busy,
            evicted: sr.stats.evicted,
            run: sr.run,
        }
    });

    let mut curves: Vec<OverloadCurve> = Vec::new();
    for cell in cells {
        match curves.last_mut() {
            Some(c) if c.system == cell.system => c.cells.push(cell),
            _ => curves.push(OverloadCurve {
                system: cell.system,
                reference_rate: reference_rate(cell.system),
                cells: vec![cell],
            }),
        }
    }
    curves
}

/// The metastable probes of `systems` only (seeds content-addressed by
/// system, as with the curves).
pub fn overload_probes_for(cfg: &ExperimentConfig, systems: &[SystemKind]) -> Vec<MetastableProbe> {
    let tl = anchors(cfg);
    let seeds = SeedDeriver::new(cfg.seed);

    struct ProbeItem {
        system: SystemKind,
        protected: bool,
        seed: u64,
    }
    let probe_items: Vec<ProbeItem> = systems
        .iter()
        .copied()
        .flat_map(|system| [false, true].map(|protected| (system, protected)))
        .map(|(system, protected)| ProbeItem {
            system,
            protected,
            // Both arms share one seed: identical schedule, identical
            // deployment — the arms differ only in client protection.
            seed: seeds.seed_parts(&["overload-probe", system.label()]),
        })
        .collect();

    let arms = crate::exec::run_grid(&probe_items, cfg.jobs, |_, item| {
        let sr = probe_scenario(item.system, item.protected, tl).run(item.system, item.seed);
        let run = sr.run;
        let listen_end = SimTime::ZERO + tl.windows.listen;
        ProbeArm {
            protected: item.protected,
            pre_mtps: run.window_mtps(SimTime::ZERO, tl.pulse_start),
            pulse_mtps: run.window_mtps(tl.pulse_start, tl.pulse_end),
            post_mtps: run.window_mtps(tl.pulse_end, listen_end),
            recovery_secs: run.recovery_secs(tl.pulse_start, tl.pulse_end, 0.7),
            amplification: run.accounting.retry_amplification(),
            busy: sr.stats.busy,
            evicted: sr.stats.evicted,
            run,
        }
    });

    let mut probes = Vec::new();
    let mut arms = arms.into_iter();
    for &system in systems {
        let unprotected = arms.next().expect("two arms per system");
        let protected = arms.next().expect("two arms per system");
        probes.push(MetastableProbe {
            system,
            base_rate: probe_base_rate(system),
            pulse_multiplier: PULSE_MULTIPLIER,
            pulse_start: tl.pulse_start,
            pulse_end: tl.pulse_end,
            unprotected,
            protected,
        });
    }
    probes
}

impl OverloadCell {
    fn render_row(&self) -> String {
        let a = &self.run.accounting;
        format!(
            "{:>5.2} {:>9.0} {:>9.1} {:>6.3} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6}",
            self.multiplier,
            self.offered,
            self.goodput,
            a.delivery_ratio(),
            self.busy,
            self.evicted,
            a.rejected,
            a.timed_out,
            a.backpressured,
            a.unsent,
            a.retries,
        )
    }

    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        Json::Obj(vec![
            ("multiplier".into(), Json::Num(self.multiplier)),
            ("offered".into(), Json::Num(self.offered)),
            ("goodput".into(), Json::Num(self.goodput)),
            ("delivery_ratio".into(), Json::Num(a.delivery_ratio())),
            ("busy".into(), Json::Num(self.busy as f64)),
            ("evicted".into(), Json::Num(self.evicted as f64)),
            ("scheduled".into(), Json::Num(a.scheduled as f64)),
            ("confirmed".into(), Json::Num(a.confirmed as f64)),
            ("rejected".into(), Json::Num(a.rejected as f64)),
            ("timed_out".into(), Json::Num(a.timed_out as f64)),
            ("backpressured".into(), Json::Num(a.backpressured as f64)),
            ("unsent".into(), Json::Num(a.unsent as f64)),
            ("retries".into(), Json::Num(a.retries as f64)),
            ("busy_responses".into(), Json::Num(a.busy_responses as f64)),
            ("mfls".into(), Json::Num(self.run.mfls)),
        ])
    }
}

impl ProbeArm {
    fn render_row(&self, system: &str) -> String {
        let a = &self.run.accounting;
        let rec = match self.recovery_secs {
            Some(s) => format!("{s:.1} s"),
            None => "never".to_string(),
        };
        format!(
            "{:<18} {:<11} {:>8.1} {:>8.1} {:>8.1} {:>8} {:>6.3} {:>7} {:>7} {:>6} {:>8}",
            system,
            if self.protected {
                "protected"
            } else {
                "unprotected"
            },
            self.pre_mtps,
            self.pulse_mtps,
            self.post_mtps,
            rec,
            self.amplification,
            a.busy_responses,
            a.budget_exhausted,
            a.breaker_opens,
            a.retries,
        )
    }

    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        Json::Obj(vec![
            (
                "arm".into(),
                Json::Str(
                    if self.protected {
                        "protected"
                    } else {
                        "unprotected"
                    }
                    .into(),
                ),
            ),
            ("pre_mtps".into(), Json::Num(self.pre_mtps)),
            ("pulse_mtps".into(), Json::Num(self.pulse_mtps)),
            ("post_mtps".into(), Json::Num(self.post_mtps)),
            (
                "recovery_secs".into(),
                self.recovery_secs.map_or(Json::Null, Json::Num),
            ),
            ("retry_amplification".into(), Json::Num(self.amplification)),
            ("delivery_ratio".into(), Json::Num(a.delivery_ratio())),
            ("busy".into(), Json::Num(self.busy as f64)),
            ("evicted".into(), Json::Num(self.evicted as f64)),
            ("retries".into(), Json::Num(a.retries as f64)),
            ("busy_responses".into(), Json::Num(a.busy_responses as f64)),
            ("backpressured".into(), Json::Num(a.backpressured as f64)),
            (
                "budget_exhausted".into(),
                Json::Num(a.budget_exhausted as f64),
            ),
            ("breaker_opens".into(), Json::Num(a.breaker_opens as f64)),
            ("breaker_open_secs".into(), Json::Num(a.breaker_open_secs)),
        ])
    }
}

impl Report for OverloadResult {
    /// Renders the goodput curves (with per-system knee) followed by the
    /// metastable-probe table. Deterministic: the same config yields
    /// byte-identical output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Goodput curves — confirmed ops/s vs offered load (tight admission pools)\n\n",
        );
        for curve in &self.curves {
            out.push_str(&format!(
                "== {} (reference {} tx/s)\n",
                curve.system.label(),
                curve.reference_rate
            ));
            out.push_str(&format!(
                "{:>5} {:>9} {:>9} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
                "mult",
                "offered",
                "goodput",
                "deliv",
                "busy",
                "evict",
                "rej",
                "tout",
                "backp",
                "unsent",
                "retry",
            ));
            for cell in &curve.cells {
                out.push_str(&cell.render_row());
                out.push('\n');
            }
            let knee = curve.knee();
            out.push_str(&format!(
                "knee: goodput peaks at {:.2}x ({:.1} ops/s)\n\n",
                knee.multiplier, knee.goodput
            ));
        }
        out.push_str(&format!(
            "Metastable probe — {PULSE_MULTIPLIER:.0}x pulse over [{} s, {} s), budget+breaker vs bare retries\n\n",
            self.probes
                .first()
                .map_or(0, |p| p.pulse_start.as_secs_f64() as u64),
            self.probes
                .first()
                .map_or(0, |p| p.pulse_end.as_secs_f64() as u64),
        ));
        out.push_str(&format!(
            "{:<18} {:<11} {:>8} {:>8} {:>8} {:>8} {:>6} {:>7} {:>7} {:>6} {:>8}\n",
            "system",
            "arm",
            "pre",
            "pulse",
            "post",
            "recovery",
            "amp",
            "busy",
            "budget",
            "opens",
            "retries",
        ));
        out.push_str(&"-".repeat(110));
        out.push('\n');
        for p in &self.probes {
            out.push_str(&p.unprotected.render_row(p.system.label()));
            out.push('\n');
            out.push_str(&p.protected.render_row(p.system.label()));
            out.push('\n');
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        let curves = self
            .curves
            .iter()
            .map(|c| {
                let knee = c.knee();
                Json::Obj(vec![
                    ("system".into(), Json::Str(c.system.label().into())),
                    ("reference_rate".into(), Json::Num(c.reference_rate)),
                    ("knee_multiplier".into(), Json::Num(knee.multiplier)),
                    ("knee_goodput".into(), Json::Num(knee.goodput)),
                    (
                        "cells".into(),
                        Json::Arr(c.cells.iter().map(OverloadCell::to_json).collect()),
                    ),
                ])
            })
            .collect();
        let probes = self
            .probes
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("system".into(), Json::Str(p.system.label().into())),
                    ("base_rate".into(), Json::Num(p.base_rate)),
                    ("pulse_multiplier".into(), Json::Num(p.pulse_multiplier)),
                    (
                        "pulse_start_secs".into(),
                        Json::Num(p.pulse_start.as_secs_f64()),
                    ),
                    (
                        "pulse_end_secs".into(),
                        Json::Num(p.pulse_end.as_secs_f64()),
                    ),
                    (
                        "arms".into(),
                        Json::Arr(vec![p.unprotected.to_json(), p.protected.to_json()]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("curves".into(), Json::Arr(curves)),
            ("probes".into(), Json::Arr(probes)),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.02,
            repetitions: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn pulse_schedule_merges_sorted_and_collision_free() {
        use crate::scenario::overlay_tag;
        let tl = anchors(&quick());
        let sched = probe_scenario(SystemKind::Fabric, false, tl).schedule(42);
        let base_rate = probe_base_rate(SystemKind::Fabric);
        // Sorted by (at, id) …
        assert!(sched
            .windows(2)
            .all(|w| (w[0].at, w[0].tx.id()) < (w[1].at, w[1].tx.id())));
        // … with unique ids (the pulse tag keeps the overlay disjoint) …
        let mut ids: Vec<_> = sched.iter().map(|s| s.tx.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), sched.len());
        // … and all overlay sends inside the pulse window.
        for s in &sched {
            if s.tx.id().seq() & overlay_tag(0) != 0 {
                assert!(s.at >= tl.pulse_start && s.at < tl.pulse_end + SimDuration::from_secs(1));
            }
        }
        // The overlay adds (PULSE_MULTIPLIER − 1)× base over the pulse
        // window: total ≈ base · (send + (mult − 1) · pulse_len).
        let pulse_len = (tl.pulse_end - tl.pulse_start).as_secs_f64();
        let expect =
            base_rate * (tl.windows.send.as_secs_f64() + (PULSE_MULTIPLIER - 1.0) * pulse_len);
        let got = sched.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "schedule size {got} vs expected {expect}"
        );
    }

    #[test]
    fn knee_picks_lowest_multiplier_on_ties() {
        let mk = |multiplier: f64, goodput: f64| OverloadCell {
            system: SystemKind::Fabric,
            multiplier,
            offered: multiplier * 100.0,
            goodput,
            busy: 0,
            evicted: 0,
            run: ChaosRun {
                accounting: Default::default(),
                buckets: vec![],
                bucket_len: SimDuration::from_secs(1),
                mtps: 0.0,
                mfls: 0.0,
                p95: 0.0,
                p99: 0.0,
                live: true,
                safety: None,
                liveness: None,
            },
        };
        let curve = OverloadCurve {
            system: SystemKind::Fabric,
            reference_rate: 100.0,
            cells: vec![mk(0.5, 80.0), mk(1.0, 90.0), mk(2.0, 90.0), mk(4.0, 30.0)],
        };
        assert_eq!(curve.knee().multiplier, 1.0);
    }

    #[test]
    fn tight_limits_are_tight() {
        for kind in SystemKind::ALL {
            let l = tight_limits(kind);
            assert!(
                l.capacity <= 512,
                "{}: overload pools must be small",
                kind.label()
            );
        }
    }
}
