//! Deterministic fault-injection campaigns ("chaos") over all seven
//! systems.
//!
//! Two campaign shapes share one cell-measurement engine:
//!
//! * **The classic four-arm campaign** ([`chaos`]) per the robustness
//!   study: an f-tolerant crash/heal window, a beyond-f crash that must
//!   halt commits, a 5 % loss burst against the retry client (Fabric,
//!   Quorum), and a Byzantine window at ≤ f and f + 1 flagged validators
//!   (the BFT systems).
//! * **The fault sweep** ([`chaos_sweep`]): a [`FaultCampaign`] — system ×
//!   [`FaultKind`] × severity step — expanded into independent cells on the
//!   grid executor, producing per-system **degradation curves** (MTPS
//!   before/during/after, delivery ratio, and recovery time as functions
//!   of crashed-node count f = 0..=beyond-f, loss rate, or flagged-
//!   validator count) and a Figure-3-style **heat map** of recovery time
//!   and delivery ratio per system × fault kind.
//!
//! Every cell's seed is content-addressed — classic arms by
//! `(arm, system)`, sweep cells by [`crate::exec::sweep_cell_seed`]`(kind,
//! system, severity)` — never by grid position, so filtering a campaign to
//! a subset of systems or kinds cannot change any remaining cell's
//! numbers. Every number is a pure function of the root seed: the same
//! [`ExperimentConfig`] renders byte-identical reports.

use super::ExperimentConfig;
use crate::chaos::{ChaosRun, RetryPolicy};
use crate::client::Windows;
use crate::json::Json;
use crate::params::SystemKind;
use crate::report::{self, Report};
use crate::scenario::ScenarioBuilder;
use coconut_types::{NodeId, PayloadKind, SeedDeriver, SimDuration, SimTime};

/// The crashable consensus role of one system's baseline deployment: which
/// nodes the crash arms take away, and how many of them the protocol
/// survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDomain {
    /// Plural label of the role ("notaries", "orderers", "validators",
    /// "witnesses").
    pub role_label: &'static str,
    /// Baseline size of the role set.
    pub total: u32,
    /// The largest crash count the protocol tolerates while staying live.
    pub f_tolerant: u32,
    /// The smallest crash count that halts commits.
    pub beyond_f: u32,
}

impl FaultDomain {
    /// Human description of `crashed` nodes of this role, e.g.
    /// "2/4 validators".
    pub fn describe(&self, crashed: u32) -> String {
        format!("{crashed}/{} {}", self.total, self.role_label)
    }
}

/// The crash-fault domain of each system's baseline deployment.
pub fn fault_domain(kind: SystemKind) -> FaultDomain {
    let (role_label, total, f_tolerant, beyond_f) = match kind {
        // The notary pool fails over shard-by-shard; finality halts only
        // once every notary is down.
        SystemKind::CordaOs | SystemKind::CordaEnterprise => ("notaries", 4, 3, 4),
        // DPoS skips missed slots; block production stops only with no
        // witness left.
        SystemKind::Bitshares => ("witnesses", 3, 1, 3),
        // Raft needs a majority of the 3 orderers.
        SystemKind::Fabric => ("orderers", 3, 1, 2),
        // IBFT / PBFT / DiemBFT: n = 4 → f = 1, halt at 2.
        SystemKind::Quorum | SystemKind::Sawtooth | SystemKind::Diem => ("validators", 4, 1, 2),
    };
    FaultDomain {
        role_label,
        total,
        f_tolerant,
        beyond_f,
    }
}

/// The Byzantine fault domain of a system whose consensus has a Byzantine
/// vote quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineDomain {
    /// Baseline validator count.
    pub total: u32,
    /// The largest flagged-validator count safety survives (n = 3f + 1).
    pub f_tolerant: u32,
}

impl ByzantineDomain {
    /// The smallest flagged-validator count that breaks safety.
    pub fn beyond_f(&self) -> u32 {
        self.f_tolerant + 1
    }

    /// Human description of `flagged` equivocating validators, e.g.
    /// "2/4 equivocating".
    pub fn describe(&self, flagged: u32) -> String {
        format!("{flagged}/{} equivocating", self.total)
    }
}

/// The Byzantine fault domain of each system, or `None` for the
/// crash-fault-tolerant rest (Raft ordering, DPoS slots, Corda notaries) —
/// equivocation and double votes have no meaning without a vote quorum.
pub fn byzantine_domain(kind: SystemKind) -> Option<ByzantineDomain> {
    match kind {
        SystemKind::Quorum | SystemKind::Sawtooth | SystemKind::Diem => Some(ByzantineDomain {
            total: 4,
            f_tolerant: 1,
        }),
        _ => None,
    }
}

/// The fault axes a sweep campaign can walk. Each kind maps a scalar
/// severity step to a concrete [`FaultPlan`]; severity 0 is always the
/// fault-free baseline cell of the degradation curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Crash `severity` consensus-critical nodes mid-run, heal them at the
    /// window's end (severity = crashed-node count, 0..=beyond-f).
    Crash,
    /// A client-ingress/consensus loss window at `severity` percent drop
    /// probability, against the retry/backoff client.
    Loss,
    /// Flag `severity` validators to equivocate and double-vote during the
    /// fault window (BFT systems only; severity = 0..=f+1).
    Byzantine,
}

impl FaultKind {
    /// All fault kinds in report column order.
    pub const ALL: [FaultKind; 3] = [FaultKind::Crash, FaultKind::Loss, FaultKind::Byzantine];

    /// Stable label; also the seed scope of the kind's sweep cells.
    pub const fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Loss => "loss",
            FaultKind::Byzantine => "byzantine",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The loss-rate severity axis, in percent drop probability.
const LOSS_STEPS: [u32; 4] = [0, 1, 5, 10];

/// A parameterized fault-sweep campaign: which systems × fault kinds to
/// walk. [`FaultCampaign::full`] covers all seven systems and all three
/// kinds; the builder methods filter. Each (system, kind) pair expands
/// into one cell per severity step the protocol admits
/// ([`FaultCampaign::severities`]); filtering never changes a remaining
/// cell's numbers because each cell's seed is content-addressed by
/// [`crate::exec::sweep_cell_seed`].
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    systems: Vec<SystemKind>,
    kinds: Vec<FaultKind>,
}

impl FaultCampaign {
    /// All seven systems × all three fault kinds.
    pub fn full() -> Self {
        FaultCampaign {
            systems: SystemKind::ALL.to_vec(),
            kinds: FaultKind::ALL.to_vec(),
        }
    }

    /// Restricts the campaign to `systems`. The report always walks
    /// systems in [`SystemKind::ALL`] order, whatever order the filter
    /// lists them in, so output stays canonical.
    pub fn with_systems(mut self, systems: &[SystemKind]) -> Self {
        self.systems = SystemKind::ALL
            .into_iter()
            .filter(|s| systems.contains(s))
            .collect();
        self
    }

    /// Restricts the campaign to `kinds` (canonicalized to
    /// [`FaultKind::ALL`] order, like [`FaultCampaign::with_systems`]).
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = FaultKind::ALL
            .into_iter()
            .filter(|k| kinds.contains(k))
            .collect();
        self
    }

    /// The systems this campaign sweeps, in canonical order.
    pub fn systems(&self) -> &[SystemKind] {
        &self.systems
    }

    /// The fault kinds this campaign sweeps, in canonical order.
    pub fn kinds(&self) -> &[FaultKind] {
        &self.kinds
    }

    /// The severity steps `system` admits for `kind` — the degradation
    /// curve's x-axis. Empty when the axis does not apply (Byzantine
    /// counts on a CFT system). Crash walks f = 0..=beyond-f; loss walks
    /// [`LOSS_STEPS`] percent; Byzantine walks 0..=f+1 flagged validators.
    pub fn severities(system: SystemKind, kind: FaultKind) -> Vec<u32> {
        match kind {
            FaultKind::Crash => (0..=fault_domain(system).beyond_f).collect(),
            FaultKind::Loss => LOSS_STEPS.to_vec(),
            FaultKind::Byzantine => {
                byzantine_domain(system).map_or_else(Vec::new, |d| (0..=d.beyond_f()).collect())
            }
        }
    }

    /// Expands the campaign into `(system, kind, severity)` cell
    /// coordinates, in canonical report order.
    pub fn cells(&self) -> Vec<(SystemKind, FaultKind, u32)> {
        let mut out = Vec::new();
        for &system in &self.systems {
            for &kind in &self.kinds {
                for severity in FaultCampaign::severities(system, kind) {
                    out.push((system, kind, severity));
                }
            }
        }
        out
    }
}

/// One system × one fault arm of the classic campaign.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// System under test.
    pub system: SystemKind,
    /// Arm label ("crash-f", "crash-beyond-f", "loss-burst", "byz-f",
    /// "byz-beyond-f").
    pub arm: &'static str,
    /// Fault description, e.g. "1/3 orderers" or "2/4 equivocating".
    pub faults: String,
    /// Aggregate rate limiter used (tx/s).
    pub rate: f64,
    /// MTPS over the pre-fault window.
    pub pre_mtps: f64,
    /// MTPS while the fault is active.
    pub fault_mtps: f64,
    /// MTPS after the heal.
    pub post_mtps: f64,
    /// Virtual seconds from heal until throughput sustains ≥ 70 % of the
    /// pre-fault mean (`None` — never recovered, or halt arm).
    pub recovery_secs: Option<f64>,
    /// The full run this cell summarizes.
    pub run: ChaosRun,
}

/// One sweep cell: one system × one fault kind × one severity step.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// System under test.
    pub system: SystemKind,
    /// The fault axis this cell sits on.
    pub kind: FaultKind,
    /// The severity step: crashed-node count, loss percent, or
    /// flagged-validator count, depending on `kind`.
    pub severity: u32,
    /// Human description of the fault, e.g. "2/4 validators" or "5% loss".
    pub faults: String,
    /// Aggregate rate limiter used (tx/s).
    pub rate: f64,
    /// MTPS over the pre-fault window.
    pub pre_mtps: f64,
    /// MTPS while the fault is active.
    pub fault_mtps: f64,
    /// MTPS after the fault window closes.
    pub post_mtps: f64,
    /// Virtual seconds from the window's end until throughput sustains
    /// ≥ 70 % of the pre-fault mean (`None` — never recovered).
    pub recovery_secs: Option<f64>,
    /// The full run this cell summarizes.
    pub run: ChaosRun,
}

/// The degradation curve of one system along one fault axis: cells in
/// ascending severity order, starting at the fault-free baseline.
#[derive(Debug, Clone)]
pub struct DegradationCurve {
    /// System under test.
    pub system: SystemKind,
    /// The fault axis the curve walks.
    pub kind: FaultKind,
    /// The cells, ordered by ascending severity.
    pub cells: Vec<SweepCell>,
}

impl DegradationCurve {
    /// The cell at `severity`, if it was swept.
    pub fn at(&self, severity: u32) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.severity == severity)
    }
}

/// The outcome of a fault-sweep campaign: one [`DegradationCurve`] per
/// (system, fault kind) the campaign admitted, in canonical order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The systems the campaign swept (heat-map rows), canonical order.
    pub systems: Vec<SystemKind>,
    /// The fault kinds the campaign swept (heat-map columns), canonical
    /// order. A kind a system does not admit still gets its column — the
    /// heat map renders "n/a" there.
    pub kinds: Vec<FaultKind>,
    /// The campaign's curves in [`SystemKind::ALL`] × [`FaultKind::ALL`]
    /// order.
    pub curves: Vec<DegradationCurve>,
}

/// The complete classic chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// f-tolerant crash/heal arm, one cell per system.
    pub tolerant: Vec<ChaosCell>,
    /// beyond-f crash arm (no heal), one cell per system.
    pub halt: Vec<ChaosCell>,
    /// Loss-burst arm with the retry client (Fabric, Quorum).
    pub bursts: Vec<ChaosCell>,
    /// Byzantine window arm, two cells (≤ f and f + 1 flagged validators)
    /// per BFT system (Quorum, Sawtooth, Diem).
    pub byzantine: Vec<ChaosCell>,
}

/// Virtual-time anchors of the campaign, derived from the config's scale.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    windows: Windows,
    crash_at: SimTime,
    heal_at: SimTime,
}

fn anchors(cfg: &ExperimentConfig) -> Anchors {
    // At least 20 virtual seconds of sending so every phase (pre / fault /
    // post) spans several 1 s buckets, plus a 10 s listen margin so the
    // send-window tail and time-outed retries can still confirm.
    let send_secs = ((300.0 * cfg.scale).round() as u64).max(20);
    let windows = Windows {
        send: SimDuration::from_secs(send_secs),
        listen: SimDuration::from_secs(send_secs + 10),
    };
    Anchors {
        windows,
        crash_at: SimTime::from_secs(send_secs / 4),
        heal_at: SimTime::from_secs(send_secs / 2),
    }
}

/// The campaign's base scenario for one system: workload, rate, and
/// windows, before any fault timeline is attached.
fn scenario(kind: SystemKind, anchors: Anchors) -> ScenarioBuilder {
    // A write workload for Corda (DoNothing has no states and is answered
    // locally, so it would bypass the notary under test); DoNothing for
    // the block-based systems.
    let payload = match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PayloadKind::KeyValueSet,
        _ => PayloadKind::DoNothing,
    };
    // Well below saturation, so throughput changes are attributable to the
    // fault — below Corda OS's ~5 tx/s KeyValue-Set ceiling (Table 7; the
    // flow pipeline resolves at submit time, so a saturated backlog would
    // smear commits far past a crash), and below the rate where a 4 s IBFT
    // round change would push Quorum's pending pool over its §5.5 stall
    // threshold, which would conflate the modelled liveness anomaly with
    // crash tolerance.
    let rate = match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => 4.0,
        _ => 50.0,
    };
    ScenarioBuilder::new(payload, rate, anchors.windows)
}

/// The measured metrics of one cell, classic or sweep.
struct Measured {
    rate: f64,
    pre_mtps: f64,
    fault_mtps: f64,
    post_mtps: f64,
    recovery_secs: Option<f64>,
    run: ChaosRun,
}

/// Runs one cell's compiled scenario timeline against a fresh deployment
/// of `kind` and windows the run into pre/fault/post MTPS plus the
/// recovery time (computed only for `healed` cells — halt arms are not
/// heal-and-recover experiments).
fn measure(
    kind: SystemKind,
    tl: Anchors,
    timeline: &crate::scenario::Timeline,
    healed: bool,
    seed: u64,
) -> Measured {
    let run = timeline.run(kind, seed).run;
    let listen_end = SimTime::ZERO + tl.windows.listen;
    let pre_mtps = run.window_mtps(SimTime::ZERO, tl.crash_at);
    let fault_mtps = run.window_mtps(tl.crash_at, tl.heal_at);
    let post_mtps = run.window_mtps(tl.heal_at, listen_end);
    let recovery_secs = if healed {
        run.recovery_secs(tl.crash_at, tl.heal_at, 0.7)
    } else {
        None
    };
    Measured {
        rate: timeline.rate(),
        pre_mtps,
        fault_mtps,
        post_mtps,
        recovery_secs,
        run,
    }
}

/// The fault description and scenario of one sweep cell. All kinds share
/// the `[crash_at, heal_at)` fault window so the during-fault measurement
/// window lines up across axes; severity 0 always maps to an event-free
/// timeline (the curve's fault-free baseline).
fn sweep_scenario(
    system: SystemKind,
    kind: FaultKind,
    severity: u32,
    tl: Anchors,
) -> (String, crate::scenario::Timeline) {
    let base = scenario(system, tl);
    match kind {
        FaultKind::Crash => {
            let d = fault_domain(system);
            let nodes: Vec<NodeId> = (0..severity).map(NodeId).collect();
            (
                d.describe(severity),
                base.at(tl.crash_at).crash_until(&nodes, tl.heal_at).build(),
            )
        }
        FaultKind::Loss => {
            let timeline = if severity == 0 {
                base.build()
            } else {
                base.at(tl.crash_at)
                    .loss(f64::from(severity) / 100.0, tl.heal_at)
                    .build()
            };
            (format!("{severity}% loss"), timeline)
        }
        FaultKind::Byzantine => {
            let d = byzantine_domain(system).expect("severities() admits Byzantine only for BFT");
            let nodes: Vec<NodeId> = (0..severity).map(NodeId).collect();
            let timeline = if severity == 0 {
                base.build()
            } else {
                base.at(tl.crash_at).byzantine(&nodes, tl.heal_at).build()
            };
            (d.describe(severity), timeline)
        }
    }
}

/// Runs a fault-sweep campaign: every (system, kind, severity) cell of
/// `campaign` on the grid executor (`cfg.jobs` workers), grouped into
/// per-system [`DegradationCurve`]s. All cells use the retry/backoff
/// client and the shared fault window, so curves are comparable across
/// axes; each cell's seed comes from [`crate::exec::sweep_cell_seed`], so
/// any filtering or worker count reproduces the same cell bytes.
pub fn chaos_sweep(cfg: &ExperimentConfig, campaign: &FaultCampaign) -> SweepResult {
    let tl = anchors(cfg);

    struct SpecCell {
        system: SystemKind,
        kind: FaultKind,
        severity: u32,
        faults: String,
        timeline: crate::scenario::Timeline,
        seed: u64,
    }
    let specs: Vec<SpecCell> = campaign
        .cells()
        .into_iter()
        .map(|(system, kind, severity)| {
            let (faults, timeline) = sweep_scenario(system, kind, severity, tl);
            SpecCell {
                system,
                kind,
                severity,
                faults,
                timeline,
                seed: crate::exec::sweep_cell_seed(cfg.seed, kind.label(), system, severity),
            }
        })
        .collect();

    let cells = crate::exec::run_grid(&specs, cfg.jobs, |_, s| {
        let m = measure(s.system, tl, &s.timeline, true, s.seed);
        SweepCell {
            system: s.system,
            kind: s.kind,
            severity: s.severity,
            faults: s.faults.clone(),
            rate: m.rate,
            pre_mtps: m.pre_mtps,
            fault_mtps: m.fault_mtps,
            post_mtps: m.post_mtps,
            recovery_secs: m.recovery_secs,
            run: m.run,
        }
    });

    // Group the flat cell list back into (system, kind) curves; run_grid
    // returns results in input order, which is exactly the nested
    // campaign.cells() order.
    let mut curves: Vec<DegradationCurve> = Vec::new();
    for cell in cells {
        match curves.last_mut() {
            Some(c) if c.system == cell.system && c.kind == cell.kind => c.cells.push(cell),
            _ => curves.push(DegradationCurve {
                system: cell.system,
                kind: cell.kind,
                cells: vec![cell],
            }),
        }
    }
    SweepResult {
        systems: campaign.systems.clone(),
        kinds: campaign.kinds.clone(),
        curves,
    }
}

/// Runs the full classic campaign: the f-tolerant crash/heal arm and the
/// beyond-f halt arm for all seven systems, the loss-burst arm for Fabric
/// and Quorum, and the Byzantine-window arm (≤ f and f + 1 flagged
/// validators) for the BFT systems. All cells are independent and run on
/// the grid executor (`cfg.jobs` workers); each cell's seed is derived
/// from its arm and system — never from loop order — so any worker count
/// produces byte-identical reports.
pub fn chaos(cfg: &ExperimentConfig) -> ChaosResult {
    let tl = anchors(cfg);
    let seeds = SeedDeriver::new(cfg.seed);

    struct Arm {
        kind: SystemKind,
        arm: &'static str,
        faults: String,
        timeline: crate::scenario::Timeline,
        healed: bool,
        seed: u64,
    }
    let mut arms: Vec<Arm> = Vec::new();
    for kind in SystemKind::ALL {
        let d = fault_domain(kind);
        let nodes: Vec<NodeId> = (0..d.f_tolerant).map(NodeId).collect();
        arms.push(Arm {
            kind,
            arm: "crash-f",
            faults: d.describe(d.f_tolerant),
            timeline: scenario(kind, tl)
                .at(tl.crash_at)
                .crash_until(&nodes, tl.heal_at)
                .build(),
            healed: true,
            seed: seeds.seed_parts(&["chaos-tolerant", kind.label()]),
        });
    }
    for kind in SystemKind::ALL {
        let d = fault_domain(kind);
        let nodes: Vec<NodeId> = (0..d.beyond_f).map(NodeId).collect();
        arms.push(Arm {
            kind,
            arm: "crash-beyond-f",
            faults: d.describe(d.beyond_f),
            // No retries: a retry storm against a halted system only
            // reclassifies losses; the halt must show in raw commits.
            timeline: scenario(kind, tl)
                .policy(RetryPolicy::disabled())
                .at(tl.crash_at)
                .crash(&nodes)
                .build(),
            healed: false,
            seed: seeds.seed_parts(&["chaos-halt", kind.label()]),
        });
    }
    for kind in [SystemKind::Fabric, SystemKind::Quorum] {
        let window = SimDuration::from_secs_f64(tl.windows.send.as_secs_f64() / 5.0);
        arms.push(Arm {
            kind,
            arm: "loss-burst",
            faults: "5% loss".to_string(),
            timeline: scenario(kind, tl)
                .at(tl.crash_at)
                .loss_burst(0.05, window)
                .build(),
            healed: true,
            seed: seeds.seed_parts(&["chaos-burst", kind.label()]),
        });
    }
    for kind in SystemKind::ALL {
        let Some(d) = byzantine_domain(kind) else {
            continue;
        };
        for (arm, count) in [("byz-f", d.f_tolerant), ("byz-beyond-f", d.beyond_f())] {
            let nodes: Vec<NodeId> = (0..count).map(NodeId).collect();
            arms.push(Arm {
                kind,
                arm,
                faults: d.describe(count),
                timeline: scenario(kind, tl)
                    .at(tl.crash_at)
                    .byzantine(&nodes, tl.heal_at)
                    .build(),
                healed: false,
                seed: seeds.seed_parts(&["chaos-byz", arm, kind.label()]),
            });
        }
    }

    let mut cells = crate::exec::run_grid(&arms, cfg.jobs, |_, a| {
        let m = measure(a.kind, tl, &a.timeline, a.healed, a.seed);
        ChaosCell {
            system: a.kind,
            arm: a.arm,
            faults: a.faults.clone(),
            rate: m.rate,
            pre_mtps: m.pre_mtps,
            fault_mtps: m.fault_mtps,
            post_mtps: m.post_mtps,
            recovery_secs: m.recovery_secs,
            run: m.run,
        }
    });
    let mut bursts = cells.split_off(2 * SystemKind::ALL.len());
    let byzantine = bursts.split_off(2);
    let halt = cells.split_off(SystemKind::ALL.len());
    ChaosResult {
        tolerant: cells,
        halt,
        bursts,
        byzantine,
    }
}

/// The measured-metrics JSON tail shared by classic arms and sweep cells.
/// Field names and order are pinned by the golden files — append, never
/// reorder.
fn metrics_json(
    rate: f64,
    pre: f64,
    fault: f64,
    post: f64,
    recovery: Option<f64>,
    run: &ChaosRun,
) -> Vec<(String, Json)> {
    let a = &run.accounting;
    vec![
        ("rate".into(), Json::Num(rate)),
        ("pre_mtps".into(), Json::Num(pre)),
        ("fault_mtps".into(), Json::Num(fault)),
        ("post_mtps".into(), Json::Num(post)),
        (
            "recovery_secs".into(),
            recovery.map_or(Json::Null, Json::Num),
        ),
        ("mfls".into(), Json::Num(run.mfls)),
        ("live".into(), Json::Bool(run.live)),
        ("scheduled".into(), Json::Num(a.scheduled as f64)),
        ("confirmed".into(), Json::Num(a.confirmed as f64)),
        ("rejected".into(), Json::Num(a.rejected as f64)),
        ("timed_out".into(), Json::Num(a.timed_out as f64)),
        ("lost_in_fault".into(), Json::Num(a.lost_in_fault as f64)),
        ("retries".into(), Json::Num(a.retries as f64)),
        ("delivery_ratio".into(), Json::Num(a.delivery_ratio())),
        (
            // `null` for CFT systems: safety invariants not applicable.
            "byzantine".into(),
            match &run.safety {
                None => Json::Null,
                Some(s) => Json::Obj(vec![
                    (
                        "conflicting_commits".into(),
                        Json::Num(s.violations.conflicting_commits as f64),
                    ),
                    (
                        "conflicting_certificates".into(),
                        Json::Num(s.violations.conflicting_certificates as f64),
                    ),
                    (
                        "undersized_quorums".into(),
                        Json::Num(s.violations.undersized_quorums as f64),
                    ),
                    (
                        "equivocating_proposals".into(),
                        Json::Num(s.observed.equivocating_proposals as f64),
                    ),
                    (
                        "double_votes".into(),
                        Json::Num(s.observed.double_votes as f64),
                    ),
                    (
                        "byzantine_nodes".into(),
                        Json::Num(s.observed.byzantine_nodes as f64),
                    ),
                ]),
            },
        ),
    ]
}

/// The shared numeric columns of a report row (everything after the
/// cell-identity columns): pre/fault/post MTPS, recovery, delivery, the
/// NoT split, and the safety verdict.
fn metrics_row(pre: f64, fault: f64, post: f64, recovery: &str, run: &ChaosRun) -> String {
    let (viol, byz) = match &run.safety {
        Some(s) => (
            s.violations.total().to_string(),
            s.observed.byzantine_nodes.to_string(),
        ),
        None => ("n/a".to_string(), "n/a".to_string()),
    };
    let a = &run.accounting;
    format!(
        "{pre:>9.1} {fault:>9.1} {post:>9.1} {recovery:>8} {:>6.3} {:>5} {:>5} {:>5} {:>5} {viol:>5} {byz:>5}",
        a.delivery_ratio(),
        a.rejected,
        a.timed_out,
        a.lost_in_fault,
        a.retries,
    )
}

/// The shared numeric header matching [`metrics_row`].
fn metrics_header() -> String {
    format!(
        "{:>9} {:>9} {:>9} {:>8} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "pre", "fault", "post", "recovery", "deliv", "rej", "tout", "lost", "retry", "viol", "byz",
    )
}

impl ChaosCell {
    fn render_row(&self) -> String {
        let rec = match self.recovery_secs {
            Some(s) => format!("{s:.1} s"),
            // Halt and Byzantine arms are not heal-and-recover experiments.
            None if self.arm == "crash-beyond-f" || self.arm.starts_with("byz") => "—".to_string(),
            None => "never".to_string(),
        };
        format!(
            "{:<18} {:<15} {:<16} {}",
            self.system.label(),
            self.arm,
            self.faults,
            metrics_row(
                self.pre_mtps,
                self.fault_mtps,
                self.post_mtps,
                &rec,
                &self.run
            ),
        )
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("arm".into(), Json::Str(self.arm.into())),
            ("faults".into(), Json::Str(self.faults.clone())),
        ];
        fields.extend(metrics_json(
            self.rate,
            self.pre_mtps,
            self.fault_mtps,
            self.post_mtps,
            self.recovery_secs,
            &self.run,
        ));
        Json::Obj(fields)
    }
}

impl SweepCell {
    fn render_row(&self) -> String {
        let rec = match self.recovery_secs {
            Some(s) => format!("{s:.1} s"),
            None => "never".to_string(),
        };
        format!(
            "{:>3} {:<16} {}",
            self.severity,
            self.faults,
            metrics_row(
                self.pre_mtps,
                self.fault_mtps,
                self.post_mtps,
                &rec,
                &self.run
            ),
        )
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("fault".into(), Json::Str(self.kind.label().into())),
            ("severity".into(), Json::Num(f64::from(self.severity))),
            ("faults".into(), Json::Str(self.faults.clone())),
        ];
        fields.extend(metrics_json(
            self.rate,
            self.pre_mtps,
            self.fault_mtps,
            self.post_mtps,
            self.recovery_secs,
            &self.run,
        ));
        Json::Obj(fields)
    }
}

impl ChaosResult {
    /// All cells in report order.
    pub fn cells(&self) -> impl Iterator<Item = &ChaosCell> {
        self.tolerant
            .iter()
            .chain(&self.halt)
            .chain(&self.bursts)
            .chain(&self.byzantine)
    }
}

impl Report for ChaosResult {
    /// Renders the campaign as a fixed-width text report. Deterministic:
    /// the same config yields byte-identical output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<15} {:<16} {}\n",
            "system",
            "arm",
            "faults",
            metrics_header(),
        ));
        out.push_str(&"-".repeat(132));
        out.push('\n');
        for c in self.cells() {
            out.push_str(&c.render_row());
            out.push('\n');
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    fn to_json(&self) -> String {
        Json::Arr(self.cells().map(ChaosCell::to_json).collect()).to_pretty()
    }
}

impl SweepResult {
    /// The curve of `(system, kind)`, if the campaign swept it.
    pub fn curve(&self, system: SystemKind, kind: FaultKind) -> Option<&DegradationCurve> {
        self.curves
            .iter()
            .find(|c| c.system == system && c.kind == kind)
    }

    /// The heat-map cell of `(system, kind)`: the curve cell at the
    /// highest severity the protocol *tolerates* — crash at f-tolerant,
    /// Byzantine at f, loss at the largest swept rate. `None` when the
    /// axis was not swept or not admitted.
    pub fn heatmap_cell(&self, system: SystemKind, kind: FaultKind) -> Option<&SweepCell> {
        let curve = self.curve(system, kind)?;
        match kind {
            FaultKind::Crash => curve.at(fault_domain(system).f_tolerant),
            FaultKind::Byzantine => curve.at(byzantine_domain(system)?.f_tolerant),
            FaultKind::Loss => curve.cells.last(),
        }
    }

    /// Renders the system × fault-kind heat map: recovery seconds and
    /// delivery ratio at the highest tolerated severity per cell, "n/a"
    /// where the axis does not apply (Byzantine counts on CFT systems).
    pub fn render_heatmap(&self) -> String {
        let col_labels: Vec<&str> = self.kinds.iter().map(|k| k.label()).collect();
        let row_labels: Vec<&str> = self.systems.iter().map(|s| s.label()).collect();
        let cells: Vec<Vec<Vec<String>>> = self
            .systems
            .iter()
            .map(|&s| {
                self.kinds
                    .iter()
                    .map(|&k| match self.heatmap_cell(s, k) {
                        Some(cell) => {
                            let rec = match cell.recovery_secs {
                                Some(r) => format!("rec={r:.1} s"),
                                None => "rec=never".to_string(),
                            };
                            vec![
                                rec,
                                format!("deliv={:.3}", cell.run.accounting.delivery_ratio()),
                                format!("@ {}", cell.faults),
                            ]
                        }
                        None => vec!["n/a".to_string()],
                    })
                    .collect()
            })
            .collect();
        report::grid_heatmap(&row_labels, &col_labels, &cells)
    }
}

impl Report for SweepResult {
    /// Renders the degradation curves followed by the heat map.
    /// Deterministic: the same campaign and config yield byte-identical
    /// output.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Degradation curves — pre/fault/post MTPS vs fault severity\n\n");
        for curve in &self.curves {
            out.push_str(&format!("== {} × {}\n", curve.system.label(), curve.kind));
            out.push_str(&format!(
                "{:>3} {:<16} {}\n",
                "sev",
                "faults",
                metrics_header()
            ));
            for cell in &curve.cells {
                out.push_str(&cell.render_row());
                out.push('\n');
            }
            out.push('\n');
        }
        out.push_str(
            "Heat map — recovery and delivery at the highest tolerated severity\n\
             (crash: f-tolerant crashes; byzantine: f flagged; loss: largest swept rate)\n\n",
        );
        out.push_str(&self.render_heatmap());
        out
    }

    /// The sweep as pretty-printed JSON: the curves (every cell with the
    /// full metric set) plus the heat map (recovery and delivery at the
    /// tolerated severity per system × kind).
    fn to_json(&self) -> String {
        let curves = self
            .curves
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("system".into(), Json::Str(c.system.label().into())),
                    ("fault".into(), Json::Str(c.kind.label().into())),
                    (
                        "cells".into(),
                        Json::Arr(c.cells.iter().map(SweepCell::to_json).collect()),
                    ),
                ])
            })
            .collect();
        let mut heat = Vec::new();
        for &s in &self.systems {
            for &k in &self.kinds {
                let Some(cell) = self.heatmap_cell(s, k) else {
                    continue;
                };
                heat.push(Json::Obj(vec![
                    ("system".into(), Json::Str(s.label().into())),
                    ("fault".into(), Json::Str(k.label().into())),
                    ("severity".into(), Json::Num(f64::from(cell.severity))),
                    ("faults".into(), Json::Str(cell.faults.clone())),
                    (
                        "recovery_secs".into(),
                        cell.recovery_secs.map_or(Json::Null, Json::Num),
                    ),
                    (
                        "delivery_ratio".into(),
                        Json::Num(cell.run.accounting.delivery_ratio()),
                    ),
                ]));
            }
        }
        Json::Obj(vec![
            ("curves".into(), Json::Arr(curves)),
            ("heatmap".into(), Json::Arr(heat)),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.08, // 24 s send window
            repetitions: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn fault_domains_are_internally_consistent() {
        for kind in SystemKind::ALL {
            let d = fault_domain(kind);
            assert!(d.f_tolerant < d.beyond_f, "{kind}: tolerant < beyond");
            assert!(d.beyond_f <= d.total, "{kind}: beyond ≤ total");
            assert!(d.describe(d.f_tolerant).contains(d.role_label));
            if let Some(b) = byzantine_domain(kind) {
                assert_eq!(b.beyond_f(), b.f_tolerant + 1);
                assert!(b.total > 3 * b.f_tolerant, "{kind}: n ≥ 3f + 1");
            }
        }
    }

    #[test]
    fn campaign_expands_admitted_severities_only() {
        let full = FaultCampaign::full();
        assert_eq!(full.systems().len(), 7);
        assert_eq!(full.kinds().len(), 3);
        // Crash curves span 0..=beyond-f for every system.
        for kind in SystemKind::ALL {
            let sev = FaultCampaign::severities(kind, FaultKind::Crash);
            assert_eq!(sev.first(), Some(&0), "{kind} starts fault-free");
            assert_eq!(sev.last(), Some(&fault_domain(kind).beyond_f));
        }
        // Byzantine axes exist only where a vote quorum exists.
        assert!(FaultCampaign::severities(SystemKind::Fabric, FaultKind::Byzantine).is_empty());
        assert_eq!(
            FaultCampaign::severities(SystemKind::Diem, FaultKind::Byzantine),
            vec![0, 1, 2]
        );
        // Filtering canonicalizes order and drops the rest.
        let f = FaultCampaign::full()
            .with_systems(&[SystemKind::Quorum, SystemKind::Fabric])
            .with_kinds(&[FaultKind::Byzantine, FaultKind::Crash]);
        assert_eq!(f.systems(), &[SystemKind::Fabric, SystemKind::Quorum]);
        assert_eq!(f.kinds(), &[FaultKind::Crash, FaultKind::Byzantine]);
        // Fabric: crash 0..=2 (no byz axis); Quorum: crash 0..=2 + byz 0..=2.
        assert_eq!(f.cells().len(), 3 + 3 + 3);
    }

    #[test]
    fn crash_sweep_degrades_and_recovers() {
        let campaign = FaultCampaign::full()
            .with_systems(&[SystemKind::Fabric])
            .with_kinds(&[FaultKind::Crash]);
        let r = chaos_sweep(&quick(), &campaign);
        assert_eq!(r.curves.len(), 1);
        let curve = r.curve(SystemKind::Fabric, FaultKind::Crash).unwrap();
        let d = fault_domain(SystemKind::Fabric);
        assert_eq!(curve.cells.len(), (d.beyond_f + 1) as usize);
        // Severity 0: a fault-free baseline with full delivery and
        // immediate "recovery".
        let base = &curve.cells[0];
        assert_eq!(base.severity, 0);
        assert!(
            base.run.accounting.delivery_ratio() >= 0.999,
            "{:?}",
            base.run.accounting
        );
        assert_eq!(base.recovery_secs, Some(0.0));
        // Beyond f: the fault window collapses, the heal restores commits.
        let worst = curve.at(d.beyond_f).unwrap();
        assert!(
            worst.fault_mtps < base.fault_mtps * 0.5,
            "beyond-f fault window must collapse: {} vs {}",
            worst.fault_mtps,
            base.fault_mtps
        );
        assert!(worst.post_mtps > 0.0, "commits resume after the heal");
        // Delivery degrades monotonically in this curve's extremes.
        assert!(worst.run.accounting.delivery_ratio() <= base.run.accounting.delivery_ratio());
    }

    #[test]
    fn loss_sweep_keeps_delivery_with_retries() {
        let campaign = FaultCampaign::full()
            .with_systems(&[SystemKind::Quorum])
            .with_kinds(&[FaultKind::Loss]);
        let r = chaos_sweep(&quick(), &campaign);
        let curve = r.curve(SystemKind::Quorum, FaultKind::Loss).unwrap();
        assert_eq!(curve.cells.len(), LOSS_STEPS.len());
        let base = curve.at(0).unwrap();
        assert_eq!(base.run.accounting.retries, 0, "no loss, no retries");
        for cell in &curve.cells[1..] {
            assert!(
                cell.run.accounting.delivery_ratio() >= 0.99,
                "retry client must hold delivery at {}%: {:?}",
                cell.severity,
                cell.run.accounting
            );
        }
        let worst = curve.cells.last().unwrap();
        assert!(worst.run.accounting.retries > 0, "10% loss must retry");
    }

    #[test]
    fn byzantine_sweep_breaks_safety_only_beyond_f() {
        let campaign = FaultCampaign::full()
            .with_systems(&[SystemKind::Sawtooth])
            .with_kinds(&[FaultKind::Byzantine]);
        let r = chaos_sweep(&quick(), &campaign);
        let curve = r.curve(SystemKind::Sawtooth, FaultKind::Byzantine).unwrap();
        let d = byzantine_domain(SystemKind::Sawtooth).unwrap();
        assert_eq!(curve.cells.len(), (d.beyond_f() + 1) as usize);
        for cell in &curve.cells {
            let s = cell.run.safety.expect("BFT systems carry a monitor");
            if cell.severity <= d.f_tolerant {
                assert!(
                    s.violations.is_clean(),
                    "severity {} must hold safety: {:?}",
                    cell.severity,
                    s.violations
                );
            } else {
                assert!(
                    s.violations.total() > 0,
                    "severity {} must lose safety: {s:?}",
                    cell.severity
                );
            }
        }
    }

    #[test]
    fn sweep_heatmap_pins_tolerated_severities() {
        let campaign = FaultCampaign::full().with_systems(&[SystemKind::Fabric]);
        let r = chaos_sweep(&quick(), &campaign);
        // Crash pins f-tolerant, loss pins the largest swept rate.
        assert_eq!(
            r.heatmap_cell(SystemKind::Fabric, FaultKind::Crash)
                .unwrap()
                .severity,
            fault_domain(SystemKind::Fabric).f_tolerant
        );
        assert_eq!(
            r.heatmap_cell(SystemKind::Fabric, FaultKind::Loss)
                .unwrap()
                .severity,
            *LOSS_STEPS.last().unwrap()
        );
        // No Byzantine axis on a CFT system: the heat map says n/a.
        assert!(r
            .heatmap_cell(SystemKind::Fabric, FaultKind::Byzantine)
            .is_none());
        assert!(r.render_heatmap().contains("n/a"));
        assert!(r.render().contains("Heat map"));
    }

    #[test]
    fn sweep_subset_is_seed_independent() {
        // Filtering the campaign to a subset of systems must not change
        // any remaining cell's numbers: seeds are content-addressed.
        let crash_only = |systems: &[SystemKind]| {
            FaultCampaign::full()
                .with_systems(systems)
                .with_kinds(&[FaultKind::Crash])
        };
        let both = chaos_sweep(
            &quick(),
            &crash_only(&[SystemKind::Fabric, SystemKind::Quorum]),
        );
        let alone = chaos_sweep(&quick(), &crash_only(&[SystemKind::Quorum]));
        let from_both = both.curve(SystemKind::Quorum, FaultKind::Crash).unwrap();
        let from_alone = alone.curve(SystemKind::Quorum, FaultKind::Crash).unwrap();
        assert_eq!(from_both.cells.len(), from_alone.cells.len());
        for (a, b) in from_both.cells.iter().zip(&from_alone.cells) {
            assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        }
    }

    #[test]
    fn tolerant_crashes_recover_on_every_system() {
        let r = chaos(&quick());
        assert_eq!(r.tolerant.len(), 7);
        for c in &r.tolerant {
            assert!(c.run.live, "{} must stay live under f crashes", c.system);
            assert!(c.pre_mtps > 0.0, "{} pre-fault throughput", c.system);
            assert!(c.post_mtps > 0.0, "{} post-heal throughput", c.system);
            assert!(
                c.recovery_secs.is_some(),
                "{} must recover in finite virtual time: {:?}",
                c.system,
                c.run.buckets
            );
        }
    }

    #[test]
    fn beyond_f_crashes_halt_commits() {
        let r = chaos(&quick());
        for c in &r.halt {
            // In-flight work (accepted blocks, flows already past the
            // crashed stage) may still land for a few seconds; after that
            // drain grace the system must be dead quiet.
            let after = SimTime::from_secs(5 + quick_crash_secs());
            let tail = c.run.window_mtps(after, SimTime::from_secs(10_000));
            assert_eq!(
                tail, 0.0,
                "{} must halt beyond f: {:?}",
                c.system, c.run.buckets
            );
            assert!(
                c.run.accounting.confirmed < c.run.accounting.scheduled,
                "{} cannot confirm everything while halted",
                c.system
            );
        }
    }

    fn quick_crash_secs() -> u64 {
        let tl = anchors(&quick());
        tl.crash_at.as_secs_f64() as u64
    }

    #[test]
    fn loss_burst_delivery_stays_high_with_retries() {
        let r = chaos(&quick());
        assert_eq!(r.bursts.len(), 2);
        for c in &r.bursts {
            assert!(c.run.accounting.retries > 0, "{} retried", c.system);
            assert!(
                c.run.accounting.delivery_ratio() >= 0.99,
                "{} delivery under 5% burst: {:?}",
                c.system,
                c.run.accounting
            );
        }
    }

    #[test]
    fn byzantine_arms_hold_safety_at_f_and_lose_it_beyond() {
        let r = chaos(&quick());
        assert_eq!(r.byzantine.len(), 6, "two arms per BFT system");
        for c in &r.byzantine {
            let s = c.run.safety.expect("BFT systems carry a safety monitor");
            assert!(
                s.observed.byzantine_nodes > 0,
                "{} {}: the attack must actually run",
                c.system,
                c.arm
            );
            match c.arm {
                "byz-f" => assert!(
                    s.violations.is_clean(),
                    "{} must hold safety at ≤ f: {:?}",
                    c.system,
                    s.violations
                ),
                "byz-beyond-f" => assert!(
                    s.violations.total() > 0,
                    "{} must lose safety at f + 1: {s:?}",
                    c.system
                ),
                other => panic!("unexpected arm {other}"),
            }
        }
        // CFT systems have no Byzantine quorum: safety is not applicable.
        for c in r.tolerant.iter().filter(|c| {
            matches!(
                c.system,
                SystemKind::Fabric
                    | SystemKind::Bitshares
                    | SystemKind::CordaOs
                    | SystemKind::CordaEnterprise
            )
        }) {
            assert!(c.run.safety.is_none(), "{} is CFT", c.system);
        }
    }

    #[test]
    fn chaos_report_is_deterministic() {
        let a = chaos(&quick());
        let b = chaos(&quick());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }
}
