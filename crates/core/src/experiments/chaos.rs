//! Deterministic fault-injection campaigns ("chaos") over all seven
//! systems.
//!
//! Three arms per the robustness study:
//!
//! 1. **f-tolerant crash window** — crash as many consensus-critical nodes
//!    as the protocol tolerates, heal mid-run, and report throughput
//!    before / during / after the fault plus the virtual-time recovery
//!    (heal → sustained pre-fault throughput).
//! 2. **beyond-f crash** — crash one node more than the protocol
//!    tolerates (all of them for BitShares' witness set and Corda's notary
//!    pool) and verify commits halt for the rest of the run.
//! 3. **loss burst** — a 5 % client-ingress/consensus loss window against
//!    Fabric and Quorum, with the retry/backoff client; delivery must stay
//!    ≥ 99 %.
//! 4. **Byzantine window** — flag validators to equivocate and double-vote
//!    during a mid-run window, against the three BFT systems (Quorum's
//!    IBFT, Sawtooth's PBFT, Diem's DiemBFT). At ≤ f flagged validators the
//!    safety monitor must stay clean; at f + 1 it counts the broken
//!    invariants. CFT systems (Raft, DPoS, notaries) have no Byzantine
//!    quorum and report "n/a".
//!
//! Every number is a pure function of the root seed: the same
//! [`ExperimentConfig`] renders byte-identical reports.

use super::ExperimentConfig;
use crate::chaos::{run_chaos, ChaosRun, RetryPolicy};
use crate::client::Windows;
use crate::json::Json;
use crate::params::{build_system, SystemKind, SystemSetup};
use crate::runner::BenchmarkSpec;
use coconut_simnet::{FaultEvent, FaultPlan};
use coconut_types::{NodeId, PayloadKind, SeedDeriver, SimDuration, SimTime};

/// The crashable consensus role of each system's baseline deployment:
/// `(plural label, total, f_tolerant, beyond_f)` — how many of those nodes the
/// tolerant arm crashes and how many the halt arm crashes.
pub fn fault_domain(kind: SystemKind) -> (&'static str, u32, u32, u32) {
    match kind {
        // The notary pool fails over shard-by-shard; finality halts only
        // once every notary is down.
        SystemKind::CordaOs | SystemKind::CordaEnterprise => ("notaries", 4, 3, 4),
        // DPoS skips missed slots; block production stops only with no
        // witness left.
        SystemKind::Bitshares => ("witnesses", 3, 1, 3),
        // Raft needs a majority of the 3 orderers.
        SystemKind::Fabric => ("orderers", 3, 1, 2),
        // IBFT / PBFT / DiemBFT: n = 4 → f = 1, halt at 2.
        SystemKind::Quorum | SystemKind::Sawtooth | SystemKind::Diem => ("validators", 4, 1, 2),
    }
}

/// The Byzantine fault domain of each system: `(total validators, f)` for
/// the systems whose consensus has a Byzantine quorum, `None` for the
/// crash-fault-tolerant rest (Raft ordering, DPoS slots, Corda notaries) —
/// equivocation and double votes have no meaning without a vote quorum.
pub fn byzantine_domain(kind: SystemKind) -> Option<(u32, u32)> {
    match kind {
        SystemKind::Quorum | SystemKind::Sawtooth | SystemKind::Diem => Some((4, 1)),
        _ => None,
    }
}

/// One system × one fault arm.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// System under test.
    pub system: SystemKind,
    /// Arm label ("crash-f", "crash-beyond-f", "loss-burst", "byz-f",
    /// "byz-beyond-f").
    pub arm: &'static str,
    /// Fault description, e.g. "1/3 orderers" or "2/4 equivocating".
    pub faults: String,
    /// Aggregate rate limiter used (tx/s).
    pub rate: f64,
    /// MTPS over the pre-fault window.
    pub pre_mtps: f64,
    /// MTPS while the fault is active.
    pub fault_mtps: f64,
    /// MTPS after the heal.
    pub post_mtps: f64,
    /// Virtual seconds from heal until throughput sustains ≥ 70 % of the
    /// pre-fault mean (`None` — never recovered, or halt arm).
    pub recovery_secs: Option<f64>,
    /// The full run this cell summarizes.
    pub run: ChaosRun,
}

/// The complete chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// f-tolerant crash/heal arm, one cell per system.
    pub tolerant: Vec<ChaosCell>,
    /// beyond-f crash arm (no heal), one cell per system.
    pub halt: Vec<ChaosCell>,
    /// Loss-burst arm with the retry client (Fabric, Quorum).
    pub bursts: Vec<ChaosCell>,
    /// Byzantine window arm, two cells (≤ f and f + 1 flagged validators)
    /// per BFT system (Quorum, Sawtooth, Diem).
    pub byzantine: Vec<ChaosCell>,
}

/// Virtual-time anchors of the campaign, derived from the config's scale.
#[derive(Debug, Clone, Copy)]
struct Timeline {
    windows: Windows,
    crash_at: SimTime,
    heal_at: SimTime,
}

fn timeline(cfg: &ExperimentConfig) -> Timeline {
    // At least 20 virtual seconds of sending so every phase (pre / fault /
    // post) spans several 1 s buckets, plus a 10 s listen margin so the
    // send-window tail and time-outed retries can still confirm.
    let send_secs = ((300.0 * cfg.scale).round() as u64).max(20);
    let windows = Windows {
        send: SimDuration::from_secs(send_secs),
        listen: SimDuration::from_secs(send_secs + 10),
    };
    Timeline {
        windows,
        crash_at: SimTime::from_secs(send_secs / 4),
        heal_at: SimTime::from_secs(send_secs / 2),
    }
}

fn spec(kind: SystemKind, windows: Windows) -> BenchmarkSpec {
    // A write workload for Corda (DoNothing has no states and is answered
    // locally, so it would bypass the notary under test); DoNothing for
    // the block-based systems.
    let payload = match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => PayloadKind::KeyValueSet,
        _ => PayloadKind::DoNothing,
    };
    // Well below saturation, so throughput changes are attributable to the
    // fault — below Corda OS's ~5 tx/s KeyValue-Set ceiling (Table 7; the
    // flow pipeline resolves at submit time, so a saturated backlog would
    // smear commits far past a crash), and below the rate where a 4 s IBFT
    // round change would push Quorum's pending pool over its §5.5 stall
    // threshold, which would conflate the modelled liveness anomaly with
    // crash tolerance.
    let rate = match kind {
        SystemKind::CordaOs | SystemKind::CordaEnterprise => 4.0,
        _ => 50.0,
    };
    BenchmarkSpec::new(kind, payload)
        .rate(rate)
        .windows(windows)
        .repetitions(1)
}

#[allow(clippy::too_many_arguments)]
fn cell(
    kind: SystemKind,
    arm: &'static str,
    faults: String,
    tl: Timeline,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    healed: bool,
    seed: u64,
) -> ChaosCell {
    let spec = spec(kind, tl.windows);
    let mut sys = build_system(kind, &SystemSetup::default(), seed);
    let run = run_chaos(sys.as_mut(), &spec, plan, policy, seed);
    let listen_end = SimTime::ZERO + tl.windows.listen;
    let pre_mtps = run.window_mtps(SimTime::ZERO, tl.crash_at);
    let fault_mtps = run.window_mtps(tl.crash_at, tl.heal_at);
    let post_mtps = run.window_mtps(tl.heal_at, listen_end);
    let recovery_secs = if healed {
        run.recovery_secs(tl.crash_at, tl.heal_at, 0.7)
    } else {
        None
    };
    ChaosCell {
        system: kind,
        arm,
        faults,
        rate: spec.rate,
        pre_mtps,
        fault_mtps,
        post_mtps,
        recovery_secs,
        run,
    }
}

/// Runs the full campaign: the f-tolerant crash/heal arm and the beyond-f
/// halt arm for all seven systems, the loss-burst arm for Fabric and
/// Quorum, and the Byzantine-window arm (≤ f and f + 1 flagged validators)
/// for the BFT systems. All cells are independent and run on the grid executor
/// (`cfg.jobs` workers); each cell's seed is derived from its arm and
/// system — never from loop order — so any worker count produces
/// byte-identical reports.
pub fn chaos(cfg: &ExperimentConfig) -> ChaosResult {
    let tl = timeline(cfg);
    let seeds = SeedDeriver::new(cfg.seed);

    struct Arm {
        kind: SystemKind,
        arm: &'static str,
        faults: String,
        plan: FaultPlan,
        policy: RetryPolicy,
        healed: bool,
        seed: u64,
    }
    let mut arms: Vec<Arm> = Vec::new();
    for kind in SystemKind::ALL {
        let (role, total, f_crash, _) = fault_domain(kind);
        let nodes: Vec<NodeId> = (0..f_crash).map(NodeId).collect();
        arms.push(Arm {
            kind,
            arm: "crash-f",
            faults: format!("{f_crash}/{total} {role}"),
            plan: FaultPlan::new().crash_window(&nodes, tl.crash_at, tl.heal_at),
            policy: RetryPolicy::chaos_default(),
            healed: true,
            seed: seeds.seed_parts(&["chaos-tolerant", kind.label()]),
        });
    }
    for kind in SystemKind::ALL {
        let (role, total, _, beyond) = fault_domain(kind);
        let mut plan = FaultPlan::new();
        for n in (0..beyond).map(NodeId) {
            plan = plan.at(tl.crash_at, FaultEvent::CrashNode(n));
        }
        arms.push(Arm {
            kind,
            arm: "crash-beyond-f",
            faults: format!("{beyond}/{total} {role}"),
            plan,
            // No retries: a retry storm against a halted system only
            // reclassifies losses; the halt must show in raw commits.
            policy: RetryPolicy::disabled(),
            healed: false,
            seed: seeds.seed_parts(&["chaos-halt", kind.label()]),
        });
    }
    for kind in [SystemKind::Fabric, SystemKind::Quorum] {
        let window = SimDuration::from_secs_f64(tl.windows.send.as_secs_f64() / 5.0);
        arms.push(Arm {
            kind,
            arm: "loss-burst",
            faults: "5% loss".to_string(),
            plan: FaultPlan::new().at(tl.crash_at, FaultEvent::LossBurst { p: 0.05, window }),
            policy: RetryPolicy::chaos_default(),
            healed: true,
            seed: seeds.seed_parts(&["chaos-burst", kind.label()]),
        });
    }
    for kind in SystemKind::ALL {
        let Some((total, f)) = byzantine_domain(kind) else {
            continue;
        };
        for (arm, count) in [("byz-f", f), ("byz-beyond-f", f + 1)] {
            let nodes: Vec<NodeId> = (0..count).map(NodeId).collect();
            arms.push(Arm {
                kind,
                arm,
                faults: format!("{count}/{total} equivocating"),
                plan: FaultPlan::new().byzantine_window(&nodes, tl.crash_at, tl.heal_at),
                policy: RetryPolicy::chaos_default(),
                healed: false,
                seed: seeds.seed_parts(&["chaos-byz", arm, kind.label()]),
            });
        }
    }

    let mut cells = crate::exec::run_grid(&arms, cfg.jobs, |_, a| {
        cell(
            a.kind,
            a.arm,
            a.faults.clone(),
            tl,
            &a.plan,
            &a.policy,
            a.healed,
            a.seed,
        )
    });
    let mut bursts = cells.split_off(2 * SystemKind::ALL.len());
    let byzantine = bursts.split_off(2);
    let halt = cells.split_off(SystemKind::ALL.len());
    ChaosResult {
        tolerant: cells,
        halt,
        bursts,
        byzantine,
    }
}

impl ChaosCell {
    fn render_row(&self) -> String {
        let rec = match self.recovery_secs {
            Some(s) => format!("{s:.1} s"),
            // Halt and Byzantine arms are not heal-and-recover experiments.
            None if self.arm == "crash-beyond-f" || self.arm.starts_with("byz") => "—".to_string(),
            None => "never".to_string(),
        };
        let (viol, byz) = match &self.run.safety {
            Some(s) => (
                s.violations.total().to_string(),
                s.observed.byzantine_nodes.to_string(),
            ),
            None => ("n/a".to_string(), "n/a".to_string()),
        };
        let a = &self.run.accounting;
        format!(
            "{:<18} {:<15} {:<16} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>6.3} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            self.system.label(),
            self.arm,
            self.faults,
            self.pre_mtps,
            self.fault_mtps,
            self.post_mtps,
            rec,
            a.delivery_ratio(),
            a.rejected,
            a.timed_out,
            a.lost_in_fault,
            a.retries,
            viol,
            byz,
        )
    }

    fn to_json(&self) -> Json {
        let a = &self.run.accounting;
        Json::Obj(vec![
            ("system".into(), Json::Str(self.system.label().into())),
            ("arm".into(), Json::Str(self.arm.into())),
            ("faults".into(), Json::Str(self.faults.clone())),
            ("rate".into(), Json::Num(self.rate)),
            ("pre_mtps".into(), Json::Num(self.pre_mtps)),
            ("fault_mtps".into(), Json::Num(self.fault_mtps)),
            ("post_mtps".into(), Json::Num(self.post_mtps)),
            (
                "recovery_secs".into(),
                self.recovery_secs.map_or(Json::Null, Json::Num),
            ),
            ("mfls".into(), Json::Num(self.run.mfls)),
            ("live".into(), Json::Bool(self.run.live)),
            ("scheduled".into(), Json::Num(a.scheduled as f64)),
            ("confirmed".into(), Json::Num(a.confirmed as f64)),
            ("rejected".into(), Json::Num(a.rejected as f64)),
            ("timed_out".into(), Json::Num(a.timed_out as f64)),
            ("lost_in_fault".into(), Json::Num(a.lost_in_fault as f64)),
            ("retries".into(), Json::Num(a.retries as f64)),
            ("delivery_ratio".into(), Json::Num(a.delivery_ratio())),
            (
                // `null` for CFT systems: safety invariants not applicable.
                "byzantine".into(),
                match &self.run.safety {
                    None => Json::Null,
                    Some(s) => Json::Obj(vec![
                        (
                            "conflicting_commits".into(),
                            Json::Num(s.violations.conflicting_commits as f64),
                        ),
                        (
                            "conflicting_certificates".into(),
                            Json::Num(s.violations.conflicting_certificates as f64),
                        ),
                        (
                            "undersized_quorums".into(),
                            Json::Num(s.violations.undersized_quorums as f64),
                        ),
                        (
                            "equivocating_proposals".into(),
                            Json::Num(s.observed.equivocating_proposals as f64),
                        ),
                        (
                            "double_votes".into(),
                            Json::Num(s.observed.double_votes as f64),
                        ),
                        (
                            "byzantine_nodes".into(),
                            Json::Num(s.observed.byzantine_nodes as f64),
                        ),
                    ]),
                },
            ),
        ])
    }
}

impl ChaosResult {
    /// All cells in report order.
    pub fn cells(&self) -> impl Iterator<Item = &ChaosCell> {
        self.tolerant
            .iter()
            .chain(&self.halt)
            .chain(&self.bursts)
            .chain(&self.byzantine)
    }

    /// Renders the campaign as a fixed-width text report. Deterministic:
    /// the same config yields byte-identical output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<15} {:<16} {:>9} {:>9} {:>9} {:>8} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}\n",
            "system",
            "arm",
            "faults",
            "pre",
            "fault",
            "post",
            "recovery",
            "deliv",
            "rej",
            "tout",
            "lost",
            "retry",
            "viol",
            "byz",
        ));
        out.push_str(&"-".repeat(132));
        out.push('\n');
        for c in self.cells() {
            out.push_str(&c.render_row());
            out.push('\n');
        }
        out
    }

    /// The campaign as pretty-printed JSON (same determinism guarantee).
    pub fn to_json(&self) -> String {
        Json::Arr(self.cells().map(ChaosCell::to_json).collect()).to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.08, // 24 s send window
            repetitions: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn tolerant_crashes_recover_on_every_system() {
        let r = chaos(&quick());
        assert_eq!(r.tolerant.len(), 7);
        for c in &r.tolerant {
            assert!(c.run.live, "{} must stay live under f crashes", c.system);
            assert!(c.pre_mtps > 0.0, "{} pre-fault throughput", c.system);
            assert!(c.post_mtps > 0.0, "{} post-heal throughput", c.system);
            assert!(
                c.recovery_secs.is_some(),
                "{} must recover in finite virtual time: {:?}",
                c.system,
                c.run.buckets
            );
        }
    }

    #[test]
    fn beyond_f_crashes_halt_commits() {
        let r = chaos(&quick());
        for c in &r.halt {
            // In-flight work (accepted blocks, flows already past the
            // crashed stage) may still land for a few seconds; after that
            // drain grace the system must be dead quiet.
            let after = SimTime::from_secs(5 + quick_crash_secs());
            let tail = c.run.window_mtps(after, SimTime::from_secs(10_000));
            assert_eq!(
                tail, 0.0,
                "{} must halt beyond f: {:?}",
                c.system, c.run.buckets
            );
            assert!(
                c.run.accounting.confirmed < c.run.accounting.scheduled,
                "{} cannot confirm everything while halted",
                c.system
            );
        }
    }

    fn quick_crash_secs() -> u64 {
        let tl = timeline(&quick());
        tl.crash_at.as_secs_f64() as u64
    }

    #[test]
    fn loss_burst_delivery_stays_high_with_retries() {
        let r = chaos(&quick());
        assert_eq!(r.bursts.len(), 2);
        for c in &r.bursts {
            assert!(c.run.accounting.retries > 0, "{} retried", c.system);
            assert!(
                c.run.accounting.delivery_ratio() >= 0.99,
                "{} delivery under 5% burst: {:?}",
                c.system,
                c.run.accounting
            );
        }
    }

    #[test]
    fn byzantine_arms_hold_safety_at_f_and_lose_it_beyond() {
        let r = chaos(&quick());
        assert_eq!(r.byzantine.len(), 6, "two arms per BFT system");
        for c in &r.byzantine {
            let s = c.run.safety.expect("BFT systems carry a safety monitor");
            assert!(
                s.observed.byzantine_nodes > 0,
                "{} {}: the attack must actually run",
                c.system,
                c.arm
            );
            match c.arm {
                "byz-f" => assert!(
                    s.violations.is_clean(),
                    "{} must hold safety at ≤ f: {:?}",
                    c.system,
                    s.violations
                ),
                "byz-beyond-f" => assert!(
                    s.violations.total() > 0,
                    "{} must lose safety at f + 1: {s:?}",
                    c.system
                ),
                other => panic!("unexpected arm {other}"),
            }
        }
        // CFT systems have no Byzantine quorum: safety is not applicable.
        for c in r.tolerant.iter().filter(|c| {
            matches!(
                c.system,
                SystemKind::Fabric
                    | SystemKind::Bitshares
                    | SystemKind::CordaOs
                    | SystemKind::CordaEnterprise
            )
        }) {
            assert!(c.run.safety.is_none(), "{} is CFT", c.system);
        }
    }

    #[test]
    fn chaos_report_is_deterministic() {
        let a = chaos(&quick());
        let b = chaos(&quick());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }
}
