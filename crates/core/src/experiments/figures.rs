//! Figures 3, 4 and 5: the best-configuration heat maps and the
//! scalability study.

use std::collections::HashMap;

use coconut_simnet::NetConfig;
use coconut_types::PayloadKind;

use crate::json::Json;
use crate::params::{BlockParam, SystemKind, SystemSetup};
use crate::report::{self, Report};
use crate::runner::{run_unit, BenchmarkResult, BenchmarkSpec};
use crate::workload::BenchmarkUnit;

use super::ExperimentConfig;

/// The outcome of a Figure 3 / Figure 4 style sweep: for every
/// (benchmark, system) cell the best-MTPS configuration and its result.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// `grid[benchmark][system]`, axes per [`PayloadKind::ALL`] and
    /// [`SystemKind::ALL`].
    pub grid: Vec<Vec<Option<BenchmarkResult>>>,
    /// The configuration behind each best cell (rate, block param, ops).
    pub best_config: HashMap<(PayloadKind, SystemKind), (f64, BlockParam, u32)>,
}

impl Fig3Result {
    /// The best cells flattened in grid order — the serialization row set.
    fn flat_rows(&self) -> Vec<BenchmarkResult> {
        self.grid.iter().flatten().flatten().cloned().collect()
    }

    /// The best cell for `(benchmark, system)`, if any configuration
    /// confirmed at least one transaction.
    pub fn cell(&self, benchmark: PayloadKind, system: SystemKind) -> Option<&BenchmarkResult> {
        let bi = PayloadKind::ALL.iter().position(|b| *b == benchmark)?;
        let si = SystemKind::ALL.iter().position(|s| *s == system)?;
        self.grid[bi][si].as_ref()
    }
}

impl Report for Fig3Result {
    /// Renders the heat map in the paper's layout.
    fn render(&self) -> String {
        let benchmarks: Vec<&str> = PayloadKind::ALL.iter().map(|b| b.label()).collect();
        let systems: Vec<&str> = SystemKind::ALL.iter().map(|s| s.label()).collect();
        report::heatmap(&benchmarks, &systems, &self.grid)
    }

    /// The best cells as a flat JSON row array (grid order).
    fn to_json(&self) -> String {
        report::to_json(&self.flat_rows())
    }

    /// The best cells as flat CSV rows (grid order).
    fn to_csv(&self) -> Option<String> {
        Some(report::to_csv(&self.flat_rows()))
    }
}

/// The parameter grid for one system under the sweep policy.
fn sweep(system: SystemKind, full: bool) -> Vec<(f64, BlockParam, u32)> {
    let rates = system.rate_limiters();
    let params = system.block_params();
    let ops = system.ops_per_tx_values();
    let pick = |v: Vec<f64>| -> Vec<f64> {
        if full {
            v
        } else {
            vec![v[0], *v.last().unwrap()]
        }
    };
    let rates = pick(rates);
    let params = if full || params.len() <= 2 {
        params
    } else {
        vec![params[0], params[2]]
    };
    let ops = if full || ops.len() <= 1 {
        ops
    } else {
        vec![1, 100]
    };
    let mut grid = Vec::new();
    for &r in &rates {
        for &p in &params {
            for &o in &ops {
                grid.push((r, p, o));
            }
        }
    }
    grid
}

/// Runs the full benchmark × system sweep on `net` and keeps the best cell
/// per (benchmark, system). This is the engine behind Figures 3 and 4.
fn best_cells(cfg: &ExperimentConfig, net: NetConfig, nodes: Option<u32>) -> Fig3Result {
    let mut grid: Vec<Vec<Option<BenchmarkResult>>> =
        vec![vec![None; SystemKind::ALL.len()]; PayloadKind::ALL.len()];
    let mut best_config = HashMap::new();

    // One work item per (system, unit, config); all independent.
    struct Item {
        system: SystemKind,
        unit: BenchmarkUnit,
        rate: f64,
        param: BlockParam,
        ops: u32,
    }
    let mut items = Vec::new();
    for system in SystemKind::ALL {
        for unit in BenchmarkUnit::ALL {
            for (rate, param, ops) in sweep(system, cfg.full_sweep) {
                items.push(Item {
                    system,
                    unit,
                    rate,
                    param,
                    ops,
                });
            }
        }
    }

    let windows = cfg.windows();
    let unit_results = crate::exec::run_grid(&items, cfg.jobs, |_, item| {
        let setup = SystemSetup {
            nodes,
            net: net.clone(),
            block_param: item.param,
            admission: None,
            standby: 0,
        };
        let template = BenchmarkSpec::new(item.system, PayloadKind::DoNothing)
            .setup(setup)
            .rate(item.rate)
            .ops_per_tx(item.ops)
            .windows(windows)
            .repetitions(cfg.repetitions);
        let seed = crate::exec::unit_seed(cfg.seed, "fig-sweep", item.unit, &template);
        run_unit(item.system, item.unit, &template, seed)
    });

    for (item, unit_result) in items.iter().zip(unit_results) {
        let si = SystemKind::ALL
            .iter()
            .position(|s| *s == item.system)
            .unwrap();
        for result in unit_result.benchmarks {
            let kind = PayloadKind::ALL
                .iter()
                .copied()
                .find(|k| k.label() == result.benchmark)
                .expect("known benchmark");
            let bi = PayloadKind::ALL.iter().position(|b| *b == kind).unwrap();
            let better = match &grid[bi][si] {
                None => result.mtps.mean > 0.0,
                Some(cur) => result.mtps.mean > cur.mtps.mean,
            };
            if better {
                best_config.insert((kind, item.system), (item.rate, item.param, item.ops));
                grid[bi][si] = Some(result);
            }
        }
    }

    Fig3Result { grid, best_config }
}

/// **Figure 3**: best MTPS with corresponding MFLS and Duration per
/// benchmark and system, on the baseline (no emulated latency) network.
pub fn fig3(cfg: &ExperimentConfig) -> Fig3Result {
    best_cells(cfg, NetConfig::lan(), None)
}

/// **Figure 4**: the Figure 3 best configurations re-run under the netem
/// emulation (N(12 ms, 2 ms) between servers, §5.8.1).
///
/// Pass the already-computed Figure 3 result to reuse its best
/// configurations exactly as the paper does; with `None` the sweep is
/// re-run under latency and the best cells per-configuration are reported.
pub fn fig4(cfg: &ExperimentConfig, from_fig3: Option<&Fig3Result>) -> Fig3Result {
    let net = NetConfig::emulated_latency();
    let Some(base) = from_fig3 else {
        return best_cells(cfg, net, None);
    };
    // Re-run each benchmark's own Figure 3 best configuration under the
    // emulated latency (the Fig. 4 caption: "achieved with the
    // configuration values displayed in Figure 3"). Because benchmarks run
    // inside their units, the unit is re-run once per distinct
    // configuration and only the rows whose best configuration matches are
    // kept.
    let windows = cfg.windows();
    let mut grid: Vec<Vec<Option<BenchmarkResult>>> =
        vec![vec![None; SystemKind::ALL.len()]; PayloadKind::ALL.len()];
    let mut best_config = HashMap::new();

    struct Item {
        system: SystemKind,
        unit: BenchmarkUnit,
        rate: f64,
        param: BlockParam,
        ops: u32,
        /// The benchmarks of this unit whose Fig. 3 best config this is.
        wanted: Vec<PayloadKind>,
    }
    let mut items: Vec<Item> = Vec::new();
    for &system in SystemKind::ALL.iter() {
        for unit in BenchmarkUnit::ALL {
            for benchmark in unit.benchmarks() {
                let Some(&(rate, param, ops)) = base.best_config.get(&(benchmark, system)) else {
                    continue;
                };
                if let Some(existing) = items.iter_mut().find(|i| {
                    i.system == system
                        && i.unit == unit
                        && i.rate == rate
                        && i.param == param
                        && i.ops == ops
                }) {
                    existing.wanted.push(benchmark);
                } else {
                    items.push(Item {
                        system,
                        unit,
                        rate,
                        param,
                        ops,
                        wanted: vec![benchmark],
                    });
                }
            }
        }
    }

    let unit_results = crate::exec::run_grid(&items, cfg.jobs, |_, item| {
        let setup = SystemSetup {
            nodes: None,
            net: net.clone(),
            block_param: item.param,
            admission: None,
            standby: 0,
        };
        let template = BenchmarkSpec::new(
            item.system,
            item.unit.benchmarks().next().expect("unit has phases"),
        )
        .setup(setup)
        .rate(item.rate)
        .ops_per_tx(item.ops)
        .windows(windows)
        .repetitions(cfg.repetitions);
        let seed = crate::exec::unit_seed(cfg.seed, "fig4-best", item.unit, &template);
        run_unit(item.system, item.unit, &template, seed)
    });

    for (item, unit_result) in items.iter().zip(unit_results) {
        let si = SystemKind::ALL
            .iter()
            .position(|s| *s == item.system)
            .unwrap();
        for result in unit_result.benchmarks {
            let kind = PayloadKind::ALL
                .iter()
                .copied()
                .find(|k| k.label() == result.benchmark)
                .expect("known benchmark");
            if !item.wanted.contains(&kind) {
                continue;
            }
            let bi = PayloadKind::ALL.iter().position(|b| *b == kind).unwrap();
            best_config.insert((kind, item.system), (item.rate, item.param, item.ops));
            if result.mtps.mean > 0.0 {
                grid[bi][si] = Some(result);
            }
        }
    }
    Fig3Result { grid, best_config }
}

/// The outcome of the Figure 5 scalability study.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Node counts evaluated (the paper: 8, 16, 32).
    pub node_counts: Vec<u32>,
    /// `mtps[system][node_count_index]` for the DoNothing benchmark;
    /// 0.0 marks a complete failure.
    pub mtps: Vec<Vec<f64>>,
}

impl Fig5Result {
    /// MTPS of `system` at `nodes`, if that cell was measured.
    pub fn mtps_of(&self, system: SystemKind, nodes: u32) -> Option<f64> {
        let si = SystemKind::ALL.iter().position(|s| *s == system)?;
        let ni = self.node_counts.iter().position(|n| *n == nodes)?;
        Some(self.mtps[si][ni])
    }
}

impl Report for Fig5Result {
    /// Renders the scalability table (the log-scale figure's data).
    fn render(&self) -> String {
        let systems: Vec<&str> = SystemKind::ALL.iter().map(|s| s.label()).collect();
        report::scalability_table(&systems, &self.node_counts, &self.mtps)
    }

    /// The scalability study as JSON: the node-count axis plus one MTPS
    /// series per system.
    fn to_json(&self) -> String {
        let series = SystemKind::ALL
            .iter()
            .zip(&self.mtps)
            .map(|(s, row)| {
                Json::Obj(vec![
                    ("system".into(), Json::Str(s.label().into())),
                    (
                        "mtps".into(),
                        Json::Arr(row.iter().map(|&m| Json::Num(m)).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "node_counts".into(),
                Json::Arr(
                    self.node_counts
                        .iter()
                        .map(|&n| Json::Num(f64::from(n)))
                        .collect(),
                ),
            ),
            ("systems".into(), Json::Arr(series)),
        ])
        .to_pretty()
    }
}

/// **Figure 5**: DoNothing MTPS at 8, 16 and 32 nodes (round-robin over
/// eight servers, §5.8.2), using each system's best Figure 3 configuration.
pub fn fig5(cfg: &ExperimentConfig, from_fig3: Option<&Fig3Result>) -> Fig5Result {
    let node_counts = vec![8u32, 16, 32];
    let windows = cfg.windows();
    let mut mtps = vec![vec![0.0; node_counts.len()]; SystemKind::ALL.len()];

    struct Item {
        system: SystemKind,
        si: usize,
        ni: usize,
        nodes: u32,
        rate: f64,
        param: BlockParam,
        ops: u32,
    }
    let mut items = Vec::new();
    for (si, &system) in SystemKind::ALL.iter().enumerate() {
        let (rate, param, ops) = from_fig3
            .and_then(|f| {
                f.best_config
                    .get(&(PayloadKind::DoNothing, system))
                    .copied()
            })
            .unwrap_or_else(|| default_do_nothing_config(system));
        for (ni, &nodes) in node_counts.iter().enumerate() {
            items.push(Item {
                system,
                si,
                ni,
                nodes,
                rate,
                param,
                ops,
            });
        }
    }

    let values = crate::exec::run_grid(&items, cfg.jobs, |_, item| {
        let setup = SystemSetup {
            nodes: Some(item.nodes),
            net: NetConfig::emulated_latency(),
            block_param: item.param,
            admission: None,
            standby: 0,
        };
        let spec = BenchmarkSpec::new(item.system, PayloadKind::DoNothing)
            .setup(setup)
            .rate(item.rate)
            .ops_per_tx(item.ops)
            .windows(windows)
            .repetitions(cfg.repetitions);
        let seed = crate::exec::cell_seed(cfg.seed, "fig5", &spec);
        crate::runner::run_benchmark(&spec, seed).mtps.mean
    });
    for (item, v) in items.iter().zip(values) {
        mtps[item.si][item.ni] = v;
    }

    Fig5Result { node_counts, mtps }
}

/// The DoNothing configuration the paper's Figure 3 lands on per system,
/// used when Figure 5 runs standalone.
fn default_do_nothing_config(system: SystemKind) -> (f64, BlockParam, u32) {
    match system {
        SystemKind::CordaOs => (20.0, BlockParam::None, 1),
        SystemKind::CordaEnterprise => (160.0, BlockParam::None, 1),
        SystemKind::Bitshares => (
            1600.0,
            BlockParam::BlockInterval(coconut_types::SimDuration::from_secs(1)),
            100,
        ),
        SystemKind::Fabric => (1600.0, BlockParam::MaxMessageCount(500), 1),
        SystemKind::Quorum => (
            1600.0,
            BlockParam::BlockPeriod(coconut_types::SimDuration::from_secs(5)),
            1,
        ),
        SystemKind::Sawtooth => (
            200.0,
            BlockParam::PublishingDelay(coconut_types::SimDuration::from_secs(1)),
            100,
        ),
        SystemKind::Diem => (200.0, BlockParam::MaxBlockSize(1000), 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sweep that still exercises the full plumbing.
    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.01,
            repetitions: 1,
            seed: 7,
            full_sweep: false,
            jobs: None,
        }
    }

    #[test]
    #[ignore = "several minutes; run explicitly or via the repro binary"]
    fn fig3_produces_a_full_grid() {
        let f = fig3(&tiny());
        assert_eq!(f.grid.len(), 6);
        assert!(f.cell(PayloadKind::DoNothing, SystemKind::Fabric).is_some());
        let rendered = f.render();
        assert!(rendered.contains("Fabric"));
    }

    #[test]
    fn default_configs_cover_all_systems() {
        for s in SystemKind::ALL {
            let (rate, _, ops) = default_do_nothing_config(s);
            assert!(rate > 0.0);
            assert!(ops >= 1);
        }
    }

    #[test]
    fn sweep_reduced_vs_full() {
        let full = sweep(SystemKind::Fabric, true);
        let reduced = sweep(SystemKind::Fabric, false);
        assert_eq!(full.len(), 16, "4 rates × 4 MM values");
        assert_eq!(reduced.len(), 4, "2 rates × 2 MM values");
        let bs_full = sweep(SystemKind::Bitshares, true);
        assert_eq!(bs_full.len(), 4 * 4 * 3);
    }
}
