//! Fault-injection campaigns: the chaos client loop with retry/backoff.
//!
//! The paper's client (§4.4) fires transactions at a fixed rate and simply
//! counts what comes back; a lost transaction is a lost transaction. This
//! module extends that client for fault campaigns: a declarative
//! [`FaultPlan`](coconut_simnet::FaultPlan) is replayed in virtual-time
//! order while the schedule runs, and the client re-sends transactions that
//! were rejected at ingress or missed their finalization timeout — bounded
//! retries with exponential backoff and seeded jitter, so runs stay
//! deterministic per seed.
//!
//! Number-of-transactions accounting separates the failure modes the paper
//! lumps together: [`DeliveryAccounting`] splits unconfirmed transactions
//! into `rejected` (the system said no and retries ran out), `timed_out`
//! (accepted but never confirmed), and `lost_in_fault` (the submission
//! itself was swallowed by an active loss burst).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use coconut_chains::BlockchainSystem;
use coconut_consensus::SafetyReport;
use coconut_simnet::{ByzantineBehaviour, FaultEvent, FaultPlan, FaultScheduler};
use coconut_types::{SeedDeriver, SimDuration, SimRng, SimTime, TxId};

use crate::client::build_schedule;
use crate::runner::BenchmarkSpec;
use crate::stats::percentile;

/// Bounded retry with exponential backoff and seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-sends allowed per transaction (0 disables retrying).
    pub max_retries: u32,
    /// How long the client waits for a confirmation before concluding the
    /// transaction is lost and re-sending it.
    pub finalization_timeout: SimDuration,
    /// Backoff before retry `k` is `base_backoff * 2^(k−1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: SimDuration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: SimDuration,
    /// Jitter fraction: a seeded uniform draw in `[0, jitter)` of the
    /// backoff is added so retry bursts decorrelate across threads.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries, no timeout tracking — the paper's fire-and-forget client.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            finalization_timeout: SimDuration::from_secs(3600),
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// The chaos-suite default: three retries, 8 s finalization timeout,
    /// 250 ms base backoff capped at 4 s, 20% jitter.
    pub fn chaos_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            finalization_timeout: SimDuration::from_secs(8),
            base_backoff: SimDuration::from_millis(250),
            max_backoff: SimDuration::from_secs(4),
            jitter: 0.2,
        }
    }

    /// `true` if the policy re-sends at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The delay before retry attempt `attempt` (1-based), jittered.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        assert!(attempt > 0, "attempt numbers are 1-based");
        let doubling = 1u64 << (attempt - 1).min(16);
        let exp = (self.base_backoff * doubling).min(self.max_backoff);
        exp + exp.mul_f64(self.jitter.max(0.0) * rng.gen_f64())
    }
}

/// Number-of-transactions accounting for one chaos run. Every scheduled
/// transaction lands in exactly one terminal class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryAccounting {
    /// Transactions the client scheduled.
    pub scheduled: u64,
    /// Transactions confirmed at least once within the listen window.
    pub confirmed: u64,
    /// Transactions whose every submission was rejected at ingress and
    /// whose retry budget ran out.
    pub rejected: u64,
    /// Transactions the system accepted but never confirmed before the
    /// client terminated.
    pub timed_out: u64,
    /// Transactions whose last submission was swallowed by an active loss
    /// burst before reaching the system.
    pub lost_in_fault: u64,
    /// Total re-sends performed (not counted in `scheduled`).
    pub retries: u64,
}

impl DeliveryAccounting {
    /// Fraction of scheduled transactions confirmed.
    pub fn delivery_ratio(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.confirmed as f64 / self.scheduled as f64
        }
    }

    /// `true` when every scheduled transaction is classified exactly once.
    pub fn is_complete(&self) -> bool {
        self.confirmed + self.rejected + self.timed_out + self.lost_in_fault == self.scheduled
    }
}

/// The client-side observations of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Terminal per-transaction classification.
    pub accounting: DeliveryAccounting,
    /// Committed operations per virtual-time bucket (for throughput
    /// timelines and recovery detection). Bucket `i` covers
    /// `[i, i+1) * bucket_len` from the schedule base.
    pub buckets: Vec<u64>,
    /// Width of each bucket.
    pub bucket_len: SimDuration,
    /// Mean throughput over the active span (ops/s, formula 2).
    pub mtps: f64,
    /// Mean finalization latency over confirmed transactions (s).
    pub mfls: f64,
    /// 95th-percentile finalization latency (s).
    pub p95: f64,
    /// Whether the system still served confirmations at the end.
    pub live: bool,
    /// The consensus safety monitor's verdict, for systems that carry one
    /// (the BFT chains). `None` means safety invariants are not applicable.
    pub safety: Option<SafetyReport>,
}

impl ChaosRun {
    /// Mean bucket throughput (ops/s) over buckets fully inside
    /// `[from, to)`, or 0.0 if the range covers no full bucket.
    pub fn window_mtps(&self, from: SimTime, to: SimTime) -> f64 {
        let lo = (from.as_secs_f64() / self.bucket_len.as_secs_f64()).ceil() as usize;
        let hi = (to.as_secs_f64() / self.bucket_len.as_secs_f64()).floor() as usize;
        let hi = hi.min(self.buckets.len());
        if lo >= hi {
            return 0.0;
        }
        let ops: u64 = self.buckets[lo..hi].iter().sum();
        ops as f64 / ((hi - lo) as f64 * self.bucket_len.as_secs_f64())
    }

    /// Virtual seconds from `heal` until throughput first sustains at
    /// least `threshold` × the pre-fault mean over a three-bucket sliding
    /// window (summed, so block cadences longer than a bucket — Fabric's
    /// 2 s batch timeout against 1 s buckets — don't defeat detection).
    /// `None` if throughput never recovers (or never existed).
    pub fn recovery_secs(&self, crash: SimTime, heal: SimTime, threshold: f64) -> Option<f64> {
        const SUSTAIN: usize = 3;
        let pre = self.window_mtps(SimTime::ZERO, crash);
        if pre <= 0.0 {
            return None;
        }
        let needed = pre * self.bucket_len.as_secs_f64() * SUSTAIN as f64 * threshold;
        let heal_bucket = (heal.as_secs_f64() / self.bucket_len.as_secs_f64()).ceil() as usize;
        let n = self.buckets.len();
        (heal_bucket..n.saturating_sub(SUSTAIN - 1))
            .find(|&b| {
                (b..b + SUSTAIN)
                    .map(|i| self.buckets[i] as f64)
                    .sum::<f64>()
                    >= needed
            })
            .map(|b| (b as f64 * self.bucket_len.as_secs_f64() - heal.as_secs_f64()).max(0.0))
    }
}

/// What a pending client action is. Faults are not queued here: the
/// [`FaultScheduler`] is drained before each action, so a fault at `t`
/// always precedes a submission at `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    /// Check a transaction's finalization timeout (may schedule a re-send).
    Timeout(TxId),
    /// Send (or re-send) a transaction.
    Submit(TxId),
}

#[derive(Debug)]
struct Track {
    created: SimTime,
    attempts: u32,
    accepted_once: bool,
    last_was_client_lost: bool,
    confirmed: bool,
}

/// Runs `spec`'s schedule against `system` while replaying `plan`, with
/// `policy` governing re-sends. All randomness (ingress loss, backoff
/// jitter) derives from `seed`; identical inputs give identical runs.
///
/// Fault semantics: `CrashNode`/`RestartNode` route to
/// [`BlockchainSystem::crash_node`] / [`BlockchainSystem::recover_node`];
/// `EquivocateProposer`/`DoubleVote` route to
/// [`BlockchainSystem::inject_byzantine`] with the event's window converted
/// to an absolute expiry (CFT systems decline the injection and the run's
/// [`ChaosRun::safety`] stays `None`);
/// network faults route to [`BlockchainSystem::apply_net_fault`]. A
/// [`FaultEvent::LossBurst`] additionally applies to the *client ingress*:
/// while the burst is active each submission is dropped with probability
/// `p` before reaching the system (the client cannot tell — only the
/// finalization timeout recovers such transactions).
pub fn run_chaos(
    system: &mut (dyn BlockchainSystem + Send),
    spec: &BenchmarkSpec,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    seed: u64,
) -> ChaosRun {
    let seeds = SeedDeriver::new(seed);
    let mut loss_rng = seeds.rng("client-loss", 0);
    let mut backoff_rng = seeds.rng("backoff", 0);

    let schedule = build_schedule(
        spec.benchmark,
        spec.rate,
        spec.ops_per_tx,
        spec.windows,
        seeds.seed("schedule", 0),
    );
    let listen_end = SimTime::ZERO + spec.windows.listen;
    let bucket_len = SimDuration::from_secs(1);
    let n_buckets = (spec.windows.listen.as_secs_f64() / bucket_len.as_secs_f64()).ceil() as usize;

    let mut tracks: HashMap<TxId, Track> = HashMap::with_capacity(schedule.len());
    let mut originals: HashMap<TxId, TxId> = HashMap::new();
    let mut payloads: HashMap<TxId, coconut_types::ClientTx> = HashMap::new();
    let mut scheduler = FaultScheduler::new(plan.clone());
    let mut client_loss: Option<(f64, SimTime)> = None;

    // One queue of timed client actions; ties resolve fault < timeout <
    // submit, then by insertion order via the sequence number.
    let mut queue: BinaryHeap<Reverse<(SimTime, Action, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for sched in &schedule {
        queue.push(Reverse((sched.at, Action::Submit(sched.tx.id()), seq)));
        seq += 1;
        payloads.insert(sched.tx.id(), sched.tx.clone());
    }

    let mut accounting = DeliveryAccounting {
        scheduled: schedule.len() as u64,
        ..DeliveryAccounting::default()
    };
    let mut buckets = vec![0u64; n_buckets];
    let mut latencies: Vec<f64> = Vec::new();
    let mut t_fstx: Option<SimTime> = None;
    let mut t_lrtx: Option<SimTime> = None;

    let harvest = |outcomes: Vec<coconut_types::TxOutcome>,
                   tracks: &mut HashMap<TxId, Track>,
                   originals: &HashMap<TxId, TxId>,
                   accounting: &mut DeliveryAccounting,
                   buckets: &mut [u64],
                   latencies: &mut Vec<f64>,
                   t_lrtx: &mut Option<SimTime>| {
        for o in outcomes {
            if !o.is_committed() || o.finalized_at > listen_end {
                continue;
            }
            let orig = originals.get(&o.tx).copied().unwrap_or(o.tx);
            let Some(track) = tracks.get_mut(&orig) else {
                continue;
            };
            if track.confirmed {
                continue; // a retry raced its original; count once
            }
            track.confirmed = true;
            accounting.confirmed += 1;
            latencies.push((o.finalized_at - track.created).as_secs_f64());
            *t_lrtx = Some(t_lrtx.map_or(o.finalized_at, |t| t.max(o.finalized_at)));
            let b = (o.finalized_at.as_secs_f64() / bucket_len.as_secs_f64()) as usize;
            if let Some(slot) = buckets.get_mut(b) {
                *slot += o.ops_confirmed() as u64;
            }
        }
    };

    while let Some(&Reverse((at, _, _))) = queue.peek() {
        // Interleave faults strictly before client actions at the same time.
        let fault_due = scheduler.next_due().filter(|&f| f <= at);
        if let Some(fat) = fault_due {
            harvest(
                system.run_until(fat),
                &mut tracks,
                &originals,
                &mut accounting,
                &mut buckets,
                &mut latencies,
                &mut t_lrtx,
            );
            while let Some((fat, event)) = scheduler.pop_due(fat) {
                match event {
                    FaultEvent::CrashNode(node) => {
                        system.crash_node(node);
                    }
                    FaultEvent::RestartNode(node) => {
                        system.recover_node(node);
                    }
                    FaultEvent::EquivocateProposer { node, window } => {
                        system.inject_byzantine(
                            node,
                            ByzantineBehaviour::EquivocateProposer,
                            fat + window,
                        );
                    }
                    FaultEvent::DoubleVote { node, window } => {
                        system.inject_byzantine(node, ByzantineBehaviour::DoubleVote, fat + window);
                    }
                    ref net_fault => {
                        if let FaultEvent::LossBurst { p, window } = *net_fault {
                            client_loss = Some((p, fat + window));
                        }
                        system.apply_net_fault(fat, net_fault);
                    }
                }
            }
            continue;
        }

        let Reverse((at, action, _)) = queue.pop().expect("peeked");
        if at > listen_end {
            break;
        }
        harvest(
            system.run_until(at),
            &mut tracks,
            &originals,
            &mut accounting,
            &mut buckets,
            &mut latencies,
            &mut t_lrtx,
        );

        match action {
            Action::Submit(orig) => {
                let track = tracks.entry(orig).or_insert(Track {
                    created: at,
                    attempts: 0,
                    accepted_once: false,
                    last_was_client_lost: false,
                    confirmed: false,
                });
                if track.confirmed {
                    continue; // confirmed while this retry was queued
                }
                track.attempts += 1;
                t_fstx.get_or_insert(at);

                // Derive a fresh wire id per re-send so the system treats
                // it as a new transaction; confirmations map back.
                let wire_id = if track.attempts == 1 {
                    orig
                } else {
                    accounting.retries += 1;
                    let derived =
                        TxId::new(orig.client(), orig.seq() | (track.attempts as u64) << 56);
                    originals.insert(derived, orig);
                    derived
                };
                let template = &payloads[&orig];
                let tx = coconut_types::ClientTx::new(
                    wire_id,
                    template.thread(),
                    template.payloads().to_vec(),
                    at,
                );

                // Client-side ingress loss during an active burst window.
                if let Some((p, until)) = client_loss {
                    if at < until && loss_rng.gen_bool(p) {
                        track.last_was_client_lost = true;
                        if policy.enabled() {
                            queue.push(Reverse((
                                at + policy.finalization_timeout,
                                Action::Timeout(orig),
                                seq,
                            )));
                            seq += 1;
                        }
                        continue;
                    }
                }
                track.last_was_client_lost = false;

                if system.submit(at, tx).is_accepted() {
                    track.accepted_once = true;
                    if policy.enabled() {
                        queue.push(Reverse((
                            at + policy.finalization_timeout,
                            Action::Timeout(orig),
                            seq,
                        )));
                        seq += 1;
                    }
                } else if policy.enabled() && track.attempts <= policy.max_retries {
                    let delay = policy.backoff(track.attempts, &mut backoff_rng);
                    queue.push(Reverse((at + delay, Action::Submit(orig), seq)));
                    seq += 1;
                }
                // else: terminal rejection, classified at the end.
            }
            Action::Timeout(orig) => {
                let track = tracks.get_mut(&orig).expect("timeout implies track");
                if track.confirmed || track.attempts > policy.max_retries {
                    continue;
                }
                let delay = policy.backoff(track.attempts, &mut backoff_rng);
                queue.push(Reverse((at + delay, Action::Submit(orig), seq)));
                seq += 1;
            }
        }
    }

    harvest(
        system.run_until(listen_end),
        &mut tracks,
        &originals,
        &mut accounting,
        &mut buckets,
        &mut latencies,
        &mut t_lrtx,
    );

    // Terminal classification of everything unconfirmed.
    for sched in &schedule {
        match tracks.get(&sched.tx.id()) {
            None => accounting.lost_in_fault += 1, // never reached its send slot
            Some(t) if t.confirmed => {}
            Some(t) if t.last_was_client_lost => accounting.lost_in_fault += 1,
            Some(t) if t.accepted_once => accounting.timed_out += 1,
            Some(_) => accounting.rejected += 1,
        }
    }
    debug_assert!(accounting.is_complete());

    let mtps = match (t_fstx, t_lrtx) {
        (Some(first), Some(last)) if last > first => {
            let ops: u64 = buckets.iter().sum();
            ops as f64 / (last - first).as_secs_f64()
        }
        _ => 0.0,
    };
    let mfls = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let p95 = percentile(&latencies, 0.95);
    ChaosRun {
        accounting,
        buckets,
        bucket_len,
        mtps,
        mfls,
        p95,
        live: system.is_live(),
        safety: system.safety_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Windows;
    use crate::params::{build_system, SystemKind, SystemSetup};
    use coconut_types::PayloadKind;

    fn quick_spec(system: SystemKind, rate: f64) -> BenchmarkSpec {
        // A listen margin generous enough that the send-window tail can
        // confirm (and time-outed retries can land) before termination.
        BenchmarkSpec::new(system, PayloadKind::DoNothing)
            .rate(rate)
            .windows(Windows {
                send: SimDuration::from_secs(15),
                listen: SimDuration::from_secs(25),
            })
            .repetitions(1)
    }

    fn run(kind: SystemKind, plan: &FaultPlan, policy: &RetryPolicy, seed: u64) -> ChaosRun {
        let spec = quick_spec(kind, 100.0);
        let mut sys = build_system(kind, &SystemSetup::default(), seed);
        run_chaos(sys.as_mut(), &spec, plan, policy, seed)
    }

    #[test]
    fn fault_free_run_confirms_everything() {
        let r = run(
            SystemKind::Fabric,
            &FaultPlan::new(),
            &RetryPolicy::disabled(),
            7,
        );
        assert!(r.accounting.is_complete());
        assert_eq!(r.accounting.confirmed, r.accounting.scheduled);
        assert_eq!(r.accounting.retries, 0);
        assert!(r.mtps > 0.0);
        assert!(r.live);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(4),
                FaultEvent::LossBurst {
                    p: 0.05,
                    window: SimDuration::from_secs(4),
                },
            )
            .crash_window(
                &[coconut_types::NodeId(1)],
                SimTime::from_secs(5),
                SimTime::from_secs(9),
            );
        let a = run(SystemKind::Quorum, &plan, &RetryPolicy::chaos_default(), 3);
        let b = run(SystemKind::Quorum, &plan, &RetryPolicy::chaos_default(), 3);
        assert_eq!(a.accounting, b.accounting);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.mtps, b.mtps);
    }

    #[test]
    fn loss_burst_without_retry_loses_transactions() {
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            FaultEvent::LossBurst {
                p: 0.5,
                window: SimDuration::from_secs(8),
            },
        );
        let r = run(SystemKind::Fabric, &plan, &RetryPolicy::disabled(), 11);
        assert!(
            r.accounting.lost_in_fault > 0,
            "half the burst window is dropped"
        );
        assert!(r.accounting.delivery_ratio() < 0.95);
    }

    #[test]
    fn retry_recovers_loss_burst_transactions() {
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            FaultEvent::LossBurst {
                p: 0.05,
                window: SimDuration::from_secs(6),
            },
        );
        let r = run(SystemKind::Fabric, &plan, &RetryPolicy::chaos_default(), 11);
        assert!(r.accounting.retries > 0);
        assert!(
            r.accounting.delivery_ratio() >= 0.99,
            "retry must recover the burst: {:?}",
            r.accounting
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::chaos_default()
        };
        let mut rng = SimRng::seed_from_u64(0);
        let b1 = p.backoff(1, &mut rng);
        let b2 = p.backoff(2, &mut rng);
        let b9 = p.backoff(9, &mut rng);
        assert_eq!(b2, b1 * 2);
        assert_eq!(b9, p.max_backoff);
    }

    #[test]
    fn recovery_detection_finds_heal_point() {
        let r = ChaosRun {
            accounting: DeliveryAccounting::default(),
            buckets: vec![10, 10, 10, 0, 0, 0, 0, 10, 10, 10, 10],
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            live: true,
            safety: None,
        };
        let rec = r
            .recovery_secs(SimTime::from_secs(3), SimTime::from_secs(6), 0.7)
            .expect("recovers");
        assert_eq!(rec, 1.0, "buckets 7..10 sustain; heal at 6 → 1 s");
        // A run that never recovers reports None.
        let dead = ChaosRun {
            buckets: vec![10, 10, 0, 0, 0, 0, 0, 0],
            ..r
        };
        assert_eq!(
            dead.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(4), 0.7),
            None
        );
    }

    /// A bare run with the given 1 s buckets, for windowing edge cases.
    fn synthetic(buckets: Vec<u64>) -> ChaosRun {
        ChaosRun {
            accounting: DeliveryAccounting::default(),
            buckets,
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            live: true,
            safety: None,
        }
    }

    #[test]
    fn window_mtps_empty_and_degenerate_windows_are_zero() {
        let r = synthetic(vec![10, 20, 30, 40]);
        // Empty and inverted ranges cover no full bucket.
        assert_eq!(
            r.window_mtps(SimTime::from_secs(2), SimTime::from_secs(2)),
            0.0
        );
        assert_eq!(
            r.window_mtps(SimTime::from_secs(3), SimTime::from_secs(1)),
            0.0
        );
        // A sub-bucket window straddling a boundary contains no full
        // bucket either — partial buckets never count.
        let half = SimDuration::from_secs_f64(0.5);
        assert_eq!(
            r.window_mtps(SimTime::ZERO + half, SimTime::from_secs(1) + half),
            0.0
        );
        // A range reaching past the recorded buckets clamps to their end …
        assert_eq!(
            r.window_mtps(SimTime::from_secs(2), SimTime::from_secs(100)),
            35.0
        );
        // … and one entirely past it is empty.
        assert_eq!(
            r.window_mtps(SimTime::from_secs(50), SimTime::from_secs(100)),
            0.0
        );
        // Exact bucket edges include exactly the covered buckets.
        assert_eq!(r.window_mtps(SimTime::ZERO, SimTime::from_secs(2)), 15.0);
    }

    #[test]
    fn recovery_that_never_sustains_threshold_is_none() {
        // Post-heal throughput flickers but no three consecutive buckets
        // reach 70 % of the pre-fault mean (needed sum: 10 × 3 × 0.7 = 21).
        let r = synthetic(vec![10, 10, 10, 0, 0, 0, 9, 0, 0, 9, 0, 0]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(3), SimTime::from_secs(6), 0.7),
            None
        );
    }

    #[test]
    fn recovery_without_pre_fault_throughput_is_none() {
        // Nothing committed before the crash: there is no baseline to
        // recover to.
        let r = synthetic(vec![0, 0, 0, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(3), 0.7),
            None
        );
        // A crash at t = 0 leaves an empty pre-fault window: same verdict.
        let r = synthetic(vec![10, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::ZERO, SimTime::from_secs(1), 0.7),
            None
        );
    }

    #[test]
    fn recovery_at_exact_bucket_boundaries_is_instant() {
        // Crash and heal on exact bucket edges with an immediate comeback:
        // the heal bucket itself sustains, so recovery is 0 s.
        let r = synthetic(vec![10, 10, 0, 0, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(4), 0.7),
            Some(0.0)
        );
    }

    #[test]
    fn recovery_with_heal_past_recorded_buckets_is_none() {
        // The heal lands beyond the recorded timeline: no sliding window
        // exists to sustain, so the run never counts as recovered.
        let r = synthetic(vec![10, 10, 0, 0]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(1), SimTime::from_secs(9), 0.7),
            None
        );
    }
}
