//! Fault-injection campaigns: the chaos client loop with retry/backoff.
//!
//! The paper's client (§4.4) fires transactions at a fixed rate and simply
//! counts what comes back; a lost transaction is a lost transaction. This
//! module extends that client for fault campaigns: a declarative
//! [`FaultPlan`](coconut_simnet::FaultPlan) is replayed in virtual-time
//! order while the schedule runs, and the client re-sends transactions that
//! were rejected at ingress or missed their finalization timeout — bounded
//! retries with exponential backoff and seeded jitter, so runs stay
//! deterministic per seed.
//!
//! Number-of-transactions accounting separates the failure modes the paper
//! lumps together: [`DeliveryAccounting`] splits unconfirmed transactions
//! into `rejected` (the system said no and retries ran out), `timed_out`
//! (accepted but never confirmed), `lost_in_fault` (the submission itself
//! was swallowed by an active loss burst), `backpressured` (the system
//! answered `Busy` and the client gave up or was held off), and `unsent`
//! (the send slot fell outside the listen window).
//!
//! For overload campaigns the client can additionally arm
//! [`ClientProtection`]: a [`RetryBudget`] token bucket bounding total
//! re-sends, a [`CircuitBreaker`] that stops hammering a system answering
//! `Busy`, and an optional [`AimdPolicy`] rate controller. All three are
//! seeded-deterministic; with [`ClientProtection::disabled`] the loop is
//! bit-identical to the unprotected client.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use coconut_chains::BlockchainSystem;
use coconut_consensus::{LivenessReport, SafetyReport};
use coconut_simnet::{ByzantineBehaviour, FaultEvent, FaultPlan, FaultScheduler};
use coconut_types::{SeedDeriver, SimDuration, SimRng, SimTime, TxId};

use crate::client::{build_schedule, ScheduledTx};
use crate::runner::BenchmarkSpec;
use crate::stats::percentile;

/// Bounded retry with exponential backoff and seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-sends allowed per transaction (0 disables retrying).
    pub max_retries: u32,
    /// How long the client waits for a confirmation before concluding the
    /// transaction is lost and re-sending it.
    pub finalization_timeout: SimDuration,
    /// Backoff before retry `k` is `base_backoff * 2^(k−1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: SimDuration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: SimDuration,
    /// Jitter fraction: a seeded uniform draw in `[0, jitter)` of the
    /// backoff is added so retry bursts decorrelate across threads.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries, no timeout tracking — the paper's fire-and-forget client.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            finalization_timeout: SimDuration::from_secs(3600),
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// The chaos-suite default: three retries, 8 s finalization timeout,
    /// 250 ms base backoff capped at 4 s, 20% jitter.
    pub fn chaos_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            finalization_timeout: SimDuration::from_secs(8),
            base_backoff: SimDuration::from_millis(250),
            max_backoff: SimDuration::from_secs(4),
            jitter: 0.2,
        }
    }

    /// `true` if the policy re-sends at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The delay before retry attempt `attempt` (1-based), jittered.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        assert!(attempt > 0, "attempt numbers are 1-based");
        let doubling = 1u64 << (attempt - 1).min(16);
        let exp = (self.base_backoff * doubling).min(self.max_backoff);
        exp + exp.mul_f64(self.jitter.max(0.0) * rng.gen_f64())
    }
}

/// A token bucket bounding the *total* re-sends the client may issue in
/// one run. Every retry (from a rejection, a `Busy` answer, or a
/// finalization timeout) spends one token; when the bucket is dry the
/// transaction is abandoned instead of re-sent. This is what breaks the
/// retry-amplification loop behind metastable failures: without a budget,
/// an overload pulse makes every client re-send, which sustains the
/// overload after the pulse ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last: SimTime,
}

impl RetryBudget {
    /// A bucket holding `capacity` tokens, regaining `refill_per_sec`
    /// tokens per virtual second (capped at `capacity`). Starts full.
    pub fn new(capacity: u32, refill_per_sec: f64) -> Self {
        RetryBudget {
            capacity: capacity as f64,
            refill_per_sec,
            tokens: capacity as f64,
            last: SimTime::ZERO,
        }
    }

    /// Takes one token at virtual time `now`, refilling first. `false`
    /// means the budget is exhausted and the retry must be dropped.
    pub fn try_spend(&mut self, now: SimTime) -> bool {
        if now > self.last {
            let gained = (now - self.last).as_secs_f64() * self.refill_per_sec;
            self.tokens = (self.tokens + gained).min(self.capacity);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (before any refill due at a later time).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Parameters of the client-side circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive `Busy`/timeout responses that trip the breaker.
    pub failure_threshold: u32,
    /// Base cooldown once tripped; a server `retry_after` hint extends it.
    pub open_for: SimDuration,
    /// Jitter fraction applied (from the seeded `breaker` stream) when
    /// deferred sends re-queue at the cooldown's end, so the reopening
    /// breaker is not hit by a synchronized thundering herd.
    pub jitter: f64,
}

impl BreakerPolicy {
    /// The overload-suite default: trip after 5 consecutive failures,
    /// hold off for 1 s, 20% reopen jitter.
    pub fn overload_default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            open_for: SimDuration::from_secs(1),
            jitter: 0.2,
        }
    }
}

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Sends flow freely; consecutive failures are counted.
    Closed,
    /// Sends are held back until the cooldown expires.
    Open,
    /// The cooldown expired; sends probe the system. One success closes
    /// the breaker, one failure re-opens it.
    HalfOpen,
}

/// A seeded-deterministic circuit breaker: `Closed → Open` after
/// [`BreakerPolicy::failure_threshold`] consecutive `Busy`/timeout
/// responses, `Open → HalfOpen` once the cooldown elapses, and
/// `HalfOpen → Closed` (probe confirmed) or `HalfOpen → Open` (probe
/// failed). Rejections are semantic refusals, not overload, and do not
/// count as failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    opens: u64,
    open_secs: f64,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            opens: 0,
            open_secs: 0.0,
        }
    }

    /// Whether a send may proceed at `now`. An open breaker whose
    /// cooldown has elapsed transitions to `HalfOpen` and lets the send
    /// through as a probe.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now >= self.open_until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// When sends are denied, the earliest time to try again.
    pub fn retry_at(&self) -> SimTime {
        self.open_until
    }

    /// Records an accepted submission. A half-open probe's success closes
    /// the breaker; any success resets the consecutive-failure count.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Records a `Busy` or finalization-timeout failure at `now`;
    /// `retry_after` is the server's hold-off hint, which extends the
    /// cooldown beyond [`BreakerPolicy::open_for`] when longer.
    pub fn on_failure(&mut self, now: SimTime, retry_after: Option<SimDuration>) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.trip(now, retry_after);
                }
            }
            BreakerState::HalfOpen => self.trip(now, retry_after),
            // Stragglers failing while already open don't extend the
            // cooldown (they were sent before the trip).
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime, retry_after: Option<SimDuration>) {
        let cooldown = self
            .policy
            .open_for
            .max(retry_after.unwrap_or(SimDuration::ZERO));
        self.state = BreakerState::Open;
        self.open_until = now + cooldown;
        self.opens += 1;
        self.open_secs += cooldown.as_secs_f64();
        self.consecutive_failures = 0;
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The policy the breaker was built with.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Total virtual seconds of cooldown the breaker imposed.
    pub fn open_secs(&self) -> f64 {
        self.open_secs
    }
}

/// Additive-increase / multiplicative-decrease client rate control: the
/// client paces its sends at an adaptive rate that grows on accepted
/// submissions and collapses on `Busy`/timeouts (TCP-style congestion
/// avoidance applied to the benchmark client).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdPolicy {
    /// Initial pacing rate (sends per virtual second).
    pub start_rate: f64,
    /// Floor the rate never drops below.
    pub min_rate: f64,
    /// Ceiling the rate never exceeds.
    pub max_rate: f64,
    /// Additive rate gain per accepted submission (per second).
    pub increase_per_success: f64,
    /// Multiplicative factor applied on each failure (in `(0, 1)`).
    pub decrease_factor: f64,
}

impl AimdPolicy {
    /// A controller starting at `rate` sends/s, halving on failure and
    /// regaining 2% of the start rate per success.
    pub fn for_rate(rate: f64) -> Self {
        AimdPolicy {
            start_rate: rate,
            min_rate: (rate / 100.0).max(0.1),
            max_rate: rate * 4.0,
            increase_per_success: rate / 50.0,
            decrease_factor: 0.5,
        }
    }
}

/// The adaptive state of an [`AimdPolicy`] during a run.
#[derive(Debug, Clone, Copy)]
struct AimdState {
    policy: AimdPolicy,
    rate: f64,
    gate: SimTime,
}

impl AimdState {
    fn new(policy: AimdPolicy) -> Self {
        AimdState {
            policy,
            rate: policy.start_rate.clamp(policy.min_rate, policy.max_rate),
            gate: SimTime::ZERO,
        }
    }

    /// Advances the pacing gate after a send goes out at `now`.
    fn pace(&mut self, now: SimTime) {
        self.gate = now + SimDuration::from_secs_f64(1.0 / self.rate);
    }

    fn on_success(&mut self) {
        self.rate = (self.rate + self.policy.increase_per_success).min(self.policy.max_rate);
    }

    fn on_failure(&mut self) {
        self.rate = (self.rate * self.policy.decrease_factor).max(self.policy.min_rate);
    }
}

/// The client-side overload protections, all optional. With everything
/// `None` ([`ClientProtection::disabled`]) the chaos loop draws no extra
/// randomness and behaves bit-identically to the classic client.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientProtection {
    /// Cap on total re-sends per run.
    pub budget: Option<RetryBudget>,
    /// Circuit breaker on consecutive `Busy`/timeout responses.
    pub breaker: Option<BreakerPolicy>,
    /// AIMD send-rate controller.
    pub aimd: Option<AimdPolicy>,
}

impl ClientProtection {
    /// No protection: the classic chaos client.
    pub fn disabled() -> Self {
        ClientProtection::default()
    }

    /// The overload-suite default: a retry budget of 100 tokens refilling
    /// at 10/s plus a [`BreakerPolicy::overload_default`] breaker. AIMD
    /// stays off so the protected arm differs from the unprotected one by
    /// exactly the two mechanisms under test.
    pub fn overload_default() -> Self {
        ClientProtection {
            budget: Some(RetryBudget::new(100, 10.0)),
            breaker: Some(BreakerPolicy::overload_default()),
            aimd: None,
        }
    }

    /// `true` when any protection is armed.
    pub fn enabled(&self) -> bool {
        self.budget.is_some() || self.breaker.is_some() || self.aimd.is_some()
    }
}

/// Number-of-transactions accounting for one chaos run. Every scheduled
/// transaction lands in exactly one terminal class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeliveryAccounting {
    /// Transactions the client scheduled.
    pub scheduled: u64,
    /// Transactions confirmed at least once within the listen window.
    pub confirmed: u64,
    /// Transactions whose every submission was rejected at ingress and
    /// whose retry allowance ran out.
    pub rejected: u64,
    /// Transactions the system accepted but never confirmed before the
    /// client terminated.
    pub timed_out: u64,
    /// Transactions whose last submission was swallowed by an active loss
    /// burst before reaching the system.
    pub lost_in_fault: u64,
    /// Transactions whose send slot fell outside the listen window, so
    /// the client terminated before ever attempting them.
    pub unsent: u64,
    /// Transactions whose last answer was `Busy` (and the client gave up
    /// or ran out of budget), or that the circuit breaker held back until
    /// the run ended.
    pub backpressured: u64,
    /// Total re-sends performed (not counted in `scheduled`).
    pub retries: u64,
    /// `Busy` answers received across all submissions.
    pub busy_responses: u64,
    /// Retries wanted but dropped because the [`RetryBudget`] was dry.
    pub budget_exhausted: u64,
    /// Times the [`CircuitBreaker`] tripped open.
    pub breaker_opens: u64,
    /// Total virtual seconds of breaker-imposed cooldown.
    pub breaker_open_secs: f64,
}

impl DeliveryAccounting {
    /// Fraction of scheduled transactions confirmed.
    pub fn delivery_ratio(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.confirmed as f64 / self.scheduled as f64
        }
    }

    /// Sends per scheduled transaction: `(scheduled + retries) /
    /// scheduled`. 1.0 means no transaction was ever re-sent; values well
    /// above 1 during an overload pulse are the amplification that
    /// sustains metastable failures.
    pub fn retry_amplification(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            (self.scheduled + self.retries) as f64 / self.scheduled as f64
        }
    }

    /// `true` when every scheduled transaction is classified exactly once.
    pub fn is_complete(&self) -> bool {
        self.confirmed
            + self.rejected
            + self.timed_out
            + self.lost_in_fault
            + self.unsent
            + self.backpressured
            == self.scheduled
    }
}

/// The client-side observations of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Terminal per-transaction classification.
    pub accounting: DeliveryAccounting,
    /// Committed operations per virtual-time bucket (for throughput
    /// timelines and recovery detection). Bucket `i` covers
    /// `[i, i+1) * bucket_len` from the schedule base.
    pub buckets: Vec<u64>,
    /// Width of each bucket.
    pub bucket_len: SimDuration,
    /// Mean throughput over the active span (ops/s, formula 2).
    pub mtps: f64,
    /// Mean finalization latency over confirmed transactions (s).
    pub mfls: f64,
    /// 95th-percentile finalization latency (s).
    pub p95: f64,
    /// 99th-percentile finalization latency (s) — the gray-failure tail.
    pub p99: f64,
    /// Whether the system still served confirmations at the end.
    pub live: bool,
    /// The consensus safety monitor's verdict, for systems that carry one
    /// (the BFT chains). `None` means safety invariants are not applicable.
    pub safety: Option<SafetyReport>,
    /// The consensus liveness monitor's verdict at run end, for systems
    /// that carry one. `None` only for test doubles.
    pub liveness: Option<LivenessReport>,
}

impl ChaosRun {
    /// Mean bucket throughput (ops/s) over buckets fully inside
    /// `[from, to)`, or 0.0 if the range covers no full bucket.
    pub fn window_mtps(&self, from: SimTime, to: SimTime) -> f64 {
        let lo = (from.as_secs_f64() / self.bucket_len.as_secs_f64()).ceil() as usize;
        let hi = (to.as_secs_f64() / self.bucket_len.as_secs_f64()).floor() as usize;
        let hi = hi.min(self.buckets.len());
        if lo >= hi {
            return 0.0;
        }
        let ops: u64 = self.buckets[lo..hi].iter().sum();
        ops as f64 / ((hi - lo) as f64 * self.bucket_len.as_secs_f64())
    }

    /// Virtual seconds from `heal` until throughput first sustains at
    /// least `threshold` × the pre-fault mean over a three-bucket sliding
    /// window (summed, so block cadences longer than a bucket — Fabric's
    /// 2 s batch timeout against 1 s buckets — don't defeat detection).
    /// `None` if throughput never recovers (or never existed).
    pub fn recovery_secs(&self, crash: SimTime, heal: SimTime, threshold: f64) -> Option<f64> {
        const SUSTAIN: usize = 3;
        let pre = self.window_mtps(SimTime::ZERO, crash);
        if pre <= 0.0 {
            return None;
        }
        let needed = pre * self.bucket_len.as_secs_f64() * SUSTAIN as f64 * threshold;
        let heal_bucket = (heal.as_secs_f64() / self.bucket_len.as_secs_f64()).ceil() as usize;
        let n = self.buckets.len();
        (heal_bucket..n.saturating_sub(SUSTAIN - 1))
            .find(|&b| {
                (b..b + SUSTAIN)
                    .map(|i| self.buckets[i] as f64)
                    .sum::<f64>()
                    >= needed
            })
            .map(|b| (b as f64 * self.bucket_len.as_secs_f64() - heal.as_secs_f64()).max(0.0))
    }
}

/// What a pending client action is. Faults are not queued here: the
/// [`FaultScheduler`] is drained before each action, so a fault at `t`
/// always precedes a submission at `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    /// Check a transaction's finalization timeout (may schedule a re-send).
    Timeout(TxId),
    /// Send (or re-send) a transaction.
    Submit(TxId),
}

#[derive(Debug)]
struct Track {
    created: SimTime,
    attempts: u32,
    accepted_once: bool,
    last_was_client_lost: bool,
    last_was_busy: bool,
    confirmed: bool,
}

/// Spends a retry token, counting the drop when the bucket is dry. A run
/// without a budget always allows the retry.
fn take_retry_token(
    budget: &mut Option<RetryBudget>,
    now: SimTime,
    accounting: &mut DeliveryAccounting,
) -> bool {
    match budget {
        None => true,
        Some(b) => {
            if b.try_spend(now) {
                true
            } else {
                accounting.budget_exhausted += 1;
                false
            }
        }
    }
}

/// Runs `spec`'s schedule against `system` while replaying `plan`, with
/// `policy` governing re-sends. All randomness (ingress loss, backoff
/// jitter) derives from `seed`; identical inputs give identical runs.
///
/// Fault semantics: `CrashNode`/`RestartNode` route to
/// [`BlockchainSystem::crash_node`] / [`BlockchainSystem::recover_node`];
/// `EquivocateProposer`/`DoubleVote` route to
/// [`BlockchainSystem::inject_byzantine`] with the event's window converted
/// to an absolute expiry (CFT systems decline the injection and the run's
/// [`ChaosRun::safety`] stays `None`);
/// `JoinNode`/`LeaveNode` route to [`BlockchainSystem::join_node`] /
/// [`BlockchainSystem::leave_node`] (membership churn — the join starts the
/// catch-up path, the engine admits the voter only after sync completes);
/// network faults route to [`BlockchainSystem::apply_net_fault`]. A
/// [`FaultEvent::LossBurst`] additionally applies to the *client ingress*:
/// while the burst is active each submission is dropped with probability
/// `p` before reaching the system (the client cannot tell — only the
/// finalization timeout recovers such transactions).
pub fn run_chaos(
    system: &mut (dyn BlockchainSystem + Send),
    spec: &BenchmarkSpec,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    seed: u64,
) -> ChaosRun {
    run_chaos_protected(
        system,
        spec,
        plan,
        policy,
        &ClientProtection::disabled(),
        seed,
    )
}

/// [`run_chaos`] with client-side overload protections armed. The
/// schedule is the spec's own; see [`run_chaos_with_schedule`] for
/// campaigns that overlay extra traffic (overload pulses).
pub fn run_chaos_protected(
    system: &mut (dyn BlockchainSystem + Send),
    spec: &BenchmarkSpec,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    protection: &ClientProtection,
    seed: u64,
) -> ChaosRun {
    let schedule = build_schedule(
        spec.benchmark,
        spec.rate,
        spec.ops_per_tx,
        spec.windows,
        SeedDeriver::new(seed).seed("schedule", 0),
    );
    run_chaos_with_schedule(system, spec, plan, policy, protection, &schedule, seed)
}

/// The chaos loop against an explicit, already-sorted `schedule` (must be
/// ordered by `(at, tx.id())` with distinct ids). This is the overload
/// experiment's entry point: it merges a baseline schedule with a pulse
/// overlay before handing both to the same client.
pub fn run_chaos_with_schedule(
    system: &mut (dyn BlockchainSystem + Send),
    spec: &BenchmarkSpec,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    protection: &ClientProtection,
    schedule: &[ScheduledTx],
    seed: u64,
) -> ChaosRun {
    let seeds = SeedDeriver::new(seed);
    let mut loss_rng = seeds.rng("client-loss", 0);
    let mut backoff_rng = seeds.rng("backoff", 0);
    // Drawn from only when a breaker defers sends, so unprotected runs
    // stay bit-identical.
    let mut breaker_rng = seeds.rng("breaker", 0);

    let mut budget = protection.budget;
    let mut breaker = protection.breaker.map(CircuitBreaker::new);
    let mut aimd = protection.aimd.map(AimdState::new);

    let listen_end = SimTime::ZERO + spec.windows.listen;
    let bucket_len = SimDuration::from_secs(1);
    let n_buckets = (spec.windows.listen.as_secs_f64() / bucket_len.as_secs_f64()).ceil() as usize;

    let mut tracks: HashMap<TxId, Track> = HashMap::with_capacity(schedule.len());
    let mut originals: HashMap<TxId, TxId> = HashMap::new();
    let mut payloads: HashMap<TxId, coconut_types::ClientTx> = HashMap::new();
    let mut scheduler = FaultScheduler::new(plan.clone());
    let mut client_loss: Option<(f64, SimTime)> = None;

    // One queue of timed client actions; ties resolve fault < timeout <
    // submit, then by insertion order via the sequence number.
    let mut queue: BinaryHeap<Reverse<(SimTime, Action, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for sched in schedule {
        queue.push(Reverse((sched.at, Action::Submit(sched.tx.id()), seq)));
        seq += 1;
        payloads.insert(sched.tx.id(), sched.tx.clone());
    }

    let mut accounting = DeliveryAccounting {
        scheduled: schedule.len() as u64,
        ..DeliveryAccounting::default()
    };
    let mut buckets = vec![0u64; n_buckets];
    let mut latencies: Vec<f64> = Vec::new();
    let mut t_fstx: Option<SimTime> = None;
    let mut t_lrtx: Option<SimTime> = None;

    let harvest = |outcomes: Vec<coconut_types::TxOutcome>,
                   tracks: &mut HashMap<TxId, Track>,
                   originals: &HashMap<TxId, TxId>,
                   accounting: &mut DeliveryAccounting,
                   buckets: &mut [u64],
                   latencies: &mut Vec<f64>,
                   t_lrtx: &mut Option<SimTime>| {
        for o in outcomes {
            if !o.is_committed() || o.finalized_at > listen_end {
                continue;
            }
            let orig = originals.get(&o.tx).copied().unwrap_or(o.tx);
            let Some(track) = tracks.get_mut(&orig) else {
                continue;
            };
            if track.confirmed {
                continue; // a retry raced its original; count once
            }
            track.confirmed = true;
            accounting.confirmed += 1;
            latencies.push((o.finalized_at - track.created).as_secs_f64());
            *t_lrtx = Some(t_lrtx.map_or(o.finalized_at, |t| t.max(o.finalized_at)));
            let b = (o.finalized_at.as_secs_f64() / bucket_len.as_secs_f64()) as usize;
            if let Some(slot) = buckets.get_mut(b) {
                *slot += o.ops_confirmed() as u64;
            }
        }
    };

    while let Some(&Reverse((at, _, _))) = queue.peek() {
        // Interleave faults strictly before client actions at the same time.
        let fault_due = scheduler.next_due().filter(|&f| f <= at);
        if let Some(fat) = fault_due {
            harvest(
                system.run_until(fat),
                &mut tracks,
                &originals,
                &mut accounting,
                &mut buckets,
                &mut latencies,
                &mut t_lrtx,
            );
            while let Some((fat, event)) = scheduler.pop_due(fat) {
                match event {
                    FaultEvent::CrashNode(node) => {
                        system.crash_node(node);
                    }
                    FaultEvent::RestartNode(node) => {
                        system.recover_node(node);
                    }
                    FaultEvent::EquivocateProposer { node, window } => {
                        system.inject_byzantine(
                            node,
                            ByzantineBehaviour::EquivocateProposer,
                            fat + window,
                        );
                    }
                    FaultEvent::DoubleVote { node, window } => {
                        system.inject_byzantine(node, ByzantineBehaviour::DoubleVote, fat + window);
                    }
                    FaultEvent::JoinNode(node) => {
                        system.join_node(fat, node);
                    }
                    FaultEvent::LeaveNode(node) => {
                        system.leave_node(fat, node);
                    }
                    ref net_fault => {
                        if let FaultEvent::LossBurst { p, window } = *net_fault {
                            client_loss = Some((p, fat + window));
                        }
                        system.apply_net_fault(fat, net_fault);
                    }
                }
            }
            continue;
        }

        let Reverse((at, action, _)) = queue.pop().expect("peeked");
        if at > listen_end {
            break;
        }
        harvest(
            system.run_until(at),
            &mut tracks,
            &originals,
            &mut accounting,
            &mut buckets,
            &mut latencies,
            &mut t_lrtx,
        );

        match action {
            Action::Submit(orig) => {
                let track = tracks.entry(orig).or_insert(Track {
                    created: at,
                    attempts: 0,
                    accepted_once: false,
                    last_was_client_lost: false,
                    last_was_busy: false,
                    confirmed: false,
                });
                if track.confirmed {
                    continue; // confirmed while this retry was queued
                }
                // Client-side gates run before the attempt is counted: a
                // deferred send is re-queued, not consumed.
                if let Some(a) = aimd.as_mut() {
                    if at < a.gate {
                        queue.push(Reverse((a.gate, Action::Submit(orig), seq)));
                        seq += 1;
                        continue;
                    }
                    a.pace(at);
                }
                if let Some(b) = breaker.as_mut() {
                    if !b.allow(at) {
                        // Re-queue at the cooldown's end, jittered so the
                        // reopening breaker isn't hit by a synchronized
                        // herd of deferred sends.
                        let jitter = b
                            .policy()
                            .open_for
                            .mul_f64(b.policy().jitter.max(0.0) * breaker_rng.gen_f64());
                        queue.push(Reverse((
                            b.retry_at().max(at) + jitter,
                            Action::Submit(orig),
                            seq,
                        )));
                        seq += 1;
                        continue;
                    }
                }
                track.attempts += 1;
                t_fstx.get_or_insert(at);

                // Derive a fresh wire id per re-send so the system treats
                // it as a new transaction; confirmations map back.
                let wire_id = if track.attempts == 1 {
                    orig
                } else {
                    accounting.retries += 1;
                    let derived =
                        TxId::new(orig.client(), orig.seq() | (track.attempts as u64) << 56);
                    originals.insert(derived, orig);
                    derived
                };
                let template = &payloads[&orig];
                let tx = coconut_types::ClientTx::new(
                    wire_id,
                    template.thread(),
                    template.payloads().to_vec(),
                    at,
                );

                // Client-side ingress loss during an active burst window.
                if let Some((p, until)) = client_loss {
                    if at < until && loss_rng.gen_bool(p) {
                        track.last_was_client_lost = true;
                        if policy.enabled() {
                            queue.push(Reverse((
                                at + policy.finalization_timeout,
                                Action::Timeout(orig),
                                seq,
                            )));
                            seq += 1;
                        }
                        continue;
                    }
                }
                track.last_was_client_lost = false;
                track.last_was_busy = false;

                let outcome = system.submit(at, tx);
                if outcome.is_accepted() {
                    track.accepted_once = true;
                    if let Some(b) = breaker.as_mut() {
                        b.on_success();
                    }
                    if let Some(a) = aimd.as_mut() {
                        a.on_success();
                    }
                    if policy.enabled() {
                        queue.push(Reverse((
                            at + policy.finalization_timeout,
                            Action::Timeout(orig),
                            seq,
                        )));
                        seq += 1;
                    }
                } else if let Some(retry_after) = outcome.retry_after() {
                    // Busy: overload backpressure. The client honors the
                    // hold-off hint and the breaker counts the failure.
                    accounting.busy_responses += 1;
                    track.last_was_busy = true;
                    if let Some(b) = breaker.as_mut() {
                        b.on_failure(at, Some(retry_after));
                    }
                    if let Some(a) = aimd.as_mut() {
                        a.on_failure();
                    }
                    if policy.enabled()
                        && track.attempts <= policy.max_retries
                        && take_retry_token(&mut budget, at, &mut accounting)
                    {
                        let delay = policy
                            .backoff(track.attempts, &mut backoff_rng)
                            .max(retry_after);
                        queue.push(Reverse((at + delay, Action::Submit(orig), seq)));
                        seq += 1;
                    }
                } else if policy.enabled()
                    && track.attempts <= policy.max_retries
                    && take_retry_token(&mut budget, at, &mut accounting)
                {
                    // Rejected: a semantic refusal, not overload — the
                    // breaker ignores it.
                    let delay = policy.backoff(track.attempts, &mut backoff_rng);
                    queue.push(Reverse((at + delay, Action::Submit(orig), seq)));
                    seq += 1;
                }
                // else: terminal rejection, classified at the end.
            }
            Action::Timeout(orig) => {
                let track = tracks.get_mut(&orig).expect("timeout implies track");
                if track.confirmed || track.attempts > policy.max_retries {
                    continue;
                }
                if let Some(b) = breaker.as_mut() {
                    b.on_failure(at, None);
                }
                if let Some(a) = aimd.as_mut() {
                    a.on_failure();
                }
                if !take_retry_token(&mut budget, at, &mut accounting) {
                    continue;
                }
                let delay = policy.backoff(track.attempts, &mut backoff_rng);
                queue.push(Reverse((at + delay, Action::Submit(orig), seq)));
                seq += 1;
            }
        }
    }

    harvest(
        system.run_until(listen_end),
        &mut tracks,
        &originals,
        &mut accounting,
        &mut buckets,
        &mut latencies,
        &mut t_lrtx,
    );

    if let Some(b) = &breaker {
        accounting.breaker_opens = b.opens();
        accounting.breaker_open_secs = b.open_secs();
    }

    // Terminal classification of everything unconfirmed.
    for sched in schedule {
        match tracks.get(&sched.tx.id()) {
            // The client terminated before the send slot came up: the
            // transaction was never attempted, which is a distinct class
            // from a submission swallowed mid-fault.
            None => accounting.unsent += 1,
            Some(t) if t.confirmed => {}
            Some(t) if t.last_was_client_lost => accounting.lost_in_fault += 1,
            Some(t) if t.accepted_once => accounting.timed_out += 1,
            // Popped at least once but every send was deferred by the
            // breaker (attempts == 0), or the last answer was `Busy`:
            // the transaction was backpressured away.
            Some(t) if t.last_was_busy || t.attempts == 0 => accounting.backpressured += 1,
            Some(_) => accounting.rejected += 1,
        }
    }
    debug_assert!(accounting.is_complete());

    let mtps = match (t_fstx, t_lrtx) {
        (Some(first), Some(last)) if last > first => {
            let ops: u64 = buckets.iter().sum();
            ops as f64 / (last - first).as_secs_f64()
        }
        _ => 0.0,
    };
    let mfls = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    ChaosRun {
        accounting,
        buckets,
        bucket_len,
        mtps,
        mfls,
        p95,
        p99,
        live: system.is_live(),
        safety: system.safety_report(),
        liveness: system.liveness_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Windows;
    use crate::params::{build_system, SystemKind, SystemSetup};
    use coconut_types::PayloadKind;

    fn quick_spec(system: SystemKind, rate: f64) -> BenchmarkSpec {
        // A listen margin generous enough that the send-window tail can
        // confirm (and time-outed retries can land) before termination.
        BenchmarkSpec::new(system, PayloadKind::DoNothing)
            .rate(rate)
            .windows(Windows {
                send: SimDuration::from_secs(15),
                listen: SimDuration::from_secs(25),
            })
            .repetitions(1)
    }

    fn run(kind: SystemKind, plan: &FaultPlan, policy: &RetryPolicy, seed: u64) -> ChaosRun {
        let spec = quick_spec(kind, 100.0);
        let mut sys = build_system(kind, &SystemSetup::default(), seed);
        run_chaos(sys.as_mut(), &spec, plan, policy, seed)
    }

    #[test]
    fn fault_free_run_confirms_everything() {
        let r = run(
            SystemKind::Fabric,
            &FaultPlan::new(),
            &RetryPolicy::disabled(),
            7,
        );
        assert!(r.accounting.is_complete());
        assert_eq!(r.accounting.confirmed, r.accounting.scheduled);
        assert_eq!(r.accounting.retries, 0);
        assert!(r.mtps > 0.0);
        assert!(r.live);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(4),
                FaultEvent::LossBurst {
                    p: 0.05,
                    window: SimDuration::from_secs(4),
                },
            )
            .crash_window(
                &[coconut_types::NodeId(1)],
                SimTime::from_secs(5),
                SimTime::from_secs(9),
            );
        let a = run(SystemKind::Quorum, &plan, &RetryPolicy::chaos_default(), 3);
        let b = run(SystemKind::Quorum, &plan, &RetryPolicy::chaos_default(), 3);
        assert_eq!(a.accounting, b.accounting);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.mtps, b.mtps);
    }

    #[test]
    fn loss_burst_without_retry_loses_transactions() {
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            FaultEvent::LossBurst {
                p: 0.5,
                window: SimDuration::from_secs(8),
            },
        );
        let r = run(SystemKind::Fabric, &plan, &RetryPolicy::disabled(), 11);
        assert!(
            r.accounting.lost_in_fault > 0,
            "half the burst window is dropped"
        );
        assert!(r.accounting.delivery_ratio() < 0.95);
    }

    #[test]
    fn retry_recovers_loss_burst_transactions() {
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            FaultEvent::LossBurst {
                p: 0.05,
                window: SimDuration::from_secs(6),
            },
        );
        let r = run(SystemKind::Fabric, &plan, &RetryPolicy::chaos_default(), 11);
        assert!(r.accounting.retries > 0);
        assert!(
            r.accounting.delivery_ratio() >= 0.99,
            "retry must recover the burst: {:?}",
            r.accounting
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::chaos_default()
        };
        let mut rng = SimRng::seed_from_u64(0);
        let b1 = p.backoff(1, &mut rng);
        let b2 = p.backoff(2, &mut rng);
        let b9 = p.backoff(9, &mut rng);
        assert_eq!(b2, b1 * 2);
        assert_eq!(b9, p.max_backoff);
    }

    #[test]
    fn recovery_detection_finds_heal_point() {
        let r = ChaosRun {
            accounting: DeliveryAccounting::default(),
            buckets: vec![10, 10, 10, 0, 0, 0, 0, 10, 10, 10, 10],
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            p99: 0.0,
            live: true,
            safety: None,
            liveness: None,
        };
        let rec = r
            .recovery_secs(SimTime::from_secs(3), SimTime::from_secs(6), 0.7)
            .expect("recovers");
        assert_eq!(rec, 1.0, "buckets 7..10 sustain; heal at 6 → 1 s");
        // A run that never recovers reports None.
        let dead = ChaosRun {
            buckets: vec![10, 10, 0, 0, 0, 0, 0, 0],
            ..r
        };
        assert_eq!(
            dead.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(4), 0.7),
            None
        );
    }

    /// A bare run with the given 1 s buckets, for windowing edge cases.
    fn synthetic(buckets: Vec<u64>) -> ChaosRun {
        ChaosRun {
            accounting: DeliveryAccounting::default(),
            buckets,
            bucket_len: SimDuration::from_secs(1),
            mtps: 0.0,
            mfls: 0.0,
            p95: 0.0,
            p99: 0.0,
            live: true,
            safety: None,
            liveness: None,
        }
    }

    #[test]
    fn window_mtps_empty_and_degenerate_windows_are_zero() {
        let r = synthetic(vec![10, 20, 30, 40]);
        // Empty and inverted ranges cover no full bucket.
        assert_eq!(
            r.window_mtps(SimTime::from_secs(2), SimTime::from_secs(2)),
            0.0
        );
        assert_eq!(
            r.window_mtps(SimTime::from_secs(3), SimTime::from_secs(1)),
            0.0
        );
        // A sub-bucket window straddling a boundary contains no full
        // bucket either — partial buckets never count.
        let half = SimDuration::from_secs_f64(0.5);
        assert_eq!(
            r.window_mtps(SimTime::ZERO + half, SimTime::from_secs(1) + half),
            0.0
        );
        // A range reaching past the recorded buckets clamps to their end …
        assert_eq!(
            r.window_mtps(SimTime::from_secs(2), SimTime::from_secs(100)),
            35.0
        );
        // … and one entirely past it is empty.
        assert_eq!(
            r.window_mtps(SimTime::from_secs(50), SimTime::from_secs(100)),
            0.0
        );
        // Exact bucket edges include exactly the covered buckets.
        assert_eq!(r.window_mtps(SimTime::ZERO, SimTime::from_secs(2)), 15.0);
    }

    #[test]
    fn recovery_that_never_sustains_threshold_is_none() {
        // Post-heal throughput flickers but no three consecutive buckets
        // reach 70 % of the pre-fault mean (needed sum: 10 × 3 × 0.7 = 21).
        let r = synthetic(vec![10, 10, 10, 0, 0, 0, 9, 0, 0, 9, 0, 0]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(3), SimTime::from_secs(6), 0.7),
            None
        );
    }

    #[test]
    fn recovery_without_pre_fault_throughput_is_none() {
        // Nothing committed before the crash: there is no baseline to
        // recover to.
        let r = synthetic(vec![0, 0, 0, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(3), 0.7),
            None
        );
        // A crash at t = 0 leaves an empty pre-fault window: same verdict.
        let r = synthetic(vec![10, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::ZERO, SimTime::from_secs(1), 0.7),
            None
        );
    }

    #[test]
    fn recovery_at_exact_bucket_boundaries_is_instant() {
        // Crash and heal on exact bucket edges with an immediate comeback:
        // the heal bucket itself sustains, so recovery is 0 s.
        let r = synthetic(vec![10, 10, 0, 0, 10, 10, 10]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(2), SimTime::from_secs(4), 0.7),
            Some(0.0)
        );
    }

    #[test]
    fn recovery_with_heal_past_recorded_buckets_is_none() {
        // The heal lands beyond the recorded timeline: no sliding window
        // exists to sustain, so the run never counts as recovered.
        let r = synthetic(vec![10, 10, 0, 0]);
        assert_eq!(
            r.recovery_secs(SimTime::from_secs(1), SimTime::from_secs(9), 0.7),
            None
        );
    }

    #[test]
    fn breaker_trips_only_at_consecutive_failure_threshold() {
        let mut b = CircuitBreaker::new(BreakerPolicy::overload_default());
        let t = SimTime::from_secs(1);
        for _ in 0..4 {
            b.on_failure(t, None);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // A success resets the consecutive count: four more failures still
        // stay below the threshold of five.
        b.on_success();
        for _ in 0..4 {
            b.on_failure(t, None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(t, None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.allow(t), "sends are held while the cooldown runs");
        assert_eq!(b.retry_at(), t + SimDuration::from_secs(1));
    }

    #[test]
    fn breaker_half_open_probe_success_closes() {
        let mut b = CircuitBreaker::new(BreakerPolicy::overload_default());
        let t = SimTime::from_secs(1);
        for _ in 0..5 {
            b.on_failure(t, None);
        }
        // The cooldown elapses: the next allow() transitions to HalfOpen
        // and lets one probe through.
        let after = b.retry_at() + SimDuration::from_millis(1);
        assert!(b.allow(after));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(BreakerPolicy::overload_default());
        let t = SimTime::from_secs(1);
        for _ in 0..5 {
            b.on_failure(t, None);
        }
        let after = b.retry_at() + SimDuration::from_millis(1);
        assert!(b.allow(after));
        // One failed probe re-opens without needing five more failures.
        b.on_failure(after, None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert_eq!(b.retry_at(), after + SimDuration::from_secs(1));
    }

    #[test]
    fn breaker_cooldown_honors_retry_after_hint_and_accumulates_open_secs() {
        let mut b = CircuitBreaker::new(BreakerPolicy::overload_default());
        let t = SimTime::from_secs(1);
        for _ in 0..5 {
            b.on_failure(t, Some(SimDuration::from_secs(3)));
        }
        // The server's 3 s hold-off hint beats the 1 s policy cooldown.
        assert_eq!(b.retry_at(), t + SimDuration::from_secs(3));
        assert!((b.open_secs() - 3.0).abs() < 1e-9);
        // Stragglers failing while already open don't extend the cooldown.
        b.on_failure(
            t + SimDuration::from_secs(1),
            Some(SimDuration::from_secs(30)),
        );
        assert_eq!(b.retry_at(), t + SimDuration::from_secs(3));
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn retry_budget_drains_and_refills_in_virtual_time() {
        let mut budget = RetryBudget::new(2, 1.0);
        let t = SimTime::from_secs(1);
        assert!(budget.try_spend(t));
        assert!(budget.try_spend(t));
        assert!(!budget.try_spend(t), "the bucket starts with two tokens");
        // Half a virtual second refills half a token: still empty.
        assert!(!budget.try_spend(t + SimDuration::from_millis(500)));
        // Another second refills past one whole token ...
        assert!(budget.try_spend(t + SimDuration::from_millis(1500)));
        // ... and a long idle stretch caps at capacity, not beyond.
        let late = t + SimDuration::from_secs(60);
        assert!(budget.try_spend(late));
        assert!(budget.try_spend(late));
        assert!(!budget.try_spend(late));
    }

    #[test]
    fn aimd_rate_adapts_within_bounds() {
        let mut a = AimdState::new(AimdPolicy::for_rate(100.0));
        // Failures halve the rate down to the floor ...
        for _ in 0..20 {
            a.on_failure();
        }
        assert_eq!(a.rate, a.policy.min_rate);
        // ... successes regain it additively up to the ceiling.
        for _ in 0..1000 {
            a.on_success();
        }
        assert_eq!(a.rate, a.policy.max_rate);
        // Pacing schedules the next send one inter-send gap out.
        a.pace(SimTime::from_secs(2));
        assert_eq!(
            a.gate,
            SimTime::from_secs(2) + SimDuration::from_secs_f64(1.0 / a.rate)
        );
    }
}
