//! Workload generation: a pluggable [`Workload`] trait and the payload
//! streams of the paper's three interface execution layers plus the
//! BLOCKBENCH-style Smallbank and YCSB applications.
//!
//! Every generator is deterministic and stateless: payload *i* of workload
//! thread *(client, thread)* is a pure function of those coordinates. This
//! lets the KeyValue-Get benchmark read exactly the keys the preceding
//! KeyValue-Set benchmark wrote (§4.1: benchmarks form units) without any
//! shared state, and it makes the BankingApp-SendPayment benchmark pay from
//! account *n* to account *n + 1* as the paper prescribes — deliberately
//! provoking overwrite conflicts. The trait adds two hooks the pure
//! function cannot express: a [`Workload::preload`] of ledger state to
//! install before the run, and a post-run [`Workload::verify`] invariant
//! over the final [`LedgerState`].

use coconut_iel::LedgerState;
use coconut_types::{AccountId, ClientId, Payload, PayloadKind, SeedDeriver, ThreadId};

use crate::zipf::{unit_from_hash, Zipf};

/// A deterministic, stateless transaction generator: an application under
/// benchmark.
///
/// Implementations must be pure in [`Workload::payload_at`] — the same
/// `(client, thread, seq)` always yields the same payload, across runs,
/// `--jobs` splits, and system subsets — because every byte-invariance
/// guarantee of the campaign goldens rests on it.
///
/// The `Debug` bound lets compiled artifacts that embed a workload (e.g.
/// [`crate::scenario::Timeline`]) stay debuggable.
pub trait Workload: std::fmt::Debug {
    /// A short stable name ("KeyValue-Set", "Smallbank", "YCSB").
    fn name(&self) -> &str;

    /// The payload kinds this workload emits. For the paper's single-kind
    /// benchmark phases this is one kind; mixed workloads list every kind
    /// their stream can produce.
    fn phases(&self) -> &[PayloadKind];

    /// The `seq`-th payload of workload thread `(client, thread)`.
    fn payload_at(&self, client: ClientId, thread: ThreadId, seq: u64) -> Payload;

    /// Payloads to install directly in the system's ledger before the run
    /// (bypassing consensus): account pools, initial keyspace. Defaults to
    /// no preload — the paper's workloads create their own state.
    fn preload(&self) -> Vec<Payload> {
        Vec::new()
    }

    /// Checks a post-run invariant over the committed ledger (e.g.
    /// Smallbank's conserved total balance). Defaults to no invariant.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    fn verify(&self, ledger: &LedgerState) -> Result<(), String> {
        let _ = ledger;
        Ok(())
    }
}

/// Builds a globally unique 64-bit key for `(client, thread, seq)`.
///
/// Bits: `client` in the top 12, `thread` in the next 12, `seq` below —
/// collision-free for any realistic experiment size.
pub fn unique_key(client: ClientId, thread: ThreadId, seq: u64) -> u64 {
    ((client.0 as u64) << 52) | ((thread.0 as u64) << 40) | (seq & 0xFF_FFFF_FFFF)
}

/// The account a workload thread's `seq`-th banking payload refers to.
pub fn account(client: ClientId, thread: ThreadId, seq: u64) -> AccountId {
    AccountId(unique_key(client, thread, seq))
}

/// Opening balance for created checking and saving accounts.
pub const OPENING_BALANCE: u64 = 1_000_000;

/// Workload threads per client; payments interleave across them.
const THREADS: u32 = 4;

/// Accounts per thread that the payment workload cycles over. Payments
/// revisit this bounded pool instead of marching through fresh accounts,
/// so conflicts persist for the whole benchmark — the sustained
/// serializability pressure behind the paper's SendPayment findings.
pub const PAYMENT_POOL: u64 = 64;

/// The `s`-th payment of thread `t` pays from the `((t + s) mod 4)`-th
/// thread's pool account `s mod PAYMENT_POOL` to the *next* account in the
/// client-wide interleaved order. Concurrent threads of one client
/// therefore form payment chains over overlapping accounts — the
/// "account *n* pays account *n + 1*" interference the paper's SendPayment
/// is designed to provoke, across the whole client rather than within
/// isolated per-thread silos.
fn payment_endpoints(client: ClientId, thread: ThreadId, seq: u64) -> (AccountId, AccountId) {
    let idx = seq % PAYMENT_POOL;
    let u = (thread.0 + (seq % THREADS as u64) as u32) % THREADS;
    let from = account(client, ThreadId(u), idx);
    let to = if u + 1 < THREADS {
        account(client, ThreadId(u + 1), idx)
    } else {
        account(client, ThreadId(0), (idx + 1) % PAYMENT_POOL)
    };
    (from, to)
}

/// Payment amount used by BankingApp-SendPayment.
pub const PAYMENT_AMOUNT: u64 = 1;

/// Generates the `seq`-th payload of benchmark `kind` for a workload
/// thread.
///
/// # Example
///
/// ```
/// use coconut::workload::payload_for;
/// use coconut_types::{ClientId, PayloadKind, ThreadId};
///
/// let set = payload_for(PayloadKind::KeyValueSet, ClientId(0), ThreadId(1), 7);
/// let get = payload_for(PayloadKind::KeyValueGet, ClientId(0), ThreadId(1), 7);
/// // The Get benchmark reads what the Set benchmark wrote:
/// match (set, get) {
///     (coconut_types::Payload::KeyValueSet { key: k1, .. },
///      coconut_types::Payload::KeyValueGet { key: k2 }) => assert_eq!(k1, k2),
///     _ => unreachable!(),
/// }
/// ```
pub fn payload_for(kind: PayloadKind, client: ClientId, thread: ThreadId, seq: u64) -> Payload {
    // Thin compat shim: the stream lives in the trait instance now.
    paper(kind).payload_at(client, thread, seq)
}

/// One benchmark phase of the paper's workloads as a [`Workload`] instance.
///
/// [`paper`] builds these; [`payload_for`] is a shim over them, and
/// [`BenchmarkUnit`] groups them into the paper's back-to-back units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperWorkload {
    kind: PayloadKind,
}

/// The paper workload that emits benchmark `kind`'s payload stream.
pub const fn paper(kind: PayloadKind) -> PaperWorkload {
    PaperWorkload { kind }
}

impl Workload for PaperWorkload {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn phases(&self) -> &[PayloadKind] {
        std::slice::from_ref(&self.kind)
    }

    fn payload_at(&self, client: ClientId, thread: ThreadId, seq: u64) -> Payload {
        match self.kind {
            PayloadKind::DoNothing => Payload::DoNothing,
            PayloadKind::KeyValueSet => {
                Payload::key_value_set(unique_key(client, thread, seq), seq)
            }
            PayloadKind::KeyValueGet => Payload::key_value_get(unique_key(client, thread, seq)),
            PayloadKind::CreateAccount => Payload::create_account(
                account(client, thread, seq),
                OPENING_BALANCE,
                OPENING_BALANCE,
            ),
            // The paper: "SendPayment sends a payment from account_n to
            // account_{n+1}", which makes concurrent payments interact.
            PayloadKind::SendPayment => {
                let (from, to) = payment_endpoints(client, thread, seq);
                Payload::send_payment(from, to, PAYMENT_AMOUNT)
            }
            PayloadKind::Balance => {
                let (from, _) = payment_endpoints(client, thread, seq);
                Payload::balance(from)
            }
            other => unreachable!("no paper benchmark emits {other:?}"),
        }
    }
}

/// The benchmark units of §4.1: benchmarks that run back-to-back on the
/// *same* deployed system (only clients are re-provisioned in between).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkUnit {
    /// `DoNothing` alone.
    DoNothing,
    /// `KeyValue-Set` followed by `KeyValue-Get`.
    KeyValue,
    /// `CreateAccount`, then `SendPayment`, then `Balance`.
    BankingApp,
}

impl BenchmarkUnit {
    /// All three units in the paper's execution order.
    pub const ALL: [BenchmarkUnit; 3] = [
        BenchmarkUnit::DoNothing,
        BenchmarkUnit::KeyValue,
        BenchmarkUnit::BankingApp,
    ];

    /// The unit's benchmark phases as [`Workload`] instances, in order —
    /// the single source of the phase lists ([`BenchmarkUnit::benchmarks`]
    /// and [`BenchmarkUnit::containing`] both derive from it).
    pub fn workloads(self) -> &'static [PaperWorkload] {
        const DO_NOTHING: [PaperWorkload; 1] = [paper(PayloadKind::DoNothing)];
        const KEY_VALUE: [PaperWorkload; 2] = [
            paper(PayloadKind::KeyValueSet),
            paper(PayloadKind::KeyValueGet),
        ];
        const BANKING_APP: [PaperWorkload; 3] = [
            paper(PayloadKind::CreateAccount),
            paper(PayloadKind::SendPayment),
            paper(PayloadKind::Balance),
        ];
        match self {
            BenchmarkUnit::DoNothing => &DO_NOTHING,
            BenchmarkUnit::KeyValue => &KEY_VALUE,
            BenchmarkUnit::BankingApp => &BANKING_APP,
        }
    }

    /// The benchmarks of this unit, in order.
    pub fn benchmarks(self) -> impl Iterator<Item = PayloadKind> {
        self.workloads().iter().map(|w| w.kind)
    }

    /// The unit a paper benchmark belongs to. Kinds outside the paper's
    /// set (the Smallbank extensions) belong to no unit and fall back to
    /// `BankingApp`, matching the historical catch-all.
    pub fn containing(kind: PayloadKind) -> BenchmarkUnit {
        BenchmarkUnit::ALL
            .into_iter()
            .find(|u| u.benchmarks().any(|k| k == kind))
            .unwrap_or(BenchmarkUnit::BankingApp)
    }
}

/// Contention parameters shared by the BLOCKBENCH-style workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionKnobs {
    /// Zipf exponent of the key/account popularity distribution
    /// (0 = uniform; ≈1 = classic YCSB "zipfian"; higher = hotter).
    pub zipf_s: f64,
    /// Fraction of draws forced into the hot set (the top 5 % of ranks),
    /// on top of the Zipfian skew. `0.0` disables the hot set.
    pub hot_fraction: f64,
    /// Number of accounts (Smallbank) or keys (YCSB) in the preloaded
    /// pool.
    pub account_pool: u64,
}

impl Default for ContentionKnobs {
    fn default() -> Self {
        ContentionKnobs {
            zipf_s: 0.9,
            hot_fraction: 0.2,
            account_pool: 256,
        }
    }
}

impl ContentionKnobs {
    /// Validates and freezes the knobs into a sampler.
    fn sampler(&self) -> Zipf {
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot_fraction must be in [0, 1]"
        );
        Zipf::new(self.account_pool.max(1), self.zipf_s)
    }

    /// Size of the hot set: the top 5 % of ranks, at least one.
    fn hot_set(&self) -> u64 {
        (self.account_pool / 20).max(1)
    }
}

/// Fixed deriver key for workload-internal draws. The streams are pure
/// functions of `(client, thread, seq)` by design — like the paper
/// workloads they do not vary with the experiment seed, which is what
/// keeps campaign goldens byte-invariant under `--jobs`/subset filters.
const WORKLOAD_DRAW_KEY: u64 = 0x5EED_B10C_BE4C_4E55;

/// Draws a Zipf-distributed rank for `(label, uk)` with hot-set mixing.
fn contended_rank(seeds: &SeedDeriver, zipf: &Zipf, knobs: &ContentionKnobs, uk: u64) -> u64 {
    let hot_u = unit_from_hash(seeds.seed("hot", uk));
    let key_u = unit_from_hash(seeds.seed("rank", uk));
    if hot_u < knobs.hot_fraction {
        let hot = knobs.hot_set();
        ((key_u * hot as f64) as u64).min(hot - 1)
    } else {
        zipf.sample(key_u)
    }
}

/// BLOCKBENCH's Smallbank: the classic 6-op transfer mix over a preloaded
/// pool of checking/savings account pairs, with account popularity skewed
/// by [`ContentionKnobs`].
///
/// Every operation moves money between the two balances of one account or
/// between two accounts, so the pool's total balance is invariant —
/// [`Workload::verify`] checks it from the final ledger alone.
#[derive(Debug, Clone)]
pub struct Smallbank {
    knobs: ContentionKnobs,
    zipf: Zipf,
    seeds: SeedDeriver,
}

/// The payload kinds the Smallbank mix emits.
const SMALLBANK_PHASES: [PayloadKind; 6] = [
    PayloadKind::TransactSavings,
    PayloadKind::DepositChecking,
    PayloadKind::WriteCheck,
    PayloadKind::Amalgamate,
    PayloadKind::SendPayment,
    PayloadKind::Balance,
];

impl Smallbank {
    /// Builds the workload; the Zipf CDF over the account pool is
    /// precomputed here.
    pub fn new(knobs: ContentionKnobs) -> Self {
        Smallbank {
            zipf: knobs.sampler(),
            seeds: SeedDeriver::new(WORKLOAD_DRAW_KEY),
            knobs,
        }
    }

    /// The total balance the pool must conserve.
    pub fn expected_total(&self) -> u64 {
        self.knobs.account_pool * 2 * OPENING_BALANCE
    }

    fn draw_account(&self, salt: u64, uk: u64) -> AccountId {
        AccountId(contended_rank(
            &self.seeds,
            &self.zipf,
            &self.knobs,
            uk ^ salt,
        ))
    }
}

impl Workload for Smallbank {
    fn name(&self) -> &str {
        "Smallbank"
    }

    fn phases(&self) -> &[PayloadKind] {
        &SMALLBANK_PHASES
    }

    fn payload_at(&self, client: ClientId, thread: ThreadId, seq: u64) -> Payload {
        let uk = unique_key(client, thread, seq);
        let op = self.seeds.seed("sb-op", uk) % 100;
        let amount = 1 + self.seeds.seed("sb-amt", uk) % 10;
        let a = self.draw_account(0, uk);
        // Second party of two-account ops: an independent draw. WriteCheck
        // and Amalgamate tolerate self-transfers (the executor reissues the
        // state unchanged), but SendPayment is the legacy "a pays b" op
        // whose two blind writes assume distinct parties — rotate the payee
        // off the payer so the conserved-total invariant stays provable.
        let b = self.draw_account(0x9E37_79B9_7F4A_7C15, uk);
        match op {
            0..=14 => Payload::balance(a),
            15..=29 => Payload::transact_savings(a, amount),
            30..=44 => Payload::deposit_checking(a, amount),
            45..=59 => Payload::write_check(a, b, amount),
            60..=74 => Payload::amalgamate(a, b),
            _ => {
                let pool = self.knobs.account_pool.max(2);
                let to = if b == a {
                    AccountId((b.0 + 1) % pool)
                } else {
                    b
                };
                Payload::send_payment(a, to, amount)
            }
        }
    }

    fn preload(&self) -> Vec<Payload> {
        (0..self.knobs.account_pool)
            .map(|a| Payload::create_account(AccountId(a), OPENING_BALANCE, OPENING_BALANCE))
            .collect()
    }

    fn verify(&self, ledger: &LedgerState) -> Result<(), String> {
        let total = ledger.total_balance();
        let expected = self.expected_total();
        if total != expected {
            return Err(format!(
                "Smallbank conservation violated: total balance {total}, expected {expected}"
            ));
        }
        Ok(())
    }
}

/// BLOCKBENCH's YCSB port: a read/update/insert mix over a bounded,
/// preloaded keyspace whose key popularity follows a seeded Zipfian
/// distribution (50 % update, 45 % read, 5 % insert — workload-A-like with
/// a small growth component).
#[derive(Debug, Clone)]
pub struct Ycsb {
    knobs: ContentionKnobs,
    zipf: Zipf,
    seeds: SeedDeriver,
}

/// The payload kinds the YCSB mix emits.
const YCSB_PHASES: [PayloadKind; 2] = [PayloadKind::KeyValueSet, PayloadKind::KeyValueGet];

impl Ycsb {
    /// Builds the workload; the Zipf CDF over the keyspace is precomputed
    /// here.
    pub fn new(knobs: ContentionKnobs) -> Self {
        Ycsb {
            zipf: knobs.sampler(),
            seeds: SeedDeriver::new(WORKLOAD_DRAW_KEY),
            knobs,
        }
    }

    fn draw_key(&self, uk: u64) -> u64 {
        contended_rank(&self.seeds, &self.zipf, &self.knobs, uk)
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &str {
        "YCSB"
    }

    fn phases(&self) -> &[PayloadKind] {
        &YCSB_PHASES
    }

    fn payload_at(&self, client: ClientId, thread: ThreadId, seq: u64) -> Payload {
        let uk = unique_key(client, thread, seq);
        let op = self.seeds.seed("ycsb-op", uk) % 100;
        match op {
            // Update: blind write to a popular key.
            0..=49 => Payload::key_value_set(self.draw_key(uk), seq),
            // Read: popular key, always preloaded so it never misses.
            50..=94 => Payload::key_value_get(self.draw_key(uk)),
            // Insert: a fresh key outside the pool (uniquified by the
            // thread coordinates, like the paper's KeyValue-Set stream).
            _ => Payload::key_value_set(self.knobs.account_pool + uk, seq),
        }
    }

    fn preload(&self) -> Vec<Payload> {
        (0..self.knobs.account_pool)
            .map(|k| Payload::key_value_set(k, k))
            .collect()
    }

    fn verify(&self, ledger: &LedgerState) -> Result<(), String> {
        let pool = self.knobs.account_pool;
        if (ledger.kv_count() as u64) < pool {
            return Err(format!(
                "YCSB keyspace shrank: {} keys, preloaded {pool}",
                ledger.kv_count()
            ));
        }
        for k in 0..pool {
            if ledger.kv_get(k).is_none() {
                return Err(format!("YCSB preloaded key {k} vanished"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_unique_across_threads_and_clients() {
        let mut seen = HashSet::new();
        for c in 0..4u32 {
            for t in 0..4u32 {
                for s in 0..500u64 {
                    assert!(seen.insert(unique_key(ClientId(c), ThreadId(t), s)));
                }
            }
        }
    }

    #[test]
    fn get_reads_what_set_wrote() {
        for s in 0..100 {
            let set = payload_for(PayloadKind::KeyValueSet, ClientId(2), ThreadId(3), s);
            let get = payload_for(PayloadKind::KeyValueGet, ClientId(2), ThreadId(3), s);
            let (Payload::KeyValueSet { key: k1, .. }, Payload::KeyValueGet { key: k2 }) =
                (set, get)
            else {
                panic!("wrong payload kinds");
            };
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn payments_chain_across_threads() {
        // Thread 0's 5th payment starts at thread (0+5)%4 = 1's account 5
        // and pays the next thread's account 5.
        let p = payload_for(PayloadKind::SendPayment, ClientId(0), ThreadId(0), 5);
        let Payload::SendPayment { from, to, amount } = p else {
            panic!("wrong kind");
        };
        assert_eq!(from, account(ClientId(0), ThreadId(1), 5));
        assert_eq!(to, account(ClientId(0), ThreadId(2), 5));
        assert_eq!(amount, PAYMENT_AMOUNT);
        // The pool wraps: payment 69 (seq 5 + 64) reuses pool slot 5.
        let wrapped = payload_for(
            PayloadKind::SendPayment,
            ClientId(0),
            ThreadId(0),
            5 + PAYMENT_POOL,
        );
        let Payload::SendPayment { from: f2, .. } = wrapped else {
            panic!("wrong kind");
        };
        assert_eq!(f2, from, "same pool slot after wrapping");
    }

    #[test]
    fn concurrent_threads_form_interfering_chains() {
        // At the same seq, the four threads' payments touch overlapping
        // accounts: thread t pays u → u+1, thread t+1 pays u+1 → u+2, ...
        let c = ClientId(2);
        let seq = 8;
        let mut touched: Vec<AccountId> = Vec::new();
        for t in 0..4u32 {
            let Payload::SendPayment { from, to, .. } =
                payload_for(PayloadKind::SendPayment, c, ThreadId(t), seq)
            else {
                panic!("wrong kind");
            };
            touched.push(from);
            touched.push(to);
        }
        let n = touched.len();
        touched.sort();
        touched.dedup();
        assert!(touched.len() < n, "the chains must share accounts");
    }

    #[test]
    fn payments_and_balances_reference_created_accounts() {
        // Every account a payment or balance references at seq s must have
        // been created by some thread's CreateAccount at seq s or s+1.
        let c = ClientId(1);
        for t in 0..4u32 {
            for s in 0..40u64 {
                let Payload::SendPayment { from, to, .. } =
                    payload_for(PayloadKind::SendPayment, c, ThreadId(t), s)
                else {
                    panic!("wrong kind");
                };
                for a in [from, to] {
                    let covered = (0..4u32)
                        .any(|u| (0..PAYMENT_POOL).any(|k| account(c, ThreadId(u), k) == a));
                    assert!(
                        covered,
                        "payment references an account outside the pool: {a}"
                    );
                }
                let Payload::Balance { account: b } =
                    payload_for(PayloadKind::Balance, c, ThreadId(t), s)
                else {
                    panic!("wrong kind");
                };
                assert_eq!(b, from, "balance reads the payment's source account");
            }
        }
    }

    #[test]
    fn units_cover_all_benchmarks_in_order() {
        let all: Vec<PayloadKind> = BenchmarkUnit::ALL
            .iter()
            .flat_map(|u| u.benchmarks())
            .collect();
        assert_eq!(all, PayloadKind::ALL.to_vec());
        assert_eq!(
            BenchmarkUnit::containing(PayloadKind::Balance),
            BenchmarkUnit::BankingApp
        );
        assert_eq!(
            BenchmarkUnit::containing(PayloadKind::KeyValueGet),
            BenchmarkUnit::KeyValue
        );
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in PayloadKind::ALL {
            assert_eq!(
                payload_for(kind, ClientId(3), ThreadId(1), 42),
                payload_for(kind, ClientId(3), ThreadId(1), 42)
            );
        }
    }

    #[test]
    fn trait_streams_match_legacy_payload_for_bit_for_bit() {
        // The API-redesign contract: every paper workload reimplemented on
        // the trait reproduces the legacy free-function stream exactly,
        // over a broad (client, thread, seq) grid.
        for kind in PayloadKind::ALL {
            let w = paper(kind);
            assert_eq!(w.phases(), &[kind]);
            assert_eq!(w.name(), kind.label());
            for c in 0..4u32 {
                for t in 0..4u32 {
                    for s in (0..2000u64).step_by(37).chain([u32::MAX as u64, 1 << 39]) {
                        let (client, thread) = (ClientId(c), ThreadId(t));
                        assert_eq!(
                            w.payload_at(client, thread, s),
                            payload_for(kind, client, thread, s),
                            "{kind:?} diverged at ({c}, {t}, {s})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_workloads_have_no_preload_and_trivial_verify() {
        let w = paper(PayloadKind::SendPayment);
        assert!(w.preload().is_empty());
        let empty = coconut_iel::LedgerState::of_world(&coconut_iel::WorldState::new());
        assert!(w.verify(&empty).is_ok());
    }

    #[test]
    fn unit_workloads_and_benchmarks_agree() {
        for unit in BenchmarkUnit::ALL {
            let from_workloads: Vec<PayloadKind> = unit
                .workloads()
                .iter()
                .flat_map(|w| w.phases().iter().copied())
                .collect();
            assert_eq!(from_workloads, unit.benchmarks().collect::<Vec<_>>());
            for w in unit.workloads() {
                assert_eq!(BenchmarkUnit::containing(w.kind), unit);
            }
        }
        // Smallbank kinds belong to no paper unit: the documented
        // fall-back is BankingApp.
        assert_eq!(
            BenchmarkUnit::containing(PayloadKind::Amalgamate),
            BenchmarkUnit::BankingApp
        );
    }

    #[test]
    fn smallbank_stream_is_deterministic_and_stays_in_pool() {
        let knobs = ContentionKnobs {
            zipf_s: 1.1,
            hot_fraction: 0.3,
            account_pool: 64,
        };
        let w = Smallbank::new(knobs);
        assert_eq!(w.name(), "Smallbank");
        assert_eq!(w.phases(), &SMALLBANK_PHASES);
        assert_eq!(w.preload().len(), 64);
        let w2 = Smallbank::new(knobs);
        let mut kinds_seen = HashSet::new();
        for c in 0..4u32 {
            for t in 0..4u32 {
                for s in 0..200u64 {
                    let p = w.payload_at(ClientId(c), ThreadId(t), s);
                    assert_eq!(p, w2.payload_at(ClientId(c), ThreadId(t), s));
                    kinds_seen.insert(p.kind());
                    let in_pool = |a: AccountId| a.0 < knobs.account_pool;
                    match p {
                        Payload::Balance { account }
                        | Payload::TransactSavings { account, .. }
                        | Payload::DepositChecking { account, .. } => {
                            assert!(in_pool(account));
                        }
                        Payload::WriteCheck { from, to, .. }
                        | Payload::Amalgamate { from, to }
                        | Payload::SendPayment { from, to, .. } => {
                            assert!(in_pool(from) && in_pool(to));
                        }
                        other => panic!("unexpected Smallbank payload {other:?}"),
                    }
                }
            }
        }
        // The mix exercises all six ops.
        assert_eq!(kinds_seen.len(), 6, "got {kinds_seen:?}");
    }

    #[test]
    fn smallbank_verify_checks_conservation() {
        let w = Smallbank::new(ContentionKnobs {
            zipf_s: 0.5,
            hot_fraction: 0.0,
            account_pool: 4,
        });
        let mut state = coconut_iel::WorldState::new();
        for p in w.preload() {
            state.apply(&p).unwrap();
        }
        assert!(w
            .verify(&coconut_iel::LedgerState::of_world(&state))
            .is_ok());
        // Apply a few hundred generated ops; conservation must hold.
        for s in 0..300u64 {
            let _ = state.apply(&w.payload_at(ClientId(0), ThreadId(0), s));
        }
        assert!(w
            .verify(&coconut_iel::LedgerState::of_world(&state))
            .is_ok());
        // A minted coin breaks it.
        state
            .apply(&Payload::create_account(AccountId(999), 1, 0))
            .unwrap();
        assert!(w
            .verify(&coconut_iel::LedgerState::of_world(&state))
            .is_err());
    }

    #[test]
    fn ycsb_reads_always_hit_preloaded_keys() {
        let knobs = ContentionKnobs {
            zipf_s: 1.2,
            hot_fraction: 0.2,
            account_pool: 128,
        };
        let w = Ycsb::new(knobs);
        assert_eq!(w.name(), "YCSB");
        let mut state = coconut_iel::WorldState::new();
        for p in w.preload() {
            state.apply(&p).unwrap();
        }
        for s in 0..500u64 {
            let p = w.payload_at(ClientId(1), ThreadId(2), s);
            state
                .apply(&p)
                .unwrap_or_else(|e| panic!("payload {s} failed: {e:?}"));
        }
        assert!(w
            .verify(&coconut_iel::LedgerState::of_world(&state))
            .is_ok());
    }

    #[test]
    fn higher_skew_concentrates_smallbank_accounts() {
        // The hottest account's draw share must grow with the contention
        // knobs — the axis the contention campaign sweeps.
        let share_of_hottest = |zipf_s: f64, hot_fraction: f64| {
            let w = Smallbank::new(ContentionKnobs {
                zipf_s,
                hot_fraction,
                account_pool: 64,
            });
            let mut counts = std::collections::HashMap::new();
            let mut total = 0u64;
            for t in 0..4u32 {
                for s in 0..400u64 {
                    match w.payload_at(ClientId(0), ThreadId(t), s) {
                        Payload::Balance { account }
                        | Payload::TransactSavings { account, .. }
                        | Payload::DepositChecking { account, .. }
                        | Payload::WriteCheck { from: account, .. }
                        | Payload::Amalgamate { from: account, .. }
                        | Payload::SendPayment { from: account, .. } => {
                            *counts.entry(account).or_insert(0u64) += 1;
                            total += 1;
                        }
                        _ => {}
                    }
                }
            }
            *counts.values().max().unwrap() as f64 / total as f64
        };
        let low = share_of_hottest(0.2, 0.05);
        let mid = share_of_hottest(0.9, 0.3);
        let high = share_of_hottest(1.4, 0.7);
        assert!(low < mid && mid < high, "{low} < {mid} < {high} violated");
    }
}
