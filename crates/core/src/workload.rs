//! Workload generation: the payload streams of the three interface
//! execution layers.
//!
//! The generator is deterministic and stateless: payload *i* of workload
//! thread *(client, thread)* is a pure function of those coordinates. This
//! lets the KeyValue-Get benchmark read exactly the keys the preceding
//! KeyValue-Set benchmark wrote (§4.1: benchmarks form units) without any
//! shared state, and it makes the BankingApp-SendPayment benchmark pay from
//! account *n* to account *n + 1* as the paper prescribes — deliberately
//! provoking overwrite conflicts.

use coconut_types::{AccountId, ClientId, Payload, PayloadKind, ThreadId};

/// Builds a globally unique 64-bit key for `(client, thread, seq)`.
///
/// Bits: `client` in the top 12, `thread` in the next 12, `seq` below —
/// collision-free for any realistic experiment size.
pub fn unique_key(client: ClientId, thread: ThreadId, seq: u64) -> u64 {
    ((client.0 as u64) << 52) | ((thread.0 as u64) << 40) | (seq & 0xFF_FFFF_FFFF)
}

/// The account a workload thread's `seq`-th banking payload refers to.
pub fn account(client: ClientId, thread: ThreadId, seq: u64) -> AccountId {
    AccountId(unique_key(client, thread, seq))
}

/// Opening balance for created checking and saving accounts.
pub const OPENING_BALANCE: u64 = 1_000_000;

/// Workload threads per client; payments interleave across them.
const THREADS: u32 = 4;

/// Accounts per thread that the payment workload cycles over. Payments
/// revisit this bounded pool instead of marching through fresh accounts,
/// so conflicts persist for the whole benchmark — the sustained
/// serializability pressure behind the paper's SendPayment findings.
pub const PAYMENT_POOL: u64 = 64;

/// The `s`-th payment of thread `t` pays from the `((t + s) mod 4)`-th
/// thread's pool account `s mod PAYMENT_POOL` to the *next* account in the
/// client-wide interleaved order. Concurrent threads of one client
/// therefore form payment chains over overlapping accounts — the
/// "account *n* pays account *n + 1*" interference the paper's SendPayment
/// is designed to provoke, across the whole client rather than within
/// isolated per-thread silos.
fn payment_endpoints(client: ClientId, thread: ThreadId, seq: u64) -> (AccountId, AccountId) {
    let idx = seq % PAYMENT_POOL;
    let u = (thread.0 + (seq % THREADS as u64) as u32) % THREADS;
    let from = account(client, ThreadId(u), idx);
    let to = if u + 1 < THREADS {
        account(client, ThreadId(u + 1), idx)
    } else {
        account(client, ThreadId(0), (idx + 1) % PAYMENT_POOL)
    };
    (from, to)
}

/// Payment amount used by BankingApp-SendPayment.
pub const PAYMENT_AMOUNT: u64 = 1;

/// Generates the `seq`-th payload of benchmark `kind` for a workload
/// thread.
///
/// # Example
///
/// ```
/// use coconut::workload::payload_for;
/// use coconut_types::{ClientId, PayloadKind, ThreadId};
///
/// let set = payload_for(PayloadKind::KeyValueSet, ClientId(0), ThreadId(1), 7);
/// let get = payload_for(PayloadKind::KeyValueGet, ClientId(0), ThreadId(1), 7);
/// // The Get benchmark reads what the Set benchmark wrote:
/// match (set, get) {
///     (coconut_types::Payload::KeyValueSet { key: k1, .. },
///      coconut_types::Payload::KeyValueGet { key: k2 }) => assert_eq!(k1, k2),
///     _ => unreachable!(),
/// }
/// ```
pub fn payload_for(kind: PayloadKind, client: ClientId, thread: ThreadId, seq: u64) -> Payload {
    match kind {
        PayloadKind::DoNothing => Payload::DoNothing,
        PayloadKind::KeyValueSet => Payload::key_value_set(unique_key(client, thread, seq), seq),
        PayloadKind::KeyValueGet => Payload::key_value_get(unique_key(client, thread, seq)),
        PayloadKind::CreateAccount => Payload::create_account(
            account(client, thread, seq),
            OPENING_BALANCE,
            OPENING_BALANCE,
        ),
        // The paper: "SendPayment sends a payment from account_n to
        // account_{n+1}", which makes concurrent payments interact.
        PayloadKind::SendPayment => {
            let (from, to) = payment_endpoints(client, thread, seq);
            Payload::send_payment(from, to, PAYMENT_AMOUNT)
        }
        PayloadKind::Balance => {
            let (from, _) = payment_endpoints(client, thread, seq);
            Payload::balance(from)
        }
    }
}

/// The benchmark units of §4.1: benchmarks that run back-to-back on the
/// *same* deployed system (only clients are re-provisioned in between).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkUnit {
    /// `DoNothing` alone.
    DoNothing,
    /// `KeyValue-Set` followed by `KeyValue-Get`.
    KeyValue,
    /// `CreateAccount`, then `SendPayment`, then `Balance`.
    BankingApp,
}

impl BenchmarkUnit {
    /// All three units in the paper's execution order.
    pub const ALL: [BenchmarkUnit; 3] = [
        BenchmarkUnit::DoNothing,
        BenchmarkUnit::KeyValue,
        BenchmarkUnit::BankingApp,
    ];

    /// The benchmarks of this unit, in order.
    pub fn benchmarks(self) -> &'static [PayloadKind] {
        match self {
            BenchmarkUnit::DoNothing => &[PayloadKind::DoNothing],
            BenchmarkUnit::KeyValue => &[PayloadKind::KeyValueSet, PayloadKind::KeyValueGet],
            BenchmarkUnit::BankingApp => &[
                PayloadKind::CreateAccount,
                PayloadKind::SendPayment,
                PayloadKind::Balance,
            ],
        }
    }

    /// The unit a benchmark belongs to.
    pub fn containing(kind: PayloadKind) -> BenchmarkUnit {
        match kind {
            PayloadKind::DoNothing => BenchmarkUnit::DoNothing,
            PayloadKind::KeyValueSet | PayloadKind::KeyValueGet => BenchmarkUnit::KeyValue,
            _ => BenchmarkUnit::BankingApp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_unique_across_threads_and_clients() {
        let mut seen = HashSet::new();
        for c in 0..4u32 {
            for t in 0..4u32 {
                for s in 0..500u64 {
                    assert!(seen.insert(unique_key(ClientId(c), ThreadId(t), s)));
                }
            }
        }
    }

    #[test]
    fn get_reads_what_set_wrote() {
        for s in 0..100 {
            let set = payload_for(PayloadKind::KeyValueSet, ClientId(2), ThreadId(3), s);
            let get = payload_for(PayloadKind::KeyValueGet, ClientId(2), ThreadId(3), s);
            let (Payload::KeyValueSet { key: k1, .. }, Payload::KeyValueGet { key: k2 }) =
                (set, get)
            else {
                panic!("wrong payload kinds");
            };
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn payments_chain_across_threads() {
        // Thread 0's 5th payment starts at thread (0+5)%4 = 1's account 5
        // and pays the next thread's account 5.
        let p = payload_for(PayloadKind::SendPayment, ClientId(0), ThreadId(0), 5);
        let Payload::SendPayment { from, to, amount } = p else {
            panic!("wrong kind");
        };
        assert_eq!(from, account(ClientId(0), ThreadId(1), 5));
        assert_eq!(to, account(ClientId(0), ThreadId(2), 5));
        assert_eq!(amount, PAYMENT_AMOUNT);
        // The pool wraps: payment 69 (seq 5 + 64) reuses pool slot 5.
        let wrapped = payload_for(
            PayloadKind::SendPayment,
            ClientId(0),
            ThreadId(0),
            5 + PAYMENT_POOL,
        );
        let Payload::SendPayment { from: f2, .. } = wrapped else {
            panic!("wrong kind");
        };
        assert_eq!(f2, from, "same pool slot after wrapping");
    }

    #[test]
    fn concurrent_threads_form_interfering_chains() {
        // At the same seq, the four threads' payments touch overlapping
        // accounts: thread t pays u → u+1, thread t+1 pays u+1 → u+2, ...
        let c = ClientId(2);
        let seq = 8;
        let mut touched: Vec<AccountId> = Vec::new();
        for t in 0..4u32 {
            let Payload::SendPayment { from, to, .. } =
                payload_for(PayloadKind::SendPayment, c, ThreadId(t), seq)
            else {
                panic!("wrong kind");
            };
            touched.push(from);
            touched.push(to);
        }
        let n = touched.len();
        touched.sort();
        touched.dedup();
        assert!(touched.len() < n, "the chains must share accounts");
    }

    #[test]
    fn payments_and_balances_reference_created_accounts() {
        // Every account a payment or balance references at seq s must have
        // been created by some thread's CreateAccount at seq s or s+1.
        let c = ClientId(1);
        for t in 0..4u32 {
            for s in 0..40u64 {
                let Payload::SendPayment { from, to, .. } =
                    payload_for(PayloadKind::SendPayment, c, ThreadId(t), s)
                else {
                    panic!("wrong kind");
                };
                for a in [from, to] {
                    let covered = (0..4u32)
                        .any(|u| (0..PAYMENT_POOL).any(|k| account(c, ThreadId(u), k) == a));
                    assert!(
                        covered,
                        "payment references an account outside the pool: {a}"
                    );
                }
                let Payload::Balance { account: b } =
                    payload_for(PayloadKind::Balance, c, ThreadId(t), s)
                else {
                    panic!("wrong kind");
                };
                assert_eq!(b, from, "balance reads the payment's source account");
            }
        }
    }

    #[test]
    fn units_cover_all_benchmarks_in_order() {
        let all: Vec<PayloadKind> = BenchmarkUnit::ALL
            .iter()
            .flat_map(|u| u.benchmarks().iter().copied())
            .collect();
        assert_eq!(all, PayloadKind::ALL.to_vec());
        assert_eq!(
            BenchmarkUnit::containing(PayloadKind::Balance),
            BenchmarkUnit::BankingApp
        );
        assert_eq!(
            BenchmarkUnit::containing(PayloadKind::KeyValueGet),
            BenchmarkUnit::KeyValue
        );
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in PayloadKind::ALL {
            assert_eq!(
                payload_for(kind, ClientId(3), ThreadId(1), 42),
                payload_for(kind, ClientId(3), ThreadId(1), 42)
            );
        }
    }
}
