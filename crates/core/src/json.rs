//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! The workspace builds with no network registry, so `serde_json` is
//! replaced by this module: just enough JSON to persist and reload
//! benchmark results ([`crate::report::save_json`] /
//! [`crate::report::load_json`]). Numbers are `f64`, objects preserve
//! insertion order, and the writer emits stable two-space-indented output
//! so that identical results serialize byte-identically.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// final line (like `serde_json::to_string_pretty`).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}.0", n.trunc() as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error (with byte offset).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences copied whole).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("Corda \"OS\"\n".into())),
            ("mtps".into(), Json::Num(13.25)),
            ("count".into(), Json::Num(6000.0)),
            ("live".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "reps".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5e-3)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn stable_output_is_byte_identical() {
        let v = Json::Arr(vec![Json::Num(0.1), Json::Num(3.0)]);
        assert_eq!(v.to_pretty(), v.to_pretty());
        assert!(v.to_pretty().contains("3.0"), "integral floats keep .0");
    }

    #[test]
    fn accessors_fetch_typed_fields() {
        let v = parse(r#"{"a": 1.5, "b": "x", "c": [true], "d": false}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" {\n \"k\" : \"a\\tb\\u0041\" } ").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("a\tbA"));
    }
}
