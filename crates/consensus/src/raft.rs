//! Raft consensus — the ordering service behind the modelled Hyperledger
//! Fabric (the paper benchmarks Fabric 2.2.1 with Raft orderers, Table 2).
//!
//! This is a message-level Raft implementation over the simulated network:
//! randomized election timeouts, `RequestVote`/`AppendEntries` RPCs, log
//! matching, majority commit, and leader heartbeats. Batches of client
//! commands form log entries (one entry per cut batch, mirroring Fabric's
//! block-per-entry use of etcd/raft).
//!
//! Crash-stop faults can be injected with [`RaftCluster::crash`]; the
//! remaining nodes elect a new leader and keep committing as long as a
//! majority is alive.

use std::collections::BTreeSet;

use coconut_simnet::{FaultEvent, NetConfig, NetSim, NetStats, Topology};
use coconut_types::{NodeId, SimDuration, SimTime};

use crate::liveness::{LivenessMonitor, LivenessReport};
use crate::{majority_quorum, BatchConfig, Command, CommittedBatch, CpuModel, Membership};

/// Base catch-up time a learner spends replicating state before its
/// `AddVoter` entry is proposed, plus a per-committed-entry transfer cost.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_BATCH: SimDuration = SimDuration::from_millis(2);
const RECONFIG_RETRY: SimDuration = SimDuration::from_millis(100);

/// A single-server membership change carried by a log entry (Raft applies
/// reconfiguration through the log, one server at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConfigChange {
    AddVoter(NodeId),
    RemoveVoter(NodeId),
}

/// Raft protocol messages plus local timers.
#[derive(Debug, Clone)]
enum RaftMsg {
    /// Follower/candidate election timer. `generation` invalidates stale timers.
    ElectionTimeout { generation: u64 },
    /// Leader heartbeat timer.
    HeartbeatTimer { generation: u64 },
    /// Batch-cut timer at the leader.
    BatchTimer,
    RequestVote {
        term: u64,
        candidate: NodeId,
        last_log_index: u64,
        last_log_term: u64,
    },
    Vote {
        term: u64,
        from: NodeId,
        granted: bool,
    },
    AppendEntries {
        term: u64,
        leader: NodeId,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    },
    AppendResp {
        term: u64,
        from: NodeId,
        success: bool,
        match_index: u64,
    },
    /// A learner's catch-up finished: propose its `AddVoter` entry.
    SyncDone { node: NodeId },
    /// Retry queued membership changes until a leader can append them.
    ReconfigTimer,
}

/// One replicated log entry: a batch of commands cut by the leader, or a
/// single-server membership change.
#[derive(Debug, Clone)]
struct LogEntry {
    term: u64,
    batch: Vec<Command>,
    config: Option<ConfigChange>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

#[derive(Debug)]
struct RaftNode {
    role: Role,
    term: u64,
    voted_for: Option<NodeId>,
    votes: u32,
    log: Vec<LogEntry>,
    commit_index: u64,
    timer_generation: u64,
    // leader state
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    alive: bool,
}

impl RaftNode {
    fn new(n: usize) -> Self {
        RaftNode {
            role: Role::Follower,
            term: 0,
            voted_for: None,
            votes: 0,
            log: Vec::new(),
            commit_index: 0,
            timer_generation: 0,
            next_index: vec![1; n],
            match_index: vec![0; n],
            alive: true,
        }
    }

    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else {
            self.log[(index - 1) as usize].term
        }
    }
}

/// Configuration for a [`RaftCluster`]; build with [`RaftCluster::builder`].
#[derive(Debug, Clone)]
pub struct RaftBuilder {
    nodes: u32,
    standby: u32,
    topology: Option<Topology>,
    net: NetConfig,
    seed: u64,
    batch: BatchConfig,
    election_timeout_min: SimDuration,
    heartbeat_interval: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
}

impl RaftBuilder {
    /// Node placement (defaults to round-robin over `nodes` servers).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Pre-provisions `k` standby servers (ids `nodes..nodes + k`) that
    /// start outside the voter set and can be admitted at runtime via
    /// [`RaftCluster::join`]. Default 0.
    pub fn standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }

    /// Network characteristics (defaults to [`NetConfig::lan`]).
    pub fn net(mut self, c: NetConfig) -> Self {
        self.net = c;
        self
    }

    /// RNG seed for election jitter and link latency.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Batch-cut policy for log entries.
    pub fn batch(mut self, b: BatchConfig) -> Self {
        self.batch = b;
        self
    }

    /// Lower bound of the randomized election timeout (upper bound is 2×).
    pub fn election_timeout(mut self, d: SimDuration) -> Self {
        self.election_timeout_min = d;
        self
    }

    /// Leader heartbeat interval.
    pub fn heartbeat_interval(mut self, d: SimDuration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Fixed CPU cost of handling any protocol message.
    pub fn proc_per_msg(mut self, d: SimDuration) -> Self {
        self.proc_per_msg = d;
        self
    }

    /// Additional CPU cost per command carried in an `AppendEntries`.
    pub fn proc_per_command(mut self, d: SimDuration) -> Self {
        self.proc_per_command = d;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> RaftCluster {
        let n = self.nodes;
        let total = n + self.standby;
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::round_robin(total, total));
        assert_eq!(
            topology.node_count(),
            total,
            "topology must cover baseline + standby nodes"
        );
        let mut net = NetSim::new(topology, self.net, self.seed);
        let mut nodes: Vec<RaftNode> = (0..total).map(|_| RaftNode::new(total as usize)).collect();
        // Arm initial election timers with per-node jitter (voters only;
        // standby servers stay inert until admitted).
        for (i, node) in nodes.iter_mut().enumerate().take(n as usize) {
            node.timer_generation = 1;
            let jitter = SimDuration::from_micros(
                self.election_timeout_min.as_micros() * (i as u64 + 1) / n as u64,
            );
            net.timer(
                NodeId(i as u32),
                self.election_timeout_min + jitter,
                RaftMsg::ElectionTimeout { generation: 1 },
            );
        }
        RaftCluster {
            nodes,
            membership: Membership::new(n, self.standby),
            syncing: BTreeSet::new(),
            pending_reconfig: Vec::new(),
            net,
            cpu: CpuModel::new(total),
            batch: self.batch,
            pending: Vec::new(),
            pending_since: None,
            committed: Vec::new(),
            emitted_index: 0,
            election_timeout_min: self.election_timeout_min,
            heartbeat_interval: self.heartbeat_interval,
            proc_per_msg: self.proc_per_msg,
            proc_per_command: self.proc_per_command,
            round: 0,
            liveness: LivenessMonitor::default(),
        }
    }
}

/// A simulated Raft cluster.
///
/// # Example
///
/// ```
/// use coconut_consensus::{raft::RaftCluster, Command};
/// use coconut_types::{ClientId, SimTime, TxId};
///
/// let mut cluster = RaftCluster::builder(3).seed(1).build();
/// cluster.run_until(SimTime::from_secs(2));
/// assert!(cluster.leader().is_some());
/// cluster.submit(Command::unit(TxId::new(ClientId(0), 0)));
/// let committed = cluster.run_until(SimTime::from_secs(5));
/// assert_eq!(committed.len(), 1);
/// ```
#[derive(Debug)]
pub struct RaftCluster {
    nodes: Vec<RaftNode>,
    /// Epoch-versioned voter set over the provisioned universe.
    membership: Membership,
    /// Learners replicating state ahead of their `AddVoter` entry.
    syncing: BTreeSet<NodeId>,
    /// Membership changes waiting for a leader to append them.
    pending_reconfig: Vec<ConfigChange>,
    net: NetSim<RaftMsg>,
    cpu: CpuModel,
    batch: BatchConfig,
    pending: Vec<Command>,
    pending_since: Option<SimTime>,
    committed: Vec<CommittedBatch>,
    emitted_index: u64,
    election_timeout_min: SimDuration,
    heartbeat_interval: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
    round: u64,
    /// Commit-cadence and leadership-churn liveness tracker.
    liveness: LivenessMonitor,
}

impl RaftCluster {
    /// Starts building a cluster of `nodes` Raft nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn builder(nodes: u32) -> RaftBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        RaftBuilder {
            nodes,
            standby: 0,
            topology: None,
            net: NetConfig::lan(),
            seed: 0,
            batch: BatchConfig::default(),
            election_timeout_min: SimDuration::from_millis(150),
            heartbeat_interval: SimDuration::from_millis(50),
            proc_per_msg: SimDuration::from_micros(20),
            proc_per_command: SimDuration::from_micros(2),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The current leader, if one is established.
    pub fn leader(&self) -> Option<NodeId> {
        let max_term = self.nodes.iter().map(|n| n.term).max()?;
        self.nodes
            .iter()
            .enumerate()
            .position(|(i, n)| {
                n.alive
                    && n.role == Role::Leader
                    && n.term == max_term
                    && self.membership.is_active(NodeId(i as u32))
            })
            .map(|i| NodeId(i as u32))
    }

    /// Servers currently in the voter set.
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current membership configuration epoch (bumps when a config entry
    /// commits).
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Starts admitting a pre-provisioned standby server: it becomes a
    /// learner that replicates the log (catch-up takes longer the more
    /// entries were committed), and when the transfer completes its
    /// `AddVoter` entry is proposed through the log. The server only joins
    /// the voter set — bumping the epoch — when that entry commits.
    /// Returns `false` if `node` is unknown, already a voter, or already
    /// syncing.
    pub fn join(&mut self, node: NodeId) -> bool {
        if node.0 >= self.membership.provisioned()
            || self.membership.is_active(node)
            || self.syncing.contains(&node)
        {
            return false;
        }
        self.syncing.insert(node);
        // Reset every server's replication cursor for the learner so the
        // leader ships it the full log from entry 1.
        let idx = node.0 as usize;
        for n in &mut self.nodes {
            n.next_index[idx] = 1;
            n.match_index[idx] = 0;
        }
        let sync = SYNC_BASE + SYNC_PER_BATCH * self.emitted_index;
        self.net.timer(node, sync, RaftMsg::SyncDone { node });
        true
    }

    /// Initiates removal of a voter through the log: a `RemoveVoter` entry
    /// is appended by the leader and takes effect — bumping the epoch —
    /// when it commits. Returns `false` if `node` is not a voter or is the
    /// last one.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.membership.is_active(node) || self.membership.active_count() <= 1 {
            return false;
        }
        if self
            .pending_reconfig
            .contains(&ConfigChange::RemoveVoter(node))
        {
            return false;
        }
        self.pending_reconfig.push(ConfigChange::RemoveVoter(node));
        self.try_submit_reconfig();
        true
    }

    /// Network counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The liveness monitor's verdict as of the current virtual time.
    pub fn liveness_report(&self) -> LivenessReport {
        self.liveness.report(self.net.now())
    }

    /// Applies a network-level fault (partition, heal, loss burst, latency
    /// spike) to the cluster's message fabric. Crash/restart events are not
    /// network faults and return `false`.
    pub fn apply_net_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        self.net.apply_fault(at, event)
    }

    /// Commands accepted but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits a command for ordering. Commands queue at the cluster and
    /// are cut into log entries by the current leader.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push(cmd);
        if self.pending_since.is_none() {
            self.pending_since = Some(self.net.now());
            if let Some(leader) = self.leader() {
                self.net
                    .timer(leader, self.batch.max_wait, RaftMsg::BatchTimer);
            }
        }
        if self.pending.len() >= self.batch.max_commands {
            if let Some(leader) = self.leader() {
                self.cut_batch(leader);
            }
        }
    }

    /// Crashes a node (crash-stop: it drops all traffic until recovered).
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = false;
    }

    /// Recovers a crashed node as a follower.
    pub fn recover(&mut self, node: NodeId) {
        let gen;
        {
            let n = &mut self.nodes[node.0 as usize];
            n.alive = true;
            n.role = Role::Follower;
            n.timer_generation += 1;
            gen = n.timer_generation;
        }
        // Non-voters stay inert: no election timer until promoted.
        if !self.membership.is_active(node) {
            return;
        }
        self.net.timer(
            node,
            self.election_timeout_min * 2,
            RaftMsg::ElectionTimeout { generation: gen },
        );
    }

    /// Runs the protocol until `deadline`, returning batches committed in
    /// this window (in commit order).
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CommittedBatch> {
        while let Some(ev) = self.net.pop_at_or_before(deadline) {
            self.dispatch(ev.dst, ev.at, ev.msg);
        }
        self.net.advance_to(deadline);
        std::mem::take(&mut self.committed)
    }

    /// Due time of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    fn dispatch(&mut self, me: NodeId, at: SimTime, msg: RaftMsg) {
        if !self.nodes[me.0 as usize].alive {
            return;
        }
        if !self.membership.is_active(me) {
            // Non-voters: a learner replicates the log (so it is caught up
            // before its `AddVoter` entry commits) but holds no vote and
            // starts no election; other standby servers are inert.
            match msg {
                RaftMsg::SyncDone { node } => self.on_sync_done(node),
                RaftMsg::ReconfigTimer => self.try_submit_reconfig(),
                RaftMsg::AppendEntries {
                    term,
                    leader,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                } if self.syncing.contains(&me) => self.on_append_entries(
                    me,
                    at,
                    term,
                    leader,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                ),
                _ => {}
            }
            return;
        }
        match msg {
            RaftMsg::ElectionTimeout { generation } => self.on_election_timeout(me, generation),
            RaftMsg::HeartbeatTimer { generation } => self.on_heartbeat_timer(me, generation),
            RaftMsg::BatchTimer => {
                if self.nodes[me.0 as usize].role == Role::Leader && !self.pending.is_empty() {
                    self.cut_batch(me);
                }
            }
            RaftMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(me, at, term, candidate, last_log_index, last_log_term),
            RaftMsg::Vote {
                term,
                from,
                granted,
            } => self.on_vote(me, at, term, from, granted),
            RaftMsg::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                me,
                at,
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            ),
            RaftMsg::AppendResp {
                term,
                from,
                success,
                match_index,
            } => self.on_append_resp(me, at, term, from, success, match_index),
            RaftMsg::SyncDone { node } => self.on_sync_done(node),
            RaftMsg::ReconfigTimer => self.try_submit_reconfig(),
        }
    }

    /// A learner finished state transfer: queue its `AddVoter` entry. The
    /// node stays a non-voting learner until that entry commits.
    fn on_sync_done(&mut self, node: NodeId) {
        if !self.syncing.contains(&node) || self.membership.is_active(node) {
            return;
        }
        self.pending_reconfig.push(ConfigChange::AddVoter(node));
        self.try_submit_reconfig();
    }

    /// Appends queued membership changes at the current leader as config
    /// log entries; retries on a timer while no leader is available.
    fn try_submit_reconfig(&mut self) {
        if self.pending_reconfig.is_empty() {
            return;
        }
        let Some(leader) = self.leader() else {
            // Host the retry timer on the change's subject node, which is
            // alive by construction.
            let host = match self.pending_reconfig[0] {
                ConfigChange::AddVoter(n) | ConfigChange::RemoveVoter(n) => n,
            };
            self.net.timer(host, RECONFIG_RETRY, RaftMsg::ReconfigTimer);
            return;
        };
        for change in std::mem::take(&mut self.pending_reconfig) {
            let node = &mut self.nodes[leader.0 as usize];
            let term = node.term;
            node.log.push(LogEntry {
                term,
                batch: Vec::new(),
                config: Some(change),
            });
            let last = node.last_log_index();
            node.match_index[leader.0 as usize] = last;
        }
        self.replicate(leader);
        if self.membership.active_count() == 1 {
            self.try_advance_commit(leader);
        }
    }

    /// Applies a committed config entry: this is the epoch boundary.
    fn apply_config(&mut self, change: ConfigChange) {
        match change {
            ConfigChange::AddVoter(node) => {
                if self.membership.join(node) {
                    self.syncing.remove(&node);
                    if self.nodes[node.0 as usize].alive {
                        self.arm_election_timer(node);
                    }
                }
            }
            ConfigChange::RemoveVoter(node) => {
                if self.membership.leave(node) {
                    let n = &mut self.nodes[node.0 as usize];
                    // A removed leader steps down; a removed follower just
                    // stops being counted. Bumping the generation cancels
                    // any outstanding timers either way.
                    if n.role == Role::Leader {
                        n.role = Role::Follower;
                    }
                    n.timer_generation += 1;
                }
            }
        }
    }

    fn arm_election_timer(&mut self, me: NodeId) {
        let gen;
        {
            let node = &mut self.nodes[me.0 as usize];
            node.timer_generation += 1;
            gen = node.timer_generation;
        }
        // Deterministic jitter derived from node id and generation.
        let base = self.election_timeout_min.as_micros();
        let jitter = (me.0 as u64 * 7919 + gen * 104_729) % base;
        self.net.timer(
            me,
            SimDuration::from_micros(base + jitter),
            RaftMsg::ElectionTimeout { generation: gen },
        );
    }

    fn on_election_timeout(&mut self, me: NodeId, generation: u64) {
        {
            let node = &self.nodes[me.0 as usize];
            if node.timer_generation != generation || node.role == Role::Leader {
                return;
            }
        }
        // Become candidate.
        let (term, last_log_index, last_log_term);
        {
            let node = &mut self.nodes[me.0 as usize];
            node.role = Role::Candidate;
            node.term += 1;
            node.voted_for = Some(me);
            node.votes = 1;
            term = node.term;
            last_log_index = node.last_log_index();
            last_log_term = node.last_log_term();
        }
        self.arm_election_timer(me);
        if self.membership.active_count() == 1 {
            self.become_leader(me);
            return;
        }
        let proc = self.proc_per_msg;
        self.net
            .broadcast_delayed(me, proc, 64, |_| RaftMsg::RequestVote {
                term,
                candidate: me,
                last_log_index,
                last_log_term,
            });
    }

    fn on_request_vote(
        &mut self,
        me: NodeId,
        at: SimTime,
        term: u64,
        candidate: NodeId,
        last_log_index: u64,
        last_log_term: u64,
    ) {
        let done = self.cpu.process(me, at, self.proc_per_msg);
        let extra = done - at;
        let granted;
        {
            let node = &mut self.nodes[me.0 as usize];
            if term > node.term {
                node.term = term;
                node.role = Role::Follower;
                node.voted_for = None;
            }
            let log_ok = last_log_term > node.last_log_term()
                || (last_log_term == node.last_log_term()
                    && last_log_index >= node.last_log_index());
            granted = term == node.term
                && log_ok
                && (node.voted_for.is_none() || node.voted_for == Some(candidate));
            if granted {
                node.voted_for = Some(candidate);
            }
            if granted || term > node.term {
                // reset election timer on grant
            }
        }
        if granted {
            self.arm_election_timer(me);
        }
        let reply_term = self.nodes[me.0 as usize].term;
        self.net.send_delayed(
            me,
            candidate,
            extra,
            32,
            RaftMsg::Vote {
                term: reply_term,
                from: me,
                granted,
            },
        );
    }

    fn on_vote(&mut self, me: NodeId, _at: SimTime, term: u64, _from: NodeId, granted: bool) {
        let should_lead;
        {
            let node = &mut self.nodes[me.0 as usize];
            if term > node.term {
                node.term = term;
                node.role = Role::Follower;
                node.voted_for = None;
                return;
            }
            if node.role != Role::Candidate || term != node.term || !granted {
                return;
            }
            node.votes += 1;
            should_lead = node.votes >= majority_quorum(self.membership.active_count());
        }
        if should_lead {
            self.become_leader(me);
        }
    }

    fn become_leader(&mut self, me: NodeId) {
        // Every leadership transition — including the initial election —
        // counts as one cluster-wide view change.
        self.liveness.observe_view_change(self.net.now());
        let gen;
        {
            let last = self.nodes[me.0 as usize].last_log_index();
            let node = &mut self.nodes[me.0 as usize];
            node.role = Role::Leader;
            node.timer_generation += 1;
            gen = node.timer_generation;
            for v in &mut node.next_index {
                *v = last + 1;
            }
            for v in &mut node.match_index {
                *v = 0;
            }
            node.match_index[me.0 as usize] = last;
        }
        self.net.timer(
            me,
            SimDuration::ZERO,
            RaftMsg::HeartbeatTimer { generation: gen },
        );
        // Any queued client work can now be cut.
        if !self.pending.is_empty() {
            self.net.timer(me, self.batch.max_wait, RaftMsg::BatchTimer);
        }
    }

    fn on_heartbeat_timer(&mut self, me: NodeId, generation: u64) {
        {
            let node = &self.nodes[me.0 as usize];
            if node.role != Role::Leader || node.timer_generation != generation {
                return;
            }
        }
        self.replicate(me);
        self.net.timer(
            me,
            self.heartbeat_interval,
            RaftMsg::HeartbeatTimer { generation },
        );
    }

    /// Cuts the pending queue into a log entry at the leader and replicates.
    fn cut_batch(&mut self, leader: NodeId) {
        if self.pending.is_empty() {
            return;
        }
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        self.pending_since = if self.pending.is_empty() {
            None
        } else {
            Some(self.net.now())
        };
        {
            let term = self.nodes[leader.0 as usize].term;
            let node = &mut self.nodes[leader.0 as usize];
            node.log.push(LogEntry {
                term,
                batch,
                config: None,
            });
            let last = node.last_log_index();
            node.match_index[leader.0 as usize] = last;
        }
        // Re-arm the batch timer for what remains.
        if !self.pending.is_empty() {
            self.net
                .timer(leader, self.batch.max_wait, RaftMsg::BatchTimer);
        }
        self.replicate(leader);
        // A single-voter cluster commits instantly.
        if self.membership.active_count() == 1 {
            self.try_advance_commit(leader);
        }
    }

    fn replicate(&mut self, leader: NodeId) {
        let n = self.nodes.len();
        let now = self.net.now();
        for peer in 0..n {
            let peer_id = NodeId(peer as u32);
            if peer_id == leader
                || (!self.membership.is_active(peer_id) && !self.syncing.contains(&peer_id))
            {
                continue;
            }
            let (term, prev_index, prev_term, entries, leader_commit, bytes);
            {
                let node = &self.nodes[leader.0 as usize];
                let next = node.next_index[peer];
                prev_index = next - 1;
                prev_term = node.term_at(prev_index);
                entries = node.log[(next - 1) as usize..].to_vec();
                term = node.term;
                leader_commit = node.commit_index;
                bytes = 64
                    + entries
                        .iter()
                        .flat_map(|e| e.batch.iter())
                        .map(|c| c.bytes as usize)
                        .sum::<usize>();
            }
            let cmds: usize = entries.iter().map(|e| e.batch.len()).sum();
            let cost = self.proc_per_msg + self.proc_per_command * cmds as u64;
            let done = self.cpu.process(leader, now, cost);
            self.net.send_delayed(
                leader,
                peer_id,
                done - now,
                bytes,
                RaftMsg::AppendEntries {
                    term,
                    leader,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        me: NodeId,
        at: SimTime,
        term: u64,
        leader: NodeId,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    ) {
        let cmds: usize = entries.iter().map(|e| e.batch.len()).sum();
        let cost = self.proc_per_msg + self.proc_per_command * cmds as u64;
        let done = self.cpu.process(me, at, cost);
        let extra = done - at;

        let (success, match_index, reply_term);
        {
            let node = &mut self.nodes[me.0 as usize];
            if term > node.term {
                node.term = term;
                node.voted_for = None;
            }
            if term == node.term {
                node.role = Role::Follower;
            }
            let log_ok = term == node.term
                && prev_index <= node.last_log_index()
                && node.term_at(prev_index) == prev_term;
            if log_ok {
                // Truncate any conflicting suffix and append.
                let appended = entries.len() as u64;
                for (idx, entry) in (prev_index as usize..).zip(entries) {
                    if node.log.len() > idx {
                        if node.log[idx].term != entry.term {
                            node.log.truncate(idx);
                            node.log.push(entry);
                        }
                    } else {
                        node.log.push(entry);
                    }
                }
                node.commit_index = node
                    .commit_index
                    .max(leader_commit.min(node.last_log_index()));
                success = true;
                // Only what this message covered: the follower's log may hold
                // a stale suffix longer than the leader's, which must not
                // raise the leader's match/next indices past its own log.
                match_index = prev_index + appended;
            } else {
                success = false;
                match_index = 0;
            }
            reply_term = node.term;
        }
        if success {
            self.liveness.observe_progress(me, at);
        }
        if term == self.nodes[me.0 as usize].term {
            self.arm_election_timer(me);
        }
        self.net.send_delayed(
            me,
            leader,
            extra,
            32,
            RaftMsg::AppendResp {
                term: reply_term,
                from: me,
                success,
                match_index,
            },
        );
    }

    fn on_append_resp(
        &mut self,
        me: NodeId,
        _at: SimTime,
        term: u64,
        from: NodeId,
        success: bool,
        match_index: u64,
    ) {
        {
            let node = &mut self.nodes[me.0 as usize];
            if term > node.term {
                node.term = term;
                node.role = Role::Follower;
                node.voted_for = None;
                return;
            }
            if node.role != Role::Leader || term != node.term {
                return;
            }
            let peer = from.0 as usize;
            if success {
                node.match_index[peer] = node.match_index[peer].max(match_index);
                node.next_index[peer] = node.match_index[peer] + 1;
            } else if self.syncing.contains(&from) {
                // A learner is doing explicit state transfer: restart its
                // replication from the beginning instead of walking back one
                // entry per heartbeat.
                node.next_index[peer] = 1;
            } else {
                node.next_index[peer] = node.next_index[peer].saturating_sub(1).max(1);
            }
        }
        self.try_advance_commit(me);
    }

    fn try_advance_commit(&mut self, leader: NodeId) {
        let quorum = majority_quorum(self.membership.active_count()) as usize;
        let new_commit;
        {
            let node = &self.nodes[leader.0 as usize];
            // Only voters count toward the commit quorum; learner replicas
            // advance match_index but carry no weight.
            let mut sorted: Vec<u64> = node
                .match_index
                .iter()
                .enumerate()
                .filter(|(i, _)| self.membership.is_active(NodeId(*i as u32)))
                .map(|(_, &m)| m)
                .collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let candidate = sorted[quorum - 1];
            if candidate > node.commit_index && node.term_at(candidate) == node.term {
                new_commit = candidate;
            } else {
                return;
            }
        }
        self.nodes[leader.0 as usize].commit_index = new_commit;
        // Emit newly committed batches exactly once, in order; committed
        // config entries take effect here.
        let now = self.net.now();
        // One commit-index advance is one cadence tick, however many log
        // entries it covers.
        self.liveness.observe_commit(now);
        self.liveness.observe_progress(leader, now);
        while self.emitted_index < new_commit {
            self.emitted_index += 1;
            let entry =
                self.nodes[leader.0 as usize].log[(self.emitted_index - 1) as usize].clone();
            if let Some(change) = entry.config {
                self.apply_config(change);
            }
            if !entry.batch.is_empty() {
                self.round += 1;
                self.committed.push(CommittedBatch {
                    commands: entry.batch,
                    proposer: leader,
                    round: self.round,
                    committed_at: now,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, TxId};

    fn tx(seq: u64) -> Command {
        Command::unit(TxId::new(ClientId(0), seq))
    }

    fn settled(nodes: u32, seed: u64) -> RaftCluster {
        let mut c = RaftCluster::builder(nodes).seed(seed).build();
        c.run_until(SimTime::from_secs(3));
        assert!(c.leader().is_some(), "a leader must emerge");
        c
    }

    #[test]
    fn elects_exactly_one_leader() {
        let c = settled(3, 42);
        let leaders = (0..3)
            .filter(|&i| c.nodes[i].role == Role::Leader && c.nodes[i].alive)
            .count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn commits_a_single_command() {
        let mut c = settled(3, 1);
        c.submit(tx(1));
        let batches = c.run_until(SimTime::from_secs(6));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].commands.len(), 1);
        assert_eq!(batches[0].commands[0].tx.seq(), 1);
    }

    #[test]
    fn join_promotes_learner_through_the_log() {
        let mut c = RaftCluster::builder(3).standby(1).seed(51).build();
        c.run_until(SimTime::from_secs(3));
        assert!(c.leader().is_some());
        for s in 0..6 {
            c.submit(tx(s));
        }
        let before = c.run_until(SimTime::from_secs(8));
        assert_eq!(c.active_count(), 3);
        assert_eq!(c.config_epoch(), 0);
        assert!(c.join(NodeId(3)));
        // Duplicate join requests are rejected while syncing.
        assert!(!c.join(NodeId(3)));
        for s in 6..12 {
            c.submit(tx(s));
        }
        let after = c.run_until(SimTime::from_secs(20));
        assert_eq!(c.active_count(), 4, "AddVoter entry must have committed");
        assert_eq!(c.config_epoch(), 1);
        // The promoted voter holds the full log.
        let leader = c.leader().unwrap();
        assert_eq!(
            c.nodes[3].last_log_index(),
            c.nodes[leader.0 as usize].last_log_index(),
            "joiner must be caught up"
        );
        let total: usize = before
            .iter()
            .chain(after.iter())
            .map(|b| b.commands.len())
            .sum();
        assert_eq!(total, 12, "all commands commit across the join");
    }

    #[test]
    fn leave_removes_voter_and_reelects_if_leader() {
        let mut c = settled(4, 52);
        let leader = c.leader().unwrap();
        for s in 0..6 {
            c.submit(tx(s));
        }
        c.run_until(SimTime::from_secs(8));
        assert!(c.leave(leader), "removing the current leader is allowed");
        for s in 6..12 {
            c.submit(tx(s));
        }
        let got = c.run_until(SimTime::from_secs(30));
        assert_eq!(c.active_count(), 3, "RemoveVoter entry must have committed");
        assert_eq!(c.config_epoch(), 1);
        let new_leader = c.leader().expect("a replacement leader must emerge");
        assert_ne!(new_leader, leader, "departed node must not lead");
        assert!(
            got.iter().flat_map(|b| b.commands.iter()).count() >= 6,
            "cluster keeps committing after the leave"
        );
        // The departed node can no longer be removed again.
        assert!(!c.leave(leader));
    }

    #[test]
    fn learner_never_counts_toward_commit_quorum() {
        let mut c = RaftCluster::builder(3).standby(1).seed(53).build();
        c.run_until(SimTime::from_secs(3));
        assert!(c.join(NodeId(3)));
        // Crash a voter so only 2 of 3 voters are alive: commits still need
        // a majority of *voters*, which 2/3 satisfies; now crash another so
        // quorum is unreachable even with the learner replicating.
        c.crash(NodeId(1));
        c.crash(NodeId(2));
        for s in 0..4 {
            c.submit(tx(s));
        }
        let got = c.run_until(SimTime::from_secs(12));
        assert!(
            got.is_empty(),
            "a learner replica must not substitute for a voter in the quorum"
        );
    }

    #[test]
    fn churn_run_is_deterministic() {
        let run = || {
            let mut c = RaftCluster::builder(3).standby(1).seed(54).build();
            c.run_until(SimTime::from_secs(3));
            for s in 0..12 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(4));
            c.join(NodeId(3));
            c.run_until(SimTime::from_secs(8));
            c.leave(NodeId(1));
            let got = c.run_until(SimTime::from_secs(40));
            let commits: Vec<(u64, u64, u32)> = got
                .iter()
                .flat_map(|b| {
                    let r = b.round;
                    let p = b.proposer.0;
                    b.commands.iter().map(move |c| (c.tx.seq(), r, p))
                })
                .collect();
            (commits, c.active_count(), c.config_epoch())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn commits_respect_batch_size() {
        let mut c = RaftCluster::builder(3)
            .seed(2)
            .batch(BatchConfig::new(10, SimDuration::from_millis(500)))
            .build();
        c.run_until(SimTime::from_secs(3));
        for s in 0..25 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(10));
        let total: usize = batches.iter().map(|b| b.commands.len()).sum();
        assert_eq!(total, 25);
        assert!(batches.iter().all(|b| b.commands.len() <= 10));
        // First two batches are full-size cuts:
        assert_eq!(batches[0].commands.len(), 10);
        assert_eq!(batches[1].commands.len(), 10);
    }

    #[test]
    fn batch_timeout_flushes_partial_batches() {
        let mut c = RaftCluster::builder(3)
            .seed(3)
            .batch(BatchConfig::new(1000, SimDuration::from_millis(200)))
            .build();
        c.run_until(SimTime::from_secs(3));
        c.submit(tx(1));
        c.submit(tx(2));
        let start = c.now();
        let batches = c.run_until(start + SimDuration::from_secs(2));
        assert_eq!(batches.len(), 1, "timeout must cut the partial batch");
        assert_eq!(batches[0].commands.len(), 2);
    }

    #[test]
    fn commit_order_preserves_submission_order() {
        let mut c = settled(5, 4);
        for s in 0..50 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(20));
        let seqs: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.commands.iter().map(|cmd| cmd.tx.seq()))
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(seqs.len(), 50);
    }

    #[test]
    fn leader_crash_triggers_reelection_and_progress() {
        let mut c = settled(3, 5);
        let old_leader = c.leader().unwrap();
        c.crash(old_leader);
        c.run_until(c.now() + SimDuration::from_secs(5));
        let new_leader = c.leader().expect("new leader after crash");
        assert_ne!(new_leader, old_leader);
        c.submit(tx(9));
        let batches = c.run_until(c.now() + SimDuration::from_secs(5));
        assert_eq!(batches.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
    }

    #[test]
    fn no_progress_without_majority() {
        let mut c = settled(3, 6);
        let leader = c.leader().unwrap();
        for i in 0..3 {
            if NodeId(i) != leader {
                c.crash(NodeId(i));
            }
        }
        c.submit(tx(1));
        let batches = c.run_until(c.now() + SimDuration::from_secs(10));
        assert!(batches.is_empty(), "minority must not commit");
    }

    #[test]
    fn recovered_follower_catches_up() {
        let mut c = settled(3, 7);
        let leader = c.leader().unwrap();
        let follower = NodeId((0..3).find(|&i| NodeId(i) != leader).unwrap());
        c.crash(follower);
        for s in 0..5 {
            c.submit(tx(s));
        }
        c.run_until(c.now() + SimDuration::from_secs(5));
        c.recover(follower);
        c.run_until(c.now() + SimDuration::from_secs(5));
        let f = &c.nodes[follower.0 as usize];
        assert_eq!(
            f.last_log_index(),
            c.nodes[leader.0 as usize].last_log_index()
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut c = RaftCluster::builder(4).seed(seed).build();
            c.run_until(SimTime::from_secs(3));
            for s in 0..20 {
                c.submit(tx(s));
            }
            let batches = c.run_until(SimTime::from_secs(10));
            batches
                .iter()
                .map(|b| (b.round, b.committed_at, b.commands.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn single_node_cluster_commits_immediately() {
        let mut c = RaftCluster::builder(1).seed(8).build();
        c.run_until(SimTime::from_secs(1));
        assert!(c.leader().is_some());
        c.submit(tx(1));
        let batches = c.run_until(c.now() + SimDuration::from_secs(3));
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn logs_agree_across_alive_nodes() {
        let mut c = settled(5, 9);
        for s in 0..30 {
            c.submit(tx(s));
        }
        c.run_until(SimTime::from_secs(30));
        // All nodes that are alive must have prefix-consistent logs up to
        // the minimum commit index.
        let min_commit = c
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.commit_index)
            .min()
            .unwrap();
        assert!(min_commit > 0);
        for idx in 1..=min_commit {
            let terms: Vec<u64> = c
                .nodes
                .iter()
                .filter(|n| n.alive && n.last_log_index() >= idx)
                .map(|n| n.term_at(idx))
                .collect();
            assert!(
                terms.windows(2).all(|w| w[0] == w[1]),
                "log divergence at {idx}"
            );
        }
    }

    #[test]
    fn commit_latency_is_subsecond_on_lan() {
        let mut c = RaftCluster::builder(3)
            .seed(10)
            .batch(BatchConfig::new(500, SimDuration::from_millis(100)))
            .build();
        c.run_until(SimTime::from_secs(3));
        assert!(c.leader().is_some());
        let submit_at = c.now();
        c.submit(tx(1));
        let batches = c.run_until(c.now() + SimDuration::from_secs(5));
        assert_eq!(batches.len(), 1);
        let latency = batches[0].committed_at - submit_at;
        assert!(
            latency < SimDuration::from_secs(1),
            "commit took {latency}, expected < 1 s on a LAN"
        );
    }
}
