//! Machine-checked safety invariants for the BFT engines.
//!
//! A [`SafetyMonitor`] sits beside a consensus cluster and observes every
//! proposal, vote, quorum claim, certificate, and commit at message level —
//! the same ground truth the nodes act on, not a summary of it. It checks
//! the invariants Byzantine fault tolerance promises:
//!
//! - **agreement** — no two conflicting commits (different digests) at the
//!   same height/sequence, and no two conflicting certificates for the same
//!   slot;
//! - **quorum integrity** — no node claims a quorum backed by fewer than
//!   `2f+1` *distinct* voters;
//! - **accountable equivocation** — proposing two blocks for one slot or
//!   voting for two digests in one round is detected and attributed, so a
//!   run can assert that ≤ f equivocators never finalize conflicting state.
//!
//! Violations are *counted*, never panicked on (mirroring the
//! `DeliveryAccounting` style in `coconut::chaos`): beyond-f campaigns are
//! legitimate experiments whose measured safety loss is the result, and a
//! monitor that aborts the run would leave that unmeasurable.
//!
//! The monitor distinguishes *observations* (Byzantine behaviour seen on
//! the wire — expected whenever a fault campaign flags nodes) from
//! *violations* (safety actually lost — expected only beyond f). All state
//! is kept in `BTreeMap`/`BTreeSet` so reports are deterministic for a
//! deterministic message schedule.

use std::collections::{BTreeMap, BTreeSet};

use coconut_simnet::ByzantineBehaviour;
use coconut_types::{NodeId, SimTime};

/// Which voting phase a vote belongs to; phases never mix in the counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VotePhase {
    /// PBFT/IBFT prepare phase (including the proposer's implicit prepare).
    Prepare,
    /// PBFT/IBFT commit phase.
    Commit,
    /// DiemBFT's single vote phase (votes aggregate into a QC).
    Vote,
}

/// Safety actually lost: each counter is a broken invariant, expected to be
/// zero whenever at most f nodes misbehave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafetyViolations {
    /// Two different digests committed for the same height/sequence.
    pub conflicting_commits: u64,
    /// Two different digests certified (quorum-signed) for the same slot.
    pub conflicting_certificates: u64,
    /// A node acted on a "quorum" backed by < 2f+1 distinct voters.
    pub undersized_quorums: u64,
    /// A commit was certified by a quorum of a superseded configuration
    /// epoch (membership had already changed when the certificate was
    /// acted on).
    pub stale_epoch_commits: u64,
    /// A joiner voted before its catch-up/state transfer completed.
    pub presync_votes: u64,
}

impl SafetyViolations {
    /// Total violations across all invariants.
    pub fn total(&self) -> u64 {
        self.conflicting_commits
            + self.conflicting_certificates
            + self.undersized_quorums
            + self.stale_epoch_commits
            + self.presync_votes
    }

    /// `true` when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// Byzantine behaviour observed on the wire — evidence of *attempted*
/// subversion, not of safety loss. Non-zero whenever a campaign flags
/// nodes, regardless of whether the attack succeeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByzantineObservations {
    /// A proposer sent two different digests for the same slot.
    pub equivocating_proposals: u64,
    /// A validator voted for two different digests in one phase and slot.
    pub double_votes: u64,
    /// Distinct nodes caught doing either of the above.
    pub byzantine_nodes: u64,
}

/// The monitor's verdict: what was observed and what was actually broken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafetyReport {
    /// Invariants broken (expected zero at ≤ f misbehaving nodes).
    pub violations: SafetyViolations,
    /// Misbehaviour seen on the wire (expected non-zero when flagged).
    pub observed: ByzantineObservations,
}

/// Observes a BFT cluster's messages and checks the safety invariants.
///
/// Keys are `(epoch, slot)` pairs: PBFT uses `(view, seq)`, IBFT
/// `(round, height)`, DiemBFT `(0, round)`. Commits and certificates are
/// keyed by slot alone, because agreement must hold across views/rounds —
/// committing different blocks for one height in two views is exactly the
/// disaster BFT exists to prevent.
#[derive(Debug, Clone)]
pub struct SafetyMonitor {
    quorum: u32,
    /// The cluster's current membership-configuration epoch (0 = genesis
    /// membership). Distinct from the view/round "epoch" in the observe
    /// keys: this one only advances on join/leave reconfiguration.
    config_epoch: u64,
    /// Reconfigurations seen (number of `begin_epoch` calls).
    reconfigurations: u64,
    /// Joiners whose catch-up/state transfer has started but not finished.
    /// Any vote by such a node is a `presync_votes` violation.
    syncing: BTreeSet<NodeId>,
    /// (epoch, slot, proposer) → digests proposed.
    proposals: BTreeMap<(u64, u64, NodeId), BTreeSet<u64>>,
    /// (phase, epoch, slot, voter) → digests voted for (global view,
    /// feeds double-vote detection).
    voter_digests: BTreeMap<(VotePhase, u64, u64, NodeId), BTreeSet<u64>>,
    /// (observer, phase, epoch, slot, digest) → distinct voters the
    /// observer has seen (feeds the quorum-size check).
    tallies: BTreeMap<(NodeId, VotePhase, u64, u64, u64), BTreeSet<NodeId>>,
    /// slot → digests certified by some quorum.
    certificates: BTreeMap<u64, BTreeSet<u64>>,
    /// slot → digests committed by some node.
    commits: BTreeMap<u64, BTreeSet<u64>>,
    /// Nodes caught equivocating or double-voting.
    flagged: BTreeSet<NodeId>,
    violations: SafetyViolations,
    equivocating_proposals: u64,
    double_votes: u64,
}

impl SafetyMonitor {
    /// A monitor for a cluster whose quorum threshold is `quorum`
    /// (`2f+1` of `n = 3f+1` — see [`crate::bft_quorum`]).
    pub fn new(quorum: u32) -> Self {
        SafetyMonitor {
            quorum,
            config_epoch: 0,
            reconfigurations: 0,
            syncing: BTreeSet::new(),
            proposals: BTreeMap::new(),
            voter_digests: BTreeMap::new(),
            tallies: BTreeMap::new(),
            certificates: BTreeMap::new(),
            commits: BTreeMap::new(),
            flagged: BTreeSet::new(),
            violations: SafetyViolations::default(),
            equivocating_proposals: 0,
            double_votes: 0,
        }
    }

    /// The quorum threshold this monitor checks against.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// The current membership-configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// Reconfigurations recorded so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Advances the membership-configuration epoch to `epoch` with the
    /// recomputed `quorum` threshold of the new membership. From this point
    /// on, quorum-size checks use the new threshold and any commit whose
    /// certificate was formed under a superseded epoch is a
    /// `stale_epoch_commits` violation.
    pub fn begin_epoch(&mut self, epoch: u64, quorum: u32) {
        self.config_epoch = epoch;
        self.quorum = quorum;
        self.reconfigurations += 1;
    }

    /// Records that joiner `node` started its catch-up/state transfer. Any
    /// vote it casts before [`SafetyMonitor::observe_sync_complete`] is a
    /// `presync_votes` violation.
    pub fn observe_sync_start(&mut self, node: NodeId) {
        self.syncing.insert(node);
    }

    /// Records that joiner `node` finished catch-up and may vote and lead.
    pub fn observe_sync_complete(&mut self, node: NodeId) {
        self.syncing.remove(&node);
    }

    /// `true` while `node` is a joiner mid-catch-up.
    pub fn is_syncing(&self, node: NodeId) -> bool {
        self.syncing.contains(&node)
    }

    /// Records that some node committed `digest` at `slot` on the strength
    /// of a certificate formed in membership epoch `cert_epoch`. Besides
    /// the agreement check of [`SafetyMonitor::observe_commit`], a
    /// certificate from a superseded epoch is a `stale_epoch_commits`
    /// violation: the quorum that signed it no longer is one.
    pub fn observe_epoch_commit(&mut self, cert_epoch: u64, slot: u64, digest: u64) {
        if cert_epoch != self.config_epoch {
            self.violations.stale_epoch_commits += 1;
        }
        self.observe_commit(slot, digest);
    }

    /// Records that `proposer` proposed `digest` for `(epoch, slot)`. A
    /// second distinct digest for the same key is an equivocation.
    pub fn observe_proposal(&mut self, epoch: u64, slot: u64, proposer: NodeId, digest: u64) {
        let digests = self.proposals.entry((epoch, slot, proposer)).or_default();
        if !digests.is_empty() && digests.insert(digest) {
            self.equivocating_proposals += 1;
            self.flagged.insert(proposer);
        } else {
            digests.insert(digest);
        }
    }

    /// Records that `observer` counted a `phase` vote by `voter` for
    /// `digest` at `(epoch, slot)`. Detects double votes (one voter, two
    /// digests, same phase and slot) and feeds the observer's tally for
    /// the quorum-size check.
    pub fn observe_vote(
        &mut self,
        observer: NodeId,
        phase: VotePhase,
        epoch: u64,
        slot: u64,
        digest: u64,
        voter: NodeId,
    ) {
        if self.syncing.contains(&voter) {
            self.violations.presync_votes += 1;
        }
        let digests = self
            .voter_digests
            .entry((phase, epoch, slot, voter))
            .or_default();
        if !digests.is_empty() && digests.insert(digest) {
            self.double_votes += 1;
            self.flagged.insert(voter);
        } else {
            digests.insert(digest);
        }
        self.tallies
            .entry((observer, phase, epoch, slot, digest))
            .or_default()
            .insert(voter);
    }

    /// Records that `observer` acted on a full `phase` quorum for `digest`
    /// at `(epoch, slot)` — e.g. moved to prepared/committed, or formed a
    /// QC. If the observer's tally holds fewer than `quorum` distinct
    /// voters, the quorum was undersized.
    pub fn observe_quorum(
        &mut self,
        observer: NodeId,
        phase: VotePhase,
        epoch: u64,
        slot: u64,
        digest: u64,
    ) {
        let distinct = self
            .tallies
            .get(&(observer, phase, epoch, slot, digest))
            .map_or(0, |voters| voters.len() as u32);
        if distinct < self.quorum {
            self.violations.undersized_quorums += 1;
        }
    }

    /// Records a quorum certificate for `digest` at `slot`. A second
    /// distinct certified digest for the slot is a conflicting
    /// certificate.
    pub fn observe_certificate(&mut self, slot: u64, digest: u64) {
        let digests = self.certificates.entry(slot).or_default();
        if !digests.is_empty() && digests.insert(digest) {
            self.violations.conflicting_certificates += 1;
        } else {
            digests.insert(digest);
        }
    }

    /// Records that some node committed `digest` at `slot`. A second
    /// distinct committed digest for the slot breaks agreement.
    pub fn observe_commit(&mut self, slot: u64, digest: u64) {
        let digests = self.commits.entry(slot).or_default();
        if !digests.is_empty() && digests.insert(digest) {
            self.violations.conflicting_commits += 1;
        } else {
            digests.insert(digest);
        }
    }

    /// The verdict over everything observed so far.
    pub fn report(&self) -> SafetyReport {
        SafetyReport {
            violations: self.violations,
            observed: ByzantineObservations {
                equivocating_proposals: self.equivocating_proposals,
                double_votes: self.double_votes,
                byzantine_nodes: self.flagged.len() as u64,
            },
        }
    }
}

/// Per-node Byzantine fault windows, as armed by fault injection. The BFT
/// engines keep one per node and consult it at proposal/vote time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByzantineFlags {
    equivocate_until: Option<SimTime>,
    double_vote_until: Option<SimTime>,
}

impl ByzantineFlags {
    /// Arms `behaviour` until virtual time `until`; a later window extends
    /// an earlier one, it never shortens it.
    pub fn arm(&mut self, behaviour: ByzantineBehaviour, until: SimTime) {
        let slot = match behaviour {
            ByzantineBehaviour::EquivocateProposer => &mut self.equivocate_until,
            ByzantineBehaviour::DoubleVote => &mut self.double_vote_until,
        };
        *slot = Some(slot.map_or(until, |t| t.max(until)));
    }

    /// `true` while the node equivocates as proposer.
    pub fn equivocates(&self, now: SimTime) -> bool {
        self.equivocate_until.is_some_and(|t| now < t)
    }

    /// `true` while the node double-votes as validator.
    pub fn double_votes(&self, now: SimTime) -> bool {
        self.double_vote_until.is_some_and(|t| now < t)
    }

    /// `true` while either behaviour is armed — equivocating proposers
    /// deliver both conflicting blocks to such peers (their accomplices).
    pub fn is_byzantine(&self, now: SimTime) -> bool {
        self.equivocates(now) || self.double_votes(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u32 = 3; // n = 4, f = 1

    #[test]
    fn clean_run_reports_clean() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_proposal(0, 1, NodeId(0), 0xAA);
        for voter in 0..3 {
            m.observe_vote(NodeId(1), VotePhase::Prepare, 0, 1, 0xAA, NodeId(voter));
        }
        m.observe_quorum(NodeId(1), VotePhase::Prepare, 0, 1, 0xAA);
        m.observe_certificate(1, 0xAA);
        m.observe_commit(1, 0xAA);
        m.observe_commit(1, 0xAA); // same digest again: still clean
        let r = m.report();
        assert!(r.violations.is_clean());
        assert_eq!(r.observed, ByzantineObservations::default());
    }

    #[test]
    fn equivocation_is_attributed_but_not_a_violation() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_proposal(0, 1, NodeId(0), 0xAA);
        m.observe_proposal(0, 1, NodeId(0), 0xBB);
        m.observe_proposal(0, 1, NodeId(0), 0xBB); // repeat: counted once
        m.observe_proposal(0, 2, NodeId(0), 0xCC); // next slot: fine
        let r = m.report();
        assert_eq!(r.observed.equivocating_proposals, 1);
        assert_eq!(r.observed.byzantine_nodes, 1);
        assert!(r.violations.is_clean(), "attempt alone breaks nothing");
    }

    #[test]
    fn double_votes_are_per_phase_and_slot() {
        let mut m = SafetyMonitor::new(Q);
        let o = NodeId(3);
        m.observe_vote(o, VotePhase::Prepare, 0, 1, 0xAA, NodeId(2));
        m.observe_vote(o, VotePhase::Prepare, 0, 1, 0xBB, NodeId(2)); // double
        m.observe_vote(o, VotePhase::Commit, 0, 1, 0xAA, NodeId(2)); // other phase
        m.observe_vote(o, VotePhase::Prepare, 1, 1, 0xCC, NodeId(2)); // other view
        let r = m.report();
        assert_eq!(r.observed.double_votes, 1);
        assert_eq!(r.observed.byzantine_nodes, 1);
    }

    #[test]
    fn undersized_quorum_is_a_violation() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_vote(NodeId(1), VotePhase::Commit, 0, 7, 0xAA, NodeId(0));
        m.observe_vote(NodeId(1), VotePhase::Commit, 0, 7, 0xAA, NodeId(0)); // dup voter
        m.observe_vote(NodeId(1), VotePhase::Commit, 0, 7, 0xAA, NodeId(1));
        m.observe_quorum(NodeId(1), VotePhase::Commit, 0, 7, 0xAA);
        assert_eq!(m.report().violations.undersized_quorums, 1);
        // A third distinct voter fixes it for the next claim.
        m.observe_vote(NodeId(1), VotePhase::Commit, 0, 7, 0xAA, NodeId(2));
        m.observe_quorum(NodeId(1), VotePhase::Commit, 0, 7, 0xAA);
        assert_eq!(m.report().violations.undersized_quorums, 1);
    }

    #[test]
    fn conflicting_commits_and_certificates_are_violations() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_certificate(4, 0xAA);
        m.observe_certificate(4, 0xBB);
        m.observe_commit(4, 0xAA);
        m.observe_commit(4, 0xBB);
        m.observe_commit(5, 0xCC); // other slot: fine
        let r = m.report();
        assert_eq!(r.violations.conflicting_certificates, 1);
        assert_eq!(r.violations.conflicting_commits, 1);
        assert_eq!(r.violations.total(), 2);
    }

    #[test]
    fn presync_votes_are_violations_until_sync_completes() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_sync_start(NodeId(4));
        assert!(m.is_syncing(NodeId(4)));
        m.observe_vote(NodeId(1), VotePhase::Prepare, 0, 1, 0xAA, NodeId(4));
        assert_eq!(m.report().violations.presync_votes, 1);
        m.observe_sync_complete(NodeId(4));
        assert!(!m.is_syncing(NodeId(4)));
        m.observe_vote(NodeId(1), VotePhase::Prepare, 0, 2, 0xBB, NodeId(4));
        assert_eq!(m.report().violations.presync_votes, 1, "synced: clean");
    }

    #[test]
    fn stale_epoch_commits_are_violations() {
        let mut m = SafetyMonitor::new(Q);
        m.observe_epoch_commit(0, 1, 0xAA);
        assert!(m.report().violations.is_clean());
        m.begin_epoch(1, 3);
        assert_eq!(m.config_epoch(), 1);
        assert_eq!(m.reconfigurations(), 1);
        // A certificate formed under epoch 0 must not commit in epoch 1.
        m.observe_epoch_commit(0, 2, 0xBB);
        assert_eq!(m.report().violations.stale_epoch_commits, 1);
        m.observe_epoch_commit(1, 3, 0xCC);
        assert_eq!(m.report().violations.stale_epoch_commits, 1);
    }

    #[test]
    fn begin_epoch_updates_quorum_threshold() {
        let mut m = SafetyMonitor::new(Q);
        // Membership grows 4 → 5: quorum stays 2f+1 = 3; shrink to 3 → 1.
        m.begin_epoch(1, 1);
        assert_eq!(m.quorum(), 1);
        m.observe_vote(NodeId(1), VotePhase::Commit, 0, 9, 0xAA, NodeId(0));
        m.observe_quorum(NodeId(1), VotePhase::Commit, 0, 9, 0xAA);
        assert_eq!(m.report().violations.undersized_quorums, 0);
    }

    #[test]
    fn flags_window_semantics() {
        let mut f = ByzantineFlags::default();
        assert!(!f.is_byzantine(SimTime::ZERO));
        f.arm(
            ByzantineBehaviour::EquivocateProposer,
            SimTime::from_secs(10),
        );
        f.arm(
            ByzantineBehaviour::EquivocateProposer,
            SimTime::from_secs(5),
        ); // no shrink
        assert!(f.equivocates(SimTime::from_secs(9)));
        assert!(
            !f.equivocates(SimTime::from_secs(10)),
            "window end exclusive"
        );
        assert!(!f.double_votes(SimTime::from_secs(9)));
        f.arm(ByzantineBehaviour::DoubleVote, SimTime::from_secs(20));
        assert!(f.double_votes(SimTime::from_secs(15)));
        assert!(f.is_byzantine(SimTime::from_secs(15)));
        assert!(!f.is_byzantine(SimTime::from_secs(25)));
    }
}
