//! The Corda notary: a uniqueness service over consumed states.
//!
//! Corda has no blocks and no global ordering; finality is provided by a
//! notary that checks whether a transaction's input states were already
//! consumed and, if not, signs the transaction and records the inputs as
//! spent (the paper's Table 2: "Single notary"; Table 4: four notaries, one
//! per server, each transaction notarized by one of them).
//!
//! The model is a FIFO service queue with a per-request service time: a
//! request arriving while the notary is busy waits. Double-spends are
//! rejected with a conflict — the behaviour the BankingApp-SendPayment
//! benchmark provokes on Corda ("a notary might reject already spent
//! transaction output", §4.1).

use std::collections::HashSet;

use coconut_types::{NodeId, SimDuration, SimTime, StateRef, TxId};

use crate::Membership;

/// Base catch-up time for a notary joining the pool plus a per-consumed-state
/// transfer cost; the joiner serves no requests until this completes.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_STATE: SimDuration = SimDuration::from_micros(20);

/// The verdict of a notarization request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotaryVerdict {
    /// All input states were unconsumed; they are now marked spent and the
    /// transaction is final.
    Signed,
    /// At least one input state was already consumed; the transaction is
    /// rejected and no state is changed.
    Conflict(StateRef),
}

/// A completed notarization: the transaction, the verdict, and the time the
/// response left the notary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotaryResponse {
    /// The notarized transaction.
    pub tx: TxId,
    /// Signed or rejected.
    pub verdict: NotaryVerdict,
    /// When the notary finished processing (response transmission is the
    /// caller's concern).
    pub completed_at: SimTime,
}

impl NotaryResponse {
    /// `true` if the notary signed the transaction.
    pub fn is_signed(&self) -> bool {
        matches!(self.verdict, NotaryVerdict::Signed)
    }
}

/// A single notary service with a FIFO queue and a consumed-state table.
///
/// # Example
///
/// ```
/// use coconut_consensus::notary::{NotaryService, NotaryVerdict};
/// use coconut_types::{ClientId, SimDuration, SimTime, StateRef, TxId};
///
/// let mut notary = NotaryService::new(SimDuration::from_millis(2));
/// let state = StateRef::new(TxId::new(ClientId(0), 1), 0);
///
/// let first = notary.request(SimTime::from_secs(1), TxId::new(ClientId(0), 2), &[state]);
/// assert!(first.is_signed());
///
/// // Spending the same state again conflicts:
/// let second = notary.request(SimTime::from_secs(2), TxId::new(ClientId(0), 3), &[state]);
/// assert_eq!(second.verdict, NotaryVerdict::Conflict(state));
/// ```
#[derive(Debug, Clone)]
pub struct NotaryService {
    consumed: HashSet<StateRef>,
    service_time: SimDuration,
    per_input_time: SimDuration,
    busy_until: SimTime,
    processed: u64,
    conflicts: u64,
    alive: bool,
    /// Gray-failure window: while `arrival < until`, service time is
    /// multiplied by `factor` — the notary answers, just slowly.
    slow: Option<(f64, SimTime)>,
}

impl NotaryService {
    /// Creates a notary with a fixed per-request service time.
    pub fn new(service_time: SimDuration) -> Self {
        NotaryService {
            consumed: HashSet::new(),
            service_time,
            per_input_time: SimDuration::from_micros(100),
            busy_until: SimTime::ZERO,
            processed: 0,
            conflicts: 0,
            alive: true,
            slow: None,
        }
    }

    /// `true` while the notary serves requests.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Crashes the notary (fault injection): it stops serving requests.
    pub fn crash(&mut self) {
        self.alive = false;
    }

    /// Recovers the notary at `now`. Its consumed-state table survived on
    /// disk; the in-flight queue it had at crash time is gone, so the
    /// service restarts idle.
    pub fn recover(&mut self, now: SimTime) {
        self.alive = true;
        self.busy_until = self.busy_until.max(now);
    }

    /// Sets the additional cost per input state checked.
    pub fn with_per_input_time(mut self, d: SimDuration) -> Self {
        self.per_input_time = d;
        self
    }

    /// Arms a gray-slow window: requests arriving before `until` are served
    /// at `factor`× their normal service time. The notary never stops
    /// answering — the degradation is silent, unlike a crash.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn slow_down(&mut self, factor: f64, until: SimTime) {
        assert!(factor >= 1.0, "a slow-down factor must be >= 1");
        self.slow = Some((factor, until));
    }

    /// Processes a notarization request arriving at `arrival` for `tx`
    /// consuming `inputs`. Requests are served FIFO; the response carries
    /// the completion time including queueing delay.
    pub fn request(&mut self, arrival: SimTime, tx: TxId, inputs: &[StateRef]) -> NotaryResponse {
        let start = arrival.max(self.busy_until);
        let mut cost = self.service_time + self.per_input_time * inputs.len() as u64;
        if let Some((factor, until)) = self.slow {
            if arrival < until && factor > 1.0 {
                cost = cost.mul_f64(factor);
            }
        }
        let completed_at = start + cost;
        self.busy_until = completed_at;
        self.processed += 1;

        // Check-then-consume must be atomic per request.
        if let Some(&dup) = inputs.iter().find(|s| self.consumed.contains(s)) {
            self.conflicts += 1;
            return NotaryResponse {
                tx,
                verdict: NotaryVerdict::Conflict(dup),
                completed_at,
            };
        }
        for &s in inputs {
            self.consumed.insert(s);
        }
        NotaryResponse {
            tx,
            verdict: NotaryVerdict::Signed,
            completed_at,
        }
    }

    /// `true` if `state` has been spent.
    pub fn is_consumed(&self, state: &StateRef) -> bool {
        self.consumed.contains(state)
    }

    /// Total requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Requests rejected due to double-spends.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// The time the notary becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queue backlog relative to `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }
}

/// A pool of notaries (Table 4: one per server); requests are routed by the
/// transaction id so a given transaction always hits the same notary.
///
/// Note: because each notary keeps an independent consumed-state table, the
/// pool is *sharded by transaction*, which mirrors the paper's setup where a
/// transaction's notarization is handled by a single notary ("Single
/// notary" consensus). Conflict detection therefore requires the same
/// shard — routing uses the *first input state's* producing transaction so
/// that spends of the same state always collide on one notary.
#[derive(Debug, Clone)]
pub struct NotaryPool {
    notaries: Vec<NotaryService>,
    /// Epoch-versioned cluster membership: only members serve requests.
    membership: Membership,
    /// Joining notaries copying the uniqueness database: `(who, ready_at)`.
    /// Promotion happens lazily when a request at or after `ready_at`
    /// arrives, so a joiner never signs before its sync completes.
    pending_join: Vec<(NodeId, SimTime)>,
}

impl NotaryPool {
    /// Creates a pool of `n` notaries with the given per-request service time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, service_time: SimDuration) -> Self {
        assert!(n > 0, "pool needs at least one notary");
        NotaryPool {
            notaries: (0..n).map(|_| NotaryService::new(service_time)).collect(),
            membership: Membership::new(n, 0),
            pending_join: Vec::new(),
        }
    }

    /// Pre-provisions `k` standby notaries that start outside the cluster
    /// and can be admitted at runtime via [`NotaryPool::join`]. Must be
    /// called before any requests are served.
    pub fn with_standby(mut self, k: u32) -> Self {
        let n = self.membership.active_count();
        let service_time = self.notaries[0].service_time;
        let per_input = self.notaries[0].per_input_time;
        for _ in 0..k {
            self.notaries
                .push(NotaryService::new(service_time).with_per_input_time(per_input));
        }
        self.membership = Membership::new(n, k);
        self
    }

    /// Number of provisioned notaries (members plus standby).
    pub fn len(&self) -> usize {
        self.notaries.len()
    }

    /// `true` if the pool is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.notaries.is_empty()
    }

    /// Notaries currently in the cluster (serving shards).
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current cluster configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Starts admitting a standby notary at `now`: it copies the
    /// consumed-state database (longer the more states are spent) and only
    /// joins the sharding ring — bumping the epoch — once the copy
    /// completes. Returns `false` if `idx` is unknown, already a member, or
    /// already syncing.
    pub fn join(&mut self, now: SimTime, idx: usize) -> bool {
        let node = NodeId(idx as u32);
        if idx >= self.notaries.len()
            || self.membership.is_active(node)
            || self.pending_join.iter().any(|(n, _)| *n == node)
        {
            return false;
        }
        let states: u64 = self.notaries.iter().map(|n| n.consumed.len() as u64).sum();
        let ready_at = now + SYNC_BASE + SYNC_PER_STATE * states;
        self.pending_join.push((node, ready_at));
        true
    }

    /// Removes a member from the sharding ring, handing its consumed-state
    /// table over to the remaining members and bumping the epoch. Returns
    /// `false` if `idx` is not a member or is the last one.
    pub fn leave(&mut self, idx: usize) -> bool {
        if !self.membership.leave(NodeId(idx as u32)) {
            return false;
        }
        self.reshard();
        true
    }

    /// Promotes joiners whose database copy completed by `now`. Called
    /// automatically on every request; a driver may also call it directly
    /// to reconcile membership at a time boundary.
    pub fn settle(&mut self, now: SimTime) {
        let mut changed = false;
        let mut still_waiting = Vec::new();
        for (node, ready_at) in std::mem::take(&mut self.pending_join) {
            if ready_at <= now && self.membership.join(node) {
                changed = true;
            } else if ready_at > now {
                still_waiting.push((node, ready_at));
            }
        }
        self.pending_join = still_waiting;
        if changed {
            self.reshard();
        }
    }

    /// Resizing moves states between home shards, so the uniqueness
    /// database is redistributed: every member ends up able to detect a
    /// double-spend of any state consumed anywhere before the epoch change
    /// (set union — order-independent, so iteration order cannot leak into
    /// results).
    fn reshard(&mut self) {
        let union: HashSet<StateRef> = self
            .notaries
            .iter()
            .flat_map(|n| n.consumed.iter().copied())
            .collect();
        for (i, n) in self.notaries.iter_mut().enumerate() {
            if self.membership.is_active(NodeId(i as u32)) {
                n.consumed.extend(union.iter().copied());
            }
        }
    }

    /// Routes and processes a request (see [`NotaryService::request`]).
    ///
    /// If the preferred shard's notary has crashed, the request fails over
    /// to the next alive notary in ring order (deterministic). While the
    /// fail-over target differs from the home shard its consumed-state
    /// table is independent, so repeated spends of one state keep
    /// colliding on the *same* fail-over target as long as the alive set
    /// does not change between them. Returns `None` when every notary is
    /// dead — finality halts and the request is simply lost.
    pub fn request(
        &mut self,
        arrival: SimTime,
        tx: TxId,
        inputs: &[StateRef],
    ) -> Option<NotaryResponse> {
        self.settle(arrival);
        let members = self.membership.active_nodes();
        let n = members.len();
        let home = match inputs.first() {
            Some(s) => (s.tx().as_u64() % n as u64) as usize,
            None => (tx.as_u64() % n as u64) as usize,
        };
        let shard = (0..n)
            .map(|off| members[(home + off) % n].0 as usize)
            .find(|&i| self.notaries[i].is_alive())?;
        Some(self.notaries[shard].request(arrival, tx, inputs))
    }

    /// Arms a gray-slow window on notary `idx` (see
    /// [`NotaryService::slow_down`]); `false` if the index is out of range.
    pub fn slow_down(&mut self, idx: usize, factor: f64, until: SimTime) -> bool {
        match self.notaries.get_mut(idx) {
            Some(s) => {
                s.slow_down(factor, until);
                true
            }
            None => false,
        }
    }

    /// Crashes notary `idx`; `false` if the index is out of range.
    pub fn crash(&mut self, idx: usize) -> bool {
        match self.notaries.get_mut(idx) {
            Some(s) => {
                s.crash();
                true
            }
            None => false,
        }
    }

    /// Recovers notary `idx` at `now`; `false` if out of range.
    pub fn recover(&mut self, idx: usize, now: SimTime) -> bool {
        match self.notaries.get_mut(idx) {
            Some(s) => {
                s.recover(now);
                true
            }
            None => false,
        }
    }

    /// Members currently serving requests (crashed and standby notaries
    /// excluded).
    pub fn alive_count(&self) -> usize {
        self.notaries
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_alive() && self.membership.is_active(NodeId(*i as u32)))
            .count()
    }

    /// Total requests processed across the pool.
    pub fn processed(&self) -> u64 {
        self.notaries.iter().map(|n| n.processed()).sum()
    }

    /// Total conflicts across the pool.
    pub fn conflicts(&self) -> u64 {
        self.notaries.iter().map(|n| n.conflicts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::ClientId;

    fn tx(seq: u64) -> TxId {
        TxId::new(ClientId(0), seq)
    }

    fn state(seq: u64, idx: u32) -> StateRef {
        StateRef::new(tx(seq), idx)
    }

    #[test]
    fn signs_fresh_states_and_rejects_double_spends() {
        let mut n = NotaryService::new(SimDuration::from_millis(1));
        let s = state(1, 0);
        assert!(n.request(SimTime::ZERO, tx(2), &[s]).is_signed());
        let r = n.request(SimTime::from_secs(1), tx(3), &[s]);
        assert_eq!(r.verdict, NotaryVerdict::Conflict(s));
        assert_eq!(n.conflicts(), 1);
        assert_eq!(n.processed(), 2);
    }

    #[test]
    fn conflict_consumes_nothing() {
        let mut n = NotaryService::new(SimDuration::from_millis(1));
        let spent = state(1, 0);
        let fresh = state(1, 1);
        n.request(SimTime::ZERO, tx(2), &[spent]);
        // A tx that mixes a spent and a fresh input conflicts...
        let r = n.request(SimTime::from_secs(1), tx(3), &[spent, fresh]);
        assert!(!r.is_signed());
        // ...and must NOT consume the fresh input.
        assert!(!n.is_consumed(&fresh));
        let r2 = n.request(SimTime::from_secs(2), tx(4), &[fresh]);
        assert!(r2.is_signed());
    }

    #[test]
    fn fifo_queueing_delays_responses() {
        let mut n = NotaryService::new(SimDuration::from_millis(10));
        let t = SimTime::from_secs(1);
        let r1 = n.request(t, tx(1), &[state(0, 0)]);
        let r2 = n.request(t, tx(2), &[state(0, 1)]);
        assert!(r2.completed_at > r1.completed_at);
        assert_eq!(
            r2.completed_at - r1.completed_at,
            SimDuration::from_millis(10) + SimDuration::from_micros(100)
        );
        assert!(n.backlog(t) > SimDuration::from_millis(19));
    }

    #[test]
    fn per_input_cost_scales() {
        let mut n = NotaryService::new(SimDuration::from_millis(1))
            .with_per_input_time(SimDuration::from_millis(1));
        let inputs: Vec<StateRef> = (0..5).map(|i| state(9, i)).collect();
        let r = n.request(SimTime::ZERO, tx(1), &inputs);
        assert_eq!(r.completed_at, SimTime::from_millis(6));
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut n = NotaryService::new(SimDuration::from_millis(10));
        n.request(SimTime::ZERO, tx(1), &[state(0, 0)]);
        let r = n.request(SimTime::from_secs(5), tx(2), &[state(0, 1)]);
        assert_eq!(
            r.completed_at,
            SimTime::from_secs(5) + SimDuration::from_millis(10) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn pool_routes_same_state_to_same_shard() {
        let mut pool = NotaryPool::new(4, SimDuration::from_millis(1));
        let s = state(7, 0);
        assert!(pool
            .request(SimTime::ZERO, tx(10), &[s])
            .unwrap()
            .is_signed());
        let r = pool.request(SimTime::from_secs(1), tx(11), &[s]).unwrap();
        assert!(
            !r.is_signed(),
            "same state must hit the same shard and conflict"
        );
        assert_eq!(pool.conflicts(), 1);
        assert_eq!(pool.processed(), 2);
    }

    #[test]
    fn pool_spreads_unrelated_requests() {
        let mut pool = NotaryPool::new(4, SimDuration::from_millis(10));
        let t = SimTime::ZERO;
        // Distinct producing txs route to distinct shards (mostly), so the
        // pool completes 4 unrelated requests faster than one notary would.
        let done: Vec<SimTime> = (0..4)
            .map(|i| {
                pool.request(t, tx(100 + i), &[state(i, 0)])
                    .unwrap()
                    .completed_at
            })
            .collect();
        let serial_end =
            SimTime::ZERO + (SimDuration::from_millis(10) + SimDuration::from_micros(100)) * 4;
        assert!(done.iter().max().unwrap() < &serial_end);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
    }

    #[test]
    fn empty_input_list_is_signed() {
        // Issuance transactions consume nothing.
        let mut n = NotaryService::new(SimDuration::from_millis(1));
        assert!(n.request(SimTime::ZERO, tx(1), &[]).is_signed());
    }

    #[test]
    fn pool_fails_over_to_next_alive_notary() {
        let mut pool = NotaryPool::new(4, SimDuration::from_millis(1));
        let s = state(4, 0); // home shard = 4 % 4 = 0
        assert!(pool.crash(0));
        assert_eq!(pool.alive_count(), 3);
        // Both spends of the same state fail over to shard 1 and collide.
        assert!(pool
            .request(SimTime::ZERO, tx(10), &[s])
            .unwrap()
            .is_signed());
        let r = pool.request(SimTime::from_secs(1), tx(11), &[s]).unwrap();
        assert!(
            !r.is_signed(),
            "fail-over target still detects the double-spend"
        );
    }

    #[test]
    fn pool_join_resizes_after_database_copy() {
        let mut pool = NotaryPool::new(2, SimDuration::from_millis(1)).with_standby(1);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.active_count(), 2);
        // Consume some states to give the joiner a database to copy.
        for i in 0..10 {
            assert!(pool
                .request(SimTime::from_millis(i * 5), tx(100 + i), &[state(i, 0)])
                .unwrap()
                .is_signed());
        }
        assert!(pool.join(SimTime::from_millis(60), 2));
        assert!(!pool.join(SimTime::from_millis(60), 2), "already syncing");
        // A request before the copy completes does not see the joiner...
        pool.request(SimTime::from_millis(70), tx(200), &[state(50, 0)])
            .unwrap();
        assert_eq!(pool.active_count(), 2);
        assert_eq!(pool.config_epoch(), 0);
        // ...but one after the sync window does.
        pool.request(SimTime::from_secs(2), tx(201), &[state(51, 0)])
            .unwrap();
        assert_eq!(pool.active_count(), 3);
        assert_eq!(pool.config_epoch(), 1);
        // Double-spend detection survives the reshard: a state consumed
        // before the resize still conflicts wherever it now routes.
        for i in 0..10 {
            let r = pool
                .request(SimTime::from_secs(3), tx(300 + i), &[state(i, 0)])
                .unwrap();
            assert!(!r.is_signed(), "state {i} must still read as consumed");
        }
    }

    #[test]
    fn pool_leave_hands_state_over_to_remaining_members() {
        let mut pool = NotaryPool::new(3, SimDuration::from_millis(1));
        for i in 0..12 {
            assert!(pool
                .request(SimTime::from_millis(i * 5), tx(100 + i), &[state(i, 0)])
                .unwrap()
                .is_signed());
        }
        assert!(pool.leave(1));
        assert!(!pool.leave(1), "already departed");
        assert_eq!(pool.active_count(), 2);
        assert_eq!(pool.config_epoch(), 1);
        assert_eq!(pool.alive_count(), 2, "departed notary no longer serves");
        // Every previously consumed state still conflicts after the resize.
        for i in 0..12 {
            let r = pool
                .request(SimTime::from_secs(2), tx(300 + i), &[state(i, 0)])
                .unwrap();
            assert!(!r.is_signed(), "state {i} must still read as consumed");
        }
        // The last member cannot leave.
        assert!(pool.leave(0));
        assert!(!pool.leave(2), "a singleton cluster must refuse to shrink");
    }

    #[test]
    fn pool_halts_when_all_notaries_dead_and_recovers() {
        let mut pool = NotaryPool::new(2, SimDuration::from_millis(1));
        assert!(pool.crash(0));
        assert!(pool.crash(1));
        assert!(!pool.crash(9), "out-of-range index is reported");
        assert_eq!(pool.alive_count(), 0);
        assert!(pool.request(SimTime::ZERO, tx(1), &[state(0, 0)]).is_none());
        assert!(pool.recover(1, SimTime::from_secs(3)));
        let r = pool
            .request(SimTime::from_secs(3), tx(2), &[state(0, 1)])
            .unwrap();
        assert!(r.is_signed());
        assert!(r.completed_at >= SimTime::from_secs(3));
    }
}
