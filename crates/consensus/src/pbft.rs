//! Practical Byzantine Fault Tolerance — the consensus of the modelled
//! Hyperledger Sawtooth (the paper runs Sawtooth 1.2.6 with `sawtooth-pbft`,
//! Table 2).
//!
//! Message-level three-phase PBFT: the primary broadcasts a `PrePrepare`
//! carrying the block (batch), replicas exchange `Prepare` and `Commit`
//! messages, and a batch finalizes when 2f + 1 nodes have committed. A view
//! change (new primary) is triggered when replicas see no progress on an
//! outstanding proposal within the commit timeout.
//!
//! Sawtooth's `sawtooth.consensus.pbft.block_publishing_delay` maps to
//! [`PbftBuilder::publishing_delay`]: the primary waits this long after the
//! previous block before publishing the next one.
//!
//! # Byzantine behaviour
//!
//! Nodes flagged via [`PbftCluster::set_byzantine`] misbehave while their
//! fault window is open: an equivocating primary proposes two conflicting
//! blocks (same commands, different digests) to disjoint halves of the
//! honest peers, and a double-voting replica answers a conflicting
//! pre-prepare with prepare *and* commit votes for both digests. A
//! [`SafetyMonitor`] observes every proposal, vote, and commit and counts
//! invariant breaks — with ≤ f flagged nodes the minority fork starves
//! below quorum and the report stays clean; beyond f the forged votes
//! carry a conflicting block to commit and the monitor records it.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use coconut_simnet::{ByzantineBehaviour, FaultEvent, NetConfig, NetSim, NetStats, Topology};
use coconut_types::{Hasher64, NodeId, SimDuration, SimTime};

use crate::liveness::{LivenessMonitor, LivenessReport};
use crate::safety::{ByzantineFlags, SafetyMonitor, SafetyReport, VotePhase};
use crate::{bft_quorum, BatchConfig, Command, CommittedBatch, CpuModel, Membership};

/// Base catch-up time a joiner spends before it may vote (state-transfer
/// handshake), plus a per-committed-batch transfer cost.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_BATCH: SimDuration = SimDuration::from_millis(2);

/// PBFT protocol messages and local timers.
#[derive(Debug, Clone)]
enum PbftMsg {
    /// Primary cadence timer: publish the next block.
    PublishTimer {
        view: u64,
        seq: u64,
    },
    /// Replica progress timer for an outstanding proposal.
    CommitTimeout {
        view: u64,
        seq: u64,
    },
    PrePrepare {
        view: u64,
        seq: u64,
        digest: u64,
        batch: Vec<Command>,
    },
    Prepare {
        epoch: u64,
        view: u64,
        seq: u64,
        digest: u64,
        from: NodeId,
    },
    Commit {
        epoch: u64,
        view: u64,
        seq: u64,
        digest: u64,
        from: NodeId,
    },
    ViewChange {
        new_view: u64,
        from: NodeId,
    },
    NewView {
        view: u64,
    },
    /// A joiner's catch-up/state transfer finished: activate it.
    SyncDone {
        node: NodeId,
    },
}

/// Per-sequence consensus progress at one node. Vote tallies are kept per
/// digest so that votes for an equivocated sibling block can never inflate
/// the count of the block this node actually holds.
#[derive(Debug, Default, Clone)]
struct SlotState {
    digest: Option<u64>,
    batch: Option<Vec<Command>>,
    prepares: HashMap<u64, u32>,
    commits: HashMap<u64, u32>,
    prepared: bool,
    committed: bool,
}

#[derive(Debug)]
struct PbftNode {
    view: u64,
    /// Next sequence this node expects to commit.
    low_water: u64,
    slots: HashMap<(u64, u64), SlotState>,
    view_change_votes: HashMap<u64, u32>,
    voted_view: u64,
    alive: bool,
}

impl PbftNode {
    fn new() -> Self {
        PbftNode {
            view: 0,
            low_water: 0,
            slots: HashMap::new(),
            view_change_votes: HashMap::new(),
            voted_view: 0,
            alive: true,
        }
    }
}

/// Configuration for a [`PbftCluster`]; build with [`PbftCluster::builder`].
#[derive(Debug, Clone)]
pub struct PbftBuilder {
    nodes: u32,
    standby: u32,
    topology: Option<Topology>,
    net: NetConfig,
    seed: u64,
    batch: BatchConfig,
    publishing_delay: SimDuration,
    commit_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
}

impl PbftBuilder {
    /// Node placement (defaults to one node per server).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Pre-provisions `k` standby replicas (ids `nodes..nodes + k`) that
    /// start outside the active membership and can be admitted at runtime
    /// via [`PbftCluster::join`]. Default 0.
    pub fn standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }

    /// Network characteristics.
    pub fn net(mut self, c: NetConfig) -> Self {
        self.net = c;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Batch-cut policy (block size bound).
    pub fn batch(mut self, b: BatchConfig) -> Self {
        self.batch = b;
        self
    }

    /// Sawtooth's `block_publishing_delay`: the pause between a commit and
    /// the next proposal.
    pub fn publishing_delay(mut self, d: SimDuration) -> Self {
        self.publishing_delay = d;
        self
    }

    /// How long replicas wait for an outstanding proposal to commit before
    /// voting for a view change.
    pub fn commit_timeout(mut self, d: SimDuration) -> Self {
        self.commit_timeout = d;
        self
    }

    /// Fixed CPU cost of handling any protocol message.
    pub fn proc_per_msg(mut self, d: SimDuration) -> Self {
        self.proc_per_msg = d;
        self
    }

    /// Additional CPU cost per command in a `PrePrepare`.
    pub fn proc_per_command(mut self, d: SimDuration) -> Self {
        self.proc_per_command = d;
        self
    }

    /// Builds the cluster. The initial primary (view 0 → node 0) arms its
    /// publish timer immediately.
    pub fn build(self) -> PbftCluster {
        let n = self.nodes;
        let total = n + self.standby;
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::round_robin(total, total));
        assert_eq!(
            topology.node_count(),
            total,
            "topology must cover baseline + standby nodes"
        );
        let mut net = NetSim::new(topology, self.net, self.seed);
        net.timer(
            NodeId(0),
            self.publishing_delay,
            PbftMsg::PublishTimer { view: 0, seq: 0 },
        );
        // Every active replica watches the first sequence so a dead initial
        // primary is detected even though it never sends a pre-prepare.
        for i in 0..n {
            net.timer(
                NodeId(i),
                self.commit_timeout,
                PbftMsg::CommitTimeout { view: 0, seq: 0 },
            );
        }
        PbftCluster {
            nodes: (0..total).map(|_| PbftNode::new()).collect(),
            membership: Membership::new(n, self.standby),
            net,
            cpu: CpuModel::new(total),
            batch: self.batch,
            pending: Vec::new(),
            committed: Vec::new(),
            next_commit_seq: 0,
            publishing_delay: self.publishing_delay,
            commit_timeout: self.commit_timeout,
            proc_per_msg: self.proc_per_msg,
            proc_per_command: self.proc_per_command,
            commit_quorum_times: HashMap::new(),
            byz: vec![ByzantineFlags::default(); total as usize],
            monitor: SafetyMonitor::new(bft_quorum(n)),
            liveness: LivenessMonitor::default(),
            equiv_sibling: HashMap::new(),
            stale_epoch_rejections: 0,
            committed_txs: BTreeSet::new(),
        }
    }
}

/// A simulated PBFT cluster.
///
/// # Example
///
/// ```
/// use coconut_consensus::{pbft::PbftCluster, Command};
/// use coconut_types::{ClientId, SimTime, TxId};
///
/// let mut pbft = PbftCluster::builder(4).seed(3).build();
/// pbft.submit(Command::unit(TxId::new(ClientId(0), 1)));
/// let batches = pbft.run_until(SimTime::from_secs(5));
/// assert_eq!(batches.len(), 1);
/// ```
#[derive(Debug)]
pub struct PbftCluster {
    nodes: Vec<PbftNode>,
    /// Epoch-versioned active membership over the provisioned universe.
    membership: Membership,
    net: NetSim<PbftMsg>,
    cpu: CpuModel,
    batch: BatchConfig,
    pending: Vec<Command>,
    committed: Vec<CommittedBatch>,
    next_commit_seq: u64,
    publishing_delay: SimDuration,
    commit_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
    /// (view, seq) → nodes that reached local commit, for quorum detection.
    commit_quorum_times: HashMap<(u64, u64), Vec<(NodeId, SimTime)>>,
    /// Per-node Byzantine fault windows.
    byz: Vec<ByzantineFlags>,
    /// Message-level safety invariant checker.
    monitor: SafetyMonitor,
    /// Commit-cadence and view-change-storm liveness tracker.
    liveness: LivenessMonitor,
    /// (view, seq) → the conflicting sibling digest an equivocating primary
    /// broadcast alongside its real proposal.
    equiv_sibling: HashMap<(u64, u64), u64>,
    /// Votes dropped because they carried a superseded membership epoch.
    stale_epoch_rejections: u64,
    /// Transactions already finalized, so a batch orphaned by a view or
    /// epoch change is never re-proposed after its commands committed.
    committed_txs: BTreeSet<u64>,
}

impl PbftCluster {
    /// Starts building a PBFT cluster of `nodes` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn builder(nodes: u32) -> PbftBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        PbftBuilder {
            nodes,
            standby: 0,
            topology: None,
            net: NetConfig::lan(),
            seed: 0,
            batch: BatchConfig::new(200, SimDuration::from_secs(1)),
            publishing_delay: SimDuration::from_secs(1),
            commit_timeout: SimDuration::from_secs(4),
            proc_per_msg: SimDuration::from_micros(30),
            proc_per_command: SimDuration::from_micros(5),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of replicas.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The primary of the current highest view.
    pub fn primary(&self) -> NodeId {
        let view = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.view)
            .max()
            .unwrap_or(0);
        self.primary_of(view)
    }

    /// Network counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Applies a network-level fault (partition, heal, loss burst, latency
    /// spike) to the cluster's message fabric. Crash/restart events are not
    /// network faults and return `false`.
    pub fn apply_net_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        self.net.apply_fault(at, event)
    }

    /// Commands accepted but not yet proposed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits a command for ordering.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push(cmd);
    }

    /// Flags `node` to misbehave (`behaviour`) until virtual time `until`.
    pub fn set_byzantine(&mut self, node: NodeId, behaviour: ByzantineBehaviour, until: SimTime) {
        self.byz[node.0 as usize].arm(behaviour, until);
    }

    /// The safety monitor's verdict over everything observed so far.
    pub fn safety_report(&self) -> SafetyReport {
        self.monitor.report()
    }

    /// The liveness monitor's verdict as of the current virtual time.
    pub fn liveness_report(&self) -> LivenessReport {
        self.liveness.report(self.net.now())
    }

    /// Crashes a replica (it stops processing messages).
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = false;
    }

    /// Recovers a crashed replica in its old view.
    pub fn recover(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = true;
    }

    /// Current active-membership size (`n` of the quorum arithmetic).
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current membership-configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Votes dropped for carrying a superseded membership epoch.
    pub fn stale_epoch_rejections(&self) -> u64 {
        self.stale_epoch_rejections
    }

    /// Admits standby replica `node`: catch-up (state transfer of the
    /// committed ledger) starts now, and only once it completes does the
    /// epoch advance and the joiner vote or lead. Returns `false` when
    /// `node` is not a provisioned standby or is already joining/active.
    pub fn join(&mut self, node: NodeId) -> bool {
        if node.0 >= self.membership.provisioned()
            || self.membership.is_active(node)
            || self.monitor.is_syncing(node)
        {
            return false;
        }
        self.monitor.observe_sync_start(node);
        let sync = SYNC_BASE + SYNC_PER_BATCH * self.next_commit_seq;
        self.net.timer(node, sync, PbftMsg::SyncDone { node });
        true
    }

    /// Removes `node` from the active membership: the epoch advances,
    /// quorum sizes shrink with `n`, and in-flight votes of the superseded
    /// epoch are rejected. Returns `false` when `node` is not active or is
    /// the last active replica.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.membership.leave(node) {
            return false;
        }
        self.on_epoch_change();
        true
    }

    /// Runs the protocol until `deadline`, returning batches that reached
    /// commit quorum in this window.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CommittedBatch> {
        while let Some(ev) = self.net.pop_at_or_before(deadline) {
            self.dispatch(ev.dst, ev.at, ev.msg);
        }
        self.net.advance_to(deadline);
        std::mem::take(&mut self.committed)
    }

    /// Due time of the next internal event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    fn quorum(&self) -> u32 {
        bft_quorum(self.membership.active_count())
    }

    fn dispatch(&mut self, me: NodeId, at: SimTime, msg: PbftMsg) {
        if !self.nodes[me.0 as usize].alive {
            return;
        }
        // Only the sync-completion timer reaches a node outside the active
        // membership: standbys and departed replicas neither vote nor lead.
        if !self.membership.is_active(me) {
            if let PbftMsg::SyncDone { node } = msg {
                self.on_sync_done(node);
            }
            return;
        }
        match msg {
            PbftMsg::PublishTimer { view, seq } => self.on_publish_timer(me, view, seq),
            PbftMsg::CommitTimeout { view, seq } => self.on_commit_timeout(me, view, seq),
            PbftMsg::PrePrepare {
                view,
                seq,
                digest,
                batch,
            } => self.on_pre_prepare(me, at, view, seq, digest, batch),
            PbftMsg::Prepare {
                epoch,
                view,
                seq,
                digest,
                from,
            } => {
                if epoch != self.membership.epoch() {
                    self.stale_epoch_rejections += 1;
                    return;
                }
                self.on_prepare(me, at, view, seq, digest, from);
            }
            PbftMsg::Commit {
                epoch,
                view,
                seq,
                digest,
                from,
            } => {
                if epoch != self.membership.epoch() {
                    self.stale_epoch_rejections += 1;
                    return;
                }
                self.on_commit(me, at, view, seq, digest, from);
            }
            PbftMsg::ViewChange { new_view, from } => self.on_view_change(me, at, new_view, from),
            PbftMsg::NewView { view } => self.on_new_view(me, view),
            PbftMsg::SyncDone { .. } => {} // already active: stale sync timer
        }
    }

    /// A joiner finished catch-up: it enters the membership, the epoch
    /// advances, and quorum arithmetic now runs over the grown `n`.
    fn on_sync_done(&mut self, node: NodeId) {
        if !self.monitor.is_syncing(node) || !self.membership.join(node) {
            return;
        }
        self.monitor.observe_sync_complete(node);
        // The joiner adopts the highest view among its peers and starts
        // watching the next open sequence.
        let view = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| n.alive && self.membership.is_active(NodeId(i as u32)))
            .map(|(_, n)| n.view)
            .max()
            .unwrap_or(0);
        {
            let joiner = &mut self.nodes[node.0 as usize];
            joiner.view = view;
            joiner.voted_view = joiner.voted_view.max(view);
            joiner.low_water = self.next_commit_seq;
        }
        self.on_epoch_change();
    }

    /// Applies a membership change: recompute the quorum over the new
    /// active count, abandon in-flight slots (their epoch is superseded —
    /// a quorum of the old membership must not certify a commit), reclaim
    /// their commands, and restart proposal/watchdog timers over the new
    /// membership.
    fn on_epoch_change(&mut self) {
        let quorum = self.quorum();
        self.monitor.begin_epoch(self.membership.epoch(), quorum);
        // Reclaim commands stuck in uncommitted slots, in sequence order,
        // deduplicated (several replicas hold the same in-flight batch).
        let mut by_slot: BTreeMap<(u64, u64), Vec<Command>> = BTreeMap::new();
        for node in &mut self.nodes {
            for (&(view, seq), slot) in node.slots.iter() {
                if slot.committed {
                    continue;
                }
                if let Some(batch) = &slot.batch {
                    by_slot.entry((seq, view)).or_insert_with(|| batch.clone());
                }
            }
            node.slots.retain(|_, s| s.committed);
        }
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut restored: Vec<Command> = Vec::new();
        for batch in by_slot.into_values() {
            for c in batch {
                if !self.committed_txs.contains(&c.tx.as_u64()) && seen.insert(c.tx.as_u64()) {
                    restored.push(c);
                }
            }
        }
        restored.append(&mut self.pending);
        self.pending = restored;
        self.commit_quorum_times
            .retain(|&(_, seq), _| seq < self.next_commit_seq);
        // Restart the pipeline under the new epoch: the primary of the
        // highest active view proposes the next sequence, and every active
        // replica watches it.
        let view = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| n.alive && self.membership.is_active(NodeId(i as u32)))
            .map(|(_, n)| n.view)
            .max()
            .unwrap_or(0);
        let seq = self.next_commit_seq;
        self.net.timer(
            self.primary_of(view),
            self.publishing_delay,
            PbftMsg::PublishTimer { view, seq },
        );
        for i in 0..self.nodes.len() {
            let dst = NodeId(i as u32);
            if self.nodes[i].alive && self.membership.is_active(dst) {
                self.net.timer(
                    dst,
                    self.commit_timeout,
                    PbftMsg::CommitTimeout { view, seq },
                );
            }
        }
    }

    fn on_publish_timer(&mut self, me: NodeId, view: u64, seq: u64) {
        {
            let node = &self.nodes[me.0 as usize];
            if node.view != view || seq != self.next_commit_seq || self.primary_of(view) != me {
                return;
            }
            if node
                .slots
                .get(&(view, seq))
                .is_some_and(|s| s.batch.is_some())
            {
                return; // already proposed this slot (duplicate timer)
            }
        }
        if self.pending.is_empty() {
            // Nothing to propose; retry a publishing-delay later.
            self.net.timer(
                me,
                self.publishing_delay,
                PbftMsg::PublishTimer { view, seq },
            );
            return;
        }
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        let digest = digest_of(&batch, view, seq);
        let bytes = 64 + batch.iter().map(|c| c.bytes as usize).sum::<usize>();
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let now = self.net.now();
        let done = self.cpu.process(me, now, cost);
        // Primary pre-prepares locally.
        let slot = self.nodes[me.0 as usize]
            .slots
            .entry((view, seq))
            .or_default();
        slot.digest = Some(digest);
        slot.batch = Some(batch.clone());
        slot.prepares.insert(digest, 1); // own implicit prepare
        self.monitor.observe_proposal(view, seq, me, digest);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, view, seq, digest, me);
        if self.byz[me.0 as usize].equivocates(now) && self.nodes.len() >= 3 {
            // Equivocating primary: a sibling block with the same commands
            // but a conflicting digest goes to half the honest peers;
            // Byzantine accomplices receive both versions.
            let alt = sibling_digest_of(&batch, view, seq);
            self.equiv_sibling.insert((view, seq), alt);
            self.monitor.observe_proposal(view, seq, me, alt);
            let extra = done - now;
            let mut honest_idx = 0usize;
            for i in 0..self.nodes.len() {
                let dst = NodeId(i as u32);
                if dst == me {
                    continue;
                }
                let accomplice = self.byz[i].is_byzantine(now);
                if accomplice || honest_idx.is_multiple_of(2) {
                    self.net.send_delayed(
                        me,
                        dst,
                        extra,
                        bytes,
                        PbftMsg::PrePrepare {
                            view,
                            seq,
                            digest,
                            batch: batch.clone(),
                        },
                    );
                }
                if accomplice || honest_idx % 2 == 1 {
                    self.net.send_delayed(
                        me,
                        dst,
                        extra,
                        bytes,
                        PbftMsg::PrePrepare {
                            view,
                            seq,
                            digest: alt,
                            batch: batch.clone(),
                        },
                    );
                }
                if !accomplice {
                    honest_idx += 1;
                }
            }
        } else {
            self.net
                .broadcast_delayed(me, done - now, bytes, |_| PbftMsg::PrePrepare {
                    view,
                    seq,
                    digest,
                    batch: batch.clone(),
                });
        }
        // Arm the primary's own progress timer.
        self.net.timer(
            me,
            self.commit_timeout,
            PbftMsg::CommitTimeout { view, seq },
        );
    }

    fn on_pre_prepare(
        &mut self,
        me: NodeId,
        at: SimTime,
        view: u64,
        seq: u64,
        digest: u64,
        batch: Vec<Command>,
    ) {
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let done = self.cpu.process(me, at, cost);
        let extra = done - at;
        let epoch = self.membership.epoch();
        {
            let node = &mut self.nodes[me.0 as usize];
            if view != node.view || seq < node.low_water {
                return;
            }
            let slot = node.slots.entry((view, seq)).or_default();
            if slot.batch.is_some() {
                if slot.digest != Some(digest) && self.byz[me.0 as usize].double_votes(at) {
                    // A conflicting pre-prepare for a slot we already
                    // accepted: honest replicas drop it; a double-voting
                    // replica votes for it anyway (prepare and commit)
                    // without adopting it.
                    self.net
                        .broadcast_delayed(me, extra, 64, |_| PbftMsg::Prepare {
                            epoch,
                            view,
                            seq,
                            digest,
                            from: me,
                        });
                    self.net
                        .broadcast_delayed(me, extra, 64, |_| PbftMsg::Commit {
                            epoch,
                            view,
                            seq,
                            digest,
                            from: me,
                        });
                }
                return; // duplicate (or conflicting) pre-prepare
            }
            slot.digest = Some(digest);
            slot.batch = Some(batch);
            *slot.prepares.entry(digest).or_insert(0) += 2; // primary implicit + own
        }
        let primary = self.primary_of(view);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, view, seq, digest, primary);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, view, seq, digest, me);
        self.net
            .broadcast_delayed(me, extra, 64, |_| PbftMsg::Prepare {
                epoch,
                view,
                seq,
                digest,
                from: me,
            });
        self.net.timer(
            me,
            self.commit_timeout,
            PbftMsg::CommitTimeout { view, seq },
        );
        self.check_prepared(me, view, seq, digest);
    }

    fn on_prepare(
        &mut self,
        me: NodeId,
        at: SimTime,
        view: u64,
        seq: u64,
        digest: u64,
        from: NodeId,
    ) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        {
            let node = &mut self.nodes[me.0 as usize];
            if view != node.view {
                return;
            }
            let slot = node.slots.entry((view, seq)).or_default();
            if slot.digest.is_some() && slot.digest != Some(digest) {
                return;
            }
            *slot.prepares.entry(digest).or_insert(0) += 1;
        }
        self.monitor
            .observe_vote(me, VotePhase::Prepare, view, seq, digest, from);
        self.check_prepared(me, view, seq, digest);
    }

    fn check_prepared(&mut self, me: NodeId, view: u64, seq: u64, digest: u64) {
        let quorum = self.quorum();
        let now = self.net.now();
        let should_commit;
        {
            let node = &mut self.nodes[me.0 as usize];
            let slot = node.slots.entry((view, seq)).or_default();
            should_commit = !slot.prepared
                && slot.digest == Some(digest)
                && slot.prepares.get(&digest).copied().unwrap_or(0) >= quorum;
            if should_commit {
                slot.prepared = true;
                *slot.commits.entry(digest).or_insert(0) += 1; // own commit
            }
        }
        if should_commit {
            let epoch = self.membership.epoch();
            self.monitor
                .observe_quorum(me, VotePhase::Prepare, view, seq, digest);
            self.monitor
                .observe_vote(me, VotePhase::Commit, view, seq, digest, me);
            let done = self.cpu.process(me, now, self.proc_per_msg);
            self.net
                .broadcast_delayed(me, done - now, 64, |_| PbftMsg::Commit {
                    epoch,
                    view,
                    seq,
                    digest,
                    from: me,
                });
            // An equivocating primary finishes its attack: the sibling fork
            // needs its commit vote too.
            if self.primary_of(view) == me {
                if let Some(&alt) = self.equiv_sibling.get(&(view, seq)) {
                    if alt != digest {
                        self.net
                            .broadcast_delayed(me, done - now, 64, |_| PbftMsg::Commit {
                                epoch,
                                view,
                                seq,
                                digest: alt,
                                from: me,
                            });
                    }
                }
            }
            self.check_committed(me, view, seq, digest);
        }
    }

    fn on_commit(
        &mut self,
        me: NodeId,
        at: SimTime,
        view: u64,
        seq: u64,
        digest: u64,
        from: NodeId,
    ) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        {
            let node = &mut self.nodes[me.0 as usize];
            if view != node.view {
                return;
            }
            let slot = node.slots.entry((view, seq)).or_default();
            if slot.digest.is_some() && slot.digest != Some(digest) {
                return;
            }
            *slot.commits.entry(digest).or_insert(0) += 1;
        }
        self.monitor
            .observe_vote(me, VotePhase::Commit, view, seq, digest, from);
        self.check_committed(me, view, seq, digest);
    }

    fn check_committed(&mut self, me: NodeId, view: u64, seq: u64, digest: u64) {
        let quorum = self.quorum();
        let now = self.net.now();
        let locally_committed;
        {
            let node = &mut self.nodes[me.0 as usize];
            let slot = node.slots.entry((view, seq)).or_default();
            locally_committed = !slot.committed
                && slot.prepared
                && slot.digest == Some(digest)
                && slot.commits.get(&digest).copied().unwrap_or(0) >= quorum;
            if locally_committed {
                slot.committed = true;
                node.low_water = node.low_water.max(seq + 1);
            }
        }
        if !locally_committed {
            return;
        }
        self.liveness.observe_progress(me, now);
        self.monitor
            .observe_quorum(me, VotePhase::Commit, view, seq, digest);
        // Vote tallies are reset on every membership change, so the quorum
        // behind this commit formed entirely in the current epoch.
        self.monitor
            .observe_epoch_commit(self.membership.epoch(), seq, digest);
        // Watch the next sequence so a primary that dies between blocks is
        // detected.
        self.net.timer(
            me,
            self.commit_timeout,
            PbftMsg::CommitTimeout { view, seq: seq + 1 },
        );
        // Record this node's local commit; on quorum, finalize cluster-wide.
        let entry = self.commit_quorum_times.entry((view, seq)).or_default();
        if !entry.iter().any(|(n, _)| *n == me) {
            entry.push((me, now));
        }
        if entry.len() as u32 >= quorum && seq == self.next_commit_seq {
            let committed_at = self.commit_quorum_times[&(view, seq)]
                .iter()
                .map(|&(_, t)| t)
                .max()
                .unwrap_or(now);
            let batch = self
                .nodes
                .iter()
                .find_map(|n| n.slots.get(&(view, seq)).and_then(|s| s.batch.clone()))
                .unwrap_or_default();
            self.next_commit_seq = seq + 1;
            self.liveness.observe_commit(committed_at);
            for c in &batch {
                self.committed_txs.insert(c.tx.as_u64());
            }
            self.committed.push(CommittedBatch {
                commands: batch,
                proposer: self.primary_of(view),
                round: seq,
                committed_at,
            });
            // Schedule the next publication at the (possibly new) primary.
            let next_primary = self.primary_of(view);
            self.net.timer(
                next_primary,
                self.publishing_delay,
                PbftMsg::PublishTimer { view, seq: seq + 1 },
            );
        }
    }

    fn on_commit_timeout(&mut self, me: NodeId, view: u64, seq: u64) {
        let has_proposal;
        {
            let node = &self.nodes[me.0 as usize];
            if node.view != view || seq < self.next_commit_seq {
                return; // stale timer
            }
            if node.slots.get(&(view, seq)).is_some_and(|s| s.committed) {
                return;
            }
            has_proposal = node.slots.contains_key(&(view, seq));
        }
        // Only complain when there is actually stalled work: an outstanding
        // proposal, or queued commands nobody is proposing. Otherwise keep
        // watching.
        if !has_proposal && self.pending.is_empty() {
            self.net.timer(
                me,
                self.commit_timeout,
                PbftMsg::CommitTimeout { view, seq },
            );
            return;
        }
        let new_view = view + 1;
        let now = self.net.now();
        let done = self.cpu.process(me, now, self.proc_per_msg);
        {
            let node = &mut self.nodes[me.0 as usize];
            if node.voted_view >= new_view {
                return;
            }
            node.voted_view = new_view;
        }
        self.net
            .broadcast_delayed(me, done - now, 48, |_| PbftMsg::ViewChange {
                new_view,
                from: me,
            });
        // Count own vote.
        self.on_view_change(me, now, new_view, me);
    }

    fn on_view_change(&mut self, me: NodeId, _at: SimTime, new_view: u64, _from: NodeId) {
        let quorum = self.quorum();
        let is_new_primary = self.primary_of(new_view) == me;
        let reached;
        {
            let node = &mut self.nodes[me.0 as usize];
            if new_view <= node.view {
                return;
            }
            let votes = node.view_change_votes.entry(new_view).or_insert(0);
            *votes += 1;
            reached = *votes >= quorum;
        }
        if reached && is_new_primary {
            let now = self.net.now();
            // Only the incoming primary reaches this branch, so each
            // successful view change is counted once cluster-wide.
            self.liveness.observe_view_change(now);
            let done = self.cpu.process(me, now, self.proc_per_msg);
            self.adopt_view(me, new_view);
            self.net
                .broadcast_delayed(me, done - now, 48, |_| PbftMsg::NewView { view: new_view });
            // The new primary re-proposes pending work.
            self.net.timer(
                me,
                self.publishing_delay,
                PbftMsg::PublishTimer {
                    view: new_view,
                    seq: self.next_commit_seq,
                },
            );
        }
    }

    fn on_new_view(&mut self, me: NodeId, view: u64) {
        if view > self.nodes[me.0 as usize].view {
            self.adopt_view(me, view);
            let seq = self.next_commit_seq;
            self.net.timer(
                me,
                self.commit_timeout,
                PbftMsg::CommitTimeout { view, seq },
            );
        }
    }

    fn adopt_view(&mut self, me: NodeId, view: u64) {
        let next = self.next_commit_seq;
        let node = &mut self.nodes[me.0 as usize];
        node.view = view;
        node.voted_view = node.voted_view.max(view);
        // Outstanding uncommitted slots from older views are abandoned, but
        // their commands are reclaimed into the pending queue so a proposal
        // orphaned by the view change is re-proposed rather than stranded.
        // Reclaim in (seq, view) order: slot iteration order is not
        // deterministic and the pending order feeds the next proposal.
        let mut by_slot: BTreeMap<(u64, u64), Vec<Command>> = BTreeMap::new();
        for (&(v, seq), slot) in node.slots.iter_mut() {
            if v < view && !slot.committed && seq >= next {
                if let Some(batch) = slot.batch.take() {
                    by_slot.insert((seq, v), batch);
                }
            }
        }
        node.slots.retain(|&(v, _), s| v >= view || s.committed);
        let reclaimed: Vec<Command> = by_slot.into_values().flatten().collect();
        if !reclaimed.is_empty() {
            let mut seen: BTreeSet<u64> = self.pending.iter().map(|c| c.tx.as_u64()).collect();
            for c in reclaimed {
                if !self.committed_txs.contains(&c.tx.as_u64()) && seen.insert(c.tx.as_u64()) {
                    self.pending.push(c);
                }
            }
        }
    }

    fn primary_of(&self, view: u64) -> NodeId {
        // Rotation over the active membership; identical to `view mod n`
        // until the first join/leave.
        self.membership.select(view)
    }
}

/// Deterministic digest of a batch proposal.
fn digest_of(batch: &[Command], view: u64, seq: u64) -> u64 {
    let mut h = Hasher64::with_key(view ^ (seq << 32));
    for c in batch {
        h.write_u64(c.tx.as_u64()).write_u64(c.ops as u64);
    }
    h.finish()
}

/// The conflicting digest an equivocating primary pairs with [`digest_of`]:
/// same commands, different serialization, so honest replicas see two
/// irreconcilable proposals for one slot.
fn sibling_digest_of(batch: &[Command], view: u64, seq: u64) -> u64 {
    let mut h = Hasher64::with_key(view ^ (seq << 32) ^ 0xB12A_57DE);
    for c in batch {
        h.write_u64(c.tx.as_u64()).write_u64(c.ops as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, TxId};

    fn tx(seq: u64) -> Command {
        Command::unit(TxId::new(ClientId(0), seq))
    }

    #[test]
    fn commits_one_batch() {
        let mut c = PbftCluster::builder(4).seed(1).build();
        c.submit(tx(1));
        let batches = c.run_until(SimTime::from_secs(5));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].commands.len(), 1);
        assert_eq!(batches[0].proposer, NodeId(0));
    }

    #[test]
    fn respects_publishing_delay() {
        let mut c = PbftCluster::builder(4)
            .seed(2)
            .publishing_delay(SimDuration::from_secs(2))
            .batch(BatchConfig::new(1, SimDuration::from_secs(1)))
            .build();
        for s in 0..3 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(30));
        assert_eq!(batches.len(), 3);
        for w in batches.windows(2) {
            let gap = w[1].committed_at - w[0].committed_at;
            assert!(
                gap >= SimDuration::from_secs(2),
                "blocks must be ≥ publishing_delay apart, got {gap}"
            );
        }
    }

    #[test]
    fn batch_size_bounds_block_content() {
        let mut c = PbftCluster::builder(4)
            .seed(3)
            .batch(BatchConfig::new(5, SimDuration::from_secs(1)))
            .publishing_delay(SimDuration::from_millis(100))
            .build();
        for s in 0..17 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(20));
        let total: usize = batches.iter().map(|b| b.commands.len()).sum();
        assert_eq!(total, 17);
        assert!(batches.iter().all(|b| b.commands.len() <= 5));
    }

    #[test]
    fn commit_order_matches_submission_order() {
        let mut c = PbftCluster::builder(4)
            .seed(4)
            .publishing_delay(SimDuration::from_millis(50))
            .batch(BatchConfig::new(8, SimDuration::from_millis(100)))
            .build();
        for s in 0..40 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(30));
        let seqs: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.commands.iter().map(|cmd| cmd.tx.seq()))
            .collect();
        assert_eq!(seqs.len(), 40);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.round, i as u64, "rounds are consecutive");
        }
    }

    #[test]
    fn primary_crash_triggers_view_change_and_progress() {
        let mut c = PbftCluster::builder(4).seed(5).build();
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(5));
        assert_eq!(first.len(), 1);
        // Kill the primary (node 0, view 0).
        c.crash(NodeId(0));
        c.submit(tx(2));
        let batches = c.run_until(c.now() + SimDuration::from_secs(30));
        assert_eq!(batches.len(), 1, "view change must allow progress");
        assert_ne!(batches[0].proposer, NodeId(0));
    }

    #[test]
    fn no_progress_beyond_f_faults() {
        let mut c = PbftCluster::builder(4).seed(6).build();
        // f = 1 for n = 4; crashing two nodes destroys the quorum.
        c.crash(NodeId(2));
        c.crash(NodeId(3));
        c.submit(tx(1));
        let batches = c.run_until(SimTime::from_secs(30));
        assert!(
            batches.is_empty(),
            "2f+1 quorum is unreachable with 2 of 4 down"
        );
    }

    #[test]
    fn tolerates_exactly_f_faults() {
        let mut c = PbftCluster::builder(4).seed(7).build();
        c.crash(NodeId(3)); // f = 1
        c.submit(tx(1));
        let batches = c.run_until(SimTime::from_secs(10));
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut c = PbftCluster::builder(4)
                .seed(seed)
                .publishing_delay(SimDuration::from_millis(200))
                .build();
            for s in 0..10 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(20))
                .iter()
                .map(|b| (b.round, b.committed_at, b.commands.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn empty_cluster_produces_no_blocks() {
        let mut c = PbftCluster::builder(4).seed(8).build();
        let batches = c.run_until(SimTime::from_secs(10));
        assert!(batches.is_empty(), "no commands, no blocks");
    }

    #[test]
    fn one_equivocating_primary_is_safe() {
        let mut c = PbftCluster::builder(4).seed(11).build();
        c.set_byzantine(
            NodeId(0),
            ByzantineBehaviour::EquivocateProposer,
            SimTime::from_secs(60),
        );
        c.set_byzantine(
            NodeId(0),
            ByzantineBehaviour::DoubleVote,
            SimTime::from_secs(60),
        );
        for s in 0..6 {
            c.submit(tx(s));
        }
        let batches = c.run_until(SimTime::from_secs(30));
        assert!(!batches.is_empty(), "f = 1 equivocator must not halt PBFT");
        let r = c.safety_report();
        assert!(
            r.observed.equivocating_proposals > 0,
            "the attack must actually run"
        );
        assert_eq!(r.observed.byzantine_nodes, 1);
        assert!(r.violations.is_clean(), "≤ f Byzantine: {:?}", r.violations);
    }

    #[test]
    fn two_byzantine_nodes_break_safety_and_are_counted() {
        let mut c = PbftCluster::builder(4).seed(12).build();
        for node in [NodeId(0), NodeId(1)] {
            c.set_byzantine(
                node,
                ByzantineBehaviour::EquivocateProposer,
                SimTime::from_secs(60),
            );
            c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
        }
        for s in 0..6 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(30));
        let r = c.safety_report();
        assert!(
            r.violations.conflicting_commits > 0,
            "f+1 Byzantine must commit a conflicting block: {r:?}"
        );
    }

    #[test]
    fn byzantine_run_is_deterministic() {
        let run = || {
            let mut c = PbftCluster::builder(4).seed(13).build();
            for node in [NodeId(0), NodeId(1)] {
                c.set_byzantine(
                    node,
                    ByzantineBehaviour::EquivocateProposer,
                    SimTime::from_secs(60),
                );
                c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
            }
            for s in 0..8 {
                c.submit(tx(s));
            }
            let batches = c.run_until(SimTime::from_secs(30));
            (format!("{:?}", c.safety_report()), batches.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn join_grows_membership_after_sync_without_violations() {
        let mut c = PbftCluster::builder(4).standby(1).seed(21).build();
        assert_eq!((c.active_count(), c.config_epoch()), (4, 0));
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(5));
        assert_eq!(first.len(), 1);
        assert!(c.join(NodeId(4)), "standby is admitted");
        assert!(!c.join(NodeId(4)), "double join rejected");
        assert_eq!(c.active_count(), 4, "not active until synced");
        for s in 2..8 {
            c.submit(tx(s));
        }
        let more = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(!more.is_empty(), "commits continue through the join");
        assert_eq!((c.active_count(), c.config_epoch()), (5, 1));
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn leave_shrinks_membership_and_rotates_primary_away() {
        let mut c = PbftCluster::builder(4).seed(22).build();
        c.submit(tx(1));
        assert_eq!(c.run_until(SimTime::from_secs(5)).len(), 1);
        // The current primary departs: the epoch advances and the next
        // blocks must come from surviving members.
        assert!(c.leave(NodeId(0)));
        assert_eq!((c.active_count(), c.config_epoch()), (3, 1));
        for s in 2..6 {
            c.submit(tx(s));
        }
        let batches = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(!batches.is_empty(), "the shrunken cluster keeps committing");
        assert!(batches.iter().all(|b| b.proposer != NodeId(0)));
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
        assert!(!c.leave(NodeId(0)), "already departed");
    }

    #[test]
    fn joiner_never_votes_before_sync_completes() {
        let mut c = PbftCluster::builder(4).standby(1).seed(23).build();
        for s in 0..4 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(6));
        assert!(c.join(NodeId(4)));
        for s in 4..10 {
            c.submit(tx(s));
        }
        let _ = c.run_until(c.now() + SimDuration::from_secs(30));
        let r = c.safety_report();
        assert_eq!(r.violations.presync_votes, 0, "no vote before catch-up");
        assert_eq!(r.violations.stale_epoch_commits, 0);
        assert_eq!(c.active_count(), 5);
    }

    #[test]
    fn churn_run_is_deterministic() {
        let run = || {
            let mut c = PbftCluster::builder(4).standby(1).seed(24).build();
            for s in 0..12 {
                c.submit(tx(s));
            }
            let mut got = c.run_until(SimTime::from_secs(4)).len();
            c.join(NodeId(4));
            got += c.run_until(SimTime::from_secs(8)).len();
            c.leave(NodeId(1));
            got += c.run_until(SimTime::from_secs(40)).len();
            (got, c.config_epoch(), format!("{:?}", c.safety_report()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn larger_clusters_commit_slower() {
        let latency = |n: u32| {
            let mut c = PbftCluster::builder(n)
                .seed(10)
                .proc_per_msg(SimDuration::from_micros(200))
                .publishing_delay(SimDuration::from_millis(10))
                .build();
            let t0 = c.now();
            c.submit(tx(1));
            let batches = c.run_until(SimTime::from_secs(30));
            assert_eq!(batches.len(), 1, "n={n}");
            batches[0].committed_at - t0
        };
        let small = latency(4);
        let large = latency(32);
        assert!(
            large > small,
            "32 nodes ({large}) must be slower than 4 ({small}): O(n²) messages"
        );
    }
}
