//! Message-level consensus engines for the modelled blockchain systems.
//!
//! The paper's seven systems span five consensus families plus Corda's
//! notary-based finality (Table 2). This crate implements each of them as a
//! deterministic state machine over the [`coconut_simnet`] discrete-event
//! network:
//!
//! | Engine | Used by | Module |
//! |---|---|---|
//! | Raft (leader election + log replication) | Fabric ordering service | [`raft`] |
//! | PBFT (pre-prepare/prepare/commit + view change) | Sawtooth | [`pbft`] |
//! | Istanbul BFT (3-phase, proposer rotation, block period) | Quorum | [`ibft`] |
//! | DiemBFT (chained rounds, quorum certificates, pacemaker) | Diem | [`diembft`] |
//! | Delegated Proof-of-Stake (witness schedule, slots) | BitShares | [`dpos`] |
//! | Notary uniqueness service (consumed-state checking) | Corda | [`notary`] |
//!
//! Engines share a vocabulary — [`Command`]s go in, [`CommittedBatch`]es come
//! out — and a per-node CPU queue model ([`CpuModel`]) so that the quadratic
//! message complexity of the BFT protocols translates into the scalability
//! degradation the paper measures in §5.8.2.
//!
//! # Example
//!
//! ```
//! use coconut_consensus::{raft::RaftCluster, Command};
//! use coconut_types::{ClientId, SimTime, TxId};
//!
//! let mut raft = RaftCluster::builder(3).seed(7).build();
//! raft.run_until(SimTime::from_secs(2)); // elect a leader
//! raft.submit(Command::unit(TxId::new(ClientId(0), 1)));
//! let batches = raft.run_until(SimTime::from_secs(6));
//! assert_eq!(batches.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diembft;
pub mod dpos;
pub mod ibft;
pub mod liveness;
pub mod notary;
pub mod pbft;
pub mod raft;
pub mod safety;

pub use liveness::{LivenessConfig, LivenessMonitor, LivenessReport, LivenessVerdict};
pub use safety::{
    ByzantineFlags, ByzantineObservations, SafetyMonitor, SafetyReport, SafetyViolations, VotePhase,
};

use coconut_types::{NodeId, SimDuration, SimTime, TxId};

/// A client command handed to a consensus engine for ordering.
///
/// Commands carry just enough metadata for the engines to model batching and
/// transmission cost: the transaction id, its operation count (BitShares
/// operations / Sawtooth inner transactions), and its serialized size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// The transaction being ordered.
    pub tx: TxId,
    /// Operations carried (≥ 1).
    pub ops: u32,
    /// Serialized size in bytes.
    pub bytes: u32,
}

impl Command {
    /// A single-operation command with a default envelope size.
    pub fn unit(tx: TxId) -> Self {
        Command {
            tx,
            ops: 1,
            bytes: 96,
        }
    }

    /// Creates a command with explicit operation count and size.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero.
    pub fn new(tx: TxId, ops: u32, bytes: u32) -> Self {
        assert!(ops > 0, "a command carries at least one operation");
        Command { tx, ops, bytes }
    }
}

/// A batch of commands finalized by consensus — the engine-level analogue of
/// a block body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedBatch {
    /// Commands in commit order.
    pub commands: Vec<Command>,
    /// The node that proposed the batch (leader / primary / witness).
    pub proposer: NodeId,
    /// Consensus round / height / slot the batch committed in.
    pub round: u64,
    /// Virtual time at which the batch was committed by a quorum.
    pub committed_at: SimTime,
}

impl CommittedBatch {
    /// Total operations across the batch's commands.
    pub fn op_count(&self) -> u64 {
        self.commands.iter().map(|c| c.ops as u64).sum()
    }

    /// Total serialized bytes across the batch's commands.
    pub fn byte_size(&self) -> u64 {
        self.commands.iter().map(|c| c.bytes as u64).sum()
    }
}

/// Batch-formation policy: cut a batch when `max_commands` accumulate or
/// when `max_wait` elapses since the first pending command, whichever comes
/// first.
///
/// This is Fabric's `MaxMessageCount`/`BatchTimeout` pair; the other systems
/// use one of the two dimensions (Diem: `max_block_size`; Quorum/Sawtooth/
/// BitShares: a pure time trigger with an upper size bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands per batch.
    pub max_commands: usize,
    /// Maximum time the oldest pending command waits before a cut.
    pub max_wait: SimDuration,
}

impl BatchConfig {
    /// Creates a batch policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_commands` is zero.
    pub fn new(max_commands: usize, max_wait: SimDuration) -> Self {
        assert!(max_commands > 0, "batches must allow at least one command");
        BatchConfig {
            max_commands,
            max_wait,
        }
    }
}

impl Default for BatchConfig {
    /// Fabric's defaults: 500 messages or 2 s, whichever first.
    fn default() -> Self {
        BatchConfig::new(500, SimDuration::from_secs(2))
    }
}

/// Per-node CPU queue: serializes message processing on each node so that
/// message complexity shows up as throughput loss at scale.
///
/// When a message arrives at `t`, its processing *starts* at
/// `max(t, node_free)` and completes `cost` later; the node is busy until
/// then. This is what makes an O(n²) BFT protocol degrade as n grows, as
/// the paper observes for Diem, Quorum and Sawtooth in §5.8.2.
#[derive(Debug, Clone)]
pub struct CpuModel {
    free_at: Vec<SimTime>,
}

impl CpuModel {
    /// A CPU model for `nodes` nodes, all initially idle.
    pub fn new(nodes: u32) -> Self {
        CpuModel {
            free_at: vec![SimTime::ZERO; nodes as usize],
        }
    }

    /// Reserves `cost` of CPU on `node` for work arriving at `arrival`;
    /// returns the completion time.
    pub fn process(&mut self, node: NodeId, arrival: SimTime, cost: SimDuration) -> SimTime {
        let start = arrival.max(self.free_at[node.0 as usize]);
        let done = start + cost;
        self.free_at[node.0 as usize] = done;
        done
    }

    /// The time at which `node` next becomes idle.
    pub fn free_at(&self, node: NodeId) -> SimTime {
        self.free_at[node.0 as usize]
    }

    /// Current backlog of `node` relative to `now`.
    pub fn backlog(&self, node: NodeId, now: SimTime) -> SimDuration {
        self.free_at[node.0 as usize].saturating_since(now)
    }
}

/// Size of a Byzantine quorum (2f + 1) for `n = 3f + 1` nodes; for other
/// `n` the largest tolerated `f = (n - 1) / 3` is used.
///
/// # Example
///
/// ```
/// use coconut_consensus::bft_quorum;
///
/// assert_eq!(bft_quorum(4), 3);
/// assert_eq!(bft_quorum(7), 5);
/// assert_eq!(bft_quorum(32), 21);
/// ```
pub fn bft_quorum(n: u32) -> u32 {
    let f = (n.saturating_sub(1)) / 3;
    2 * f + 1
}

/// Size of a crash-fault majority quorum.
///
/// # Example
///
/// ```
/// use coconut_consensus::majority_quorum;
///
/// assert_eq!(majority_quorum(3), 2);
/// assert_eq!(majority_quorum(4), 3);
/// assert_eq!(majority_quorum(5), 3);
/// ```
pub fn majority_quorum(n: u32) -> u32 {
    n / 2 + 1
}

/// Epoch-versioned membership of a consensus cluster over a fixed universe
/// of provisioned node ids (`baseline` initially active members plus
/// `standby` pre-provisioned joiners).
///
/// The provisioned universe is fixed at construction — topology, CPU
/// queues and network links exist for every provisioned node — while the
/// *active* subset changes at runtime through [`Membership::join`] /
/// [`Membership::leave`]. Every membership change advances the
/// configuration epoch, and `n`, `f` and quorum sizes are recomputed from
/// the active count; votes tagged with a superseded epoch are rejected by
/// the engines.
///
/// # Example
///
/// ```
/// use coconut_consensus::{bft_quorum, Membership};
/// use coconut_types::NodeId;
///
/// let mut m = Membership::new(4, 1);
/// assert_eq!((m.active_count(), m.epoch()), (4, 0));
/// assert!(m.join(NodeId(4)));
/// assert_eq!((m.active_count(), m.epoch()), (5, 1));
/// assert_eq!(bft_quorum(m.active_count()), 3);
/// assert!(m.leave(NodeId(0)));
/// assert_eq!((m.active_count(), m.epoch()), (4, 2));
/// assert_eq!(m.select(0), NodeId(1), "selection skips departed nodes");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    active: Vec<bool>,
    epoch: u64,
}

impl Membership {
    /// A membership of `baseline` active members (`0..baseline`) plus
    /// `standby` inactive pre-provisioned joiners
    /// (`baseline..baseline + standby`), at epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is zero.
    pub fn new(baseline: u32, standby: u32) -> Self {
        assert!(baseline > 0, "membership needs at least one active node");
        let mut active = vec![true; baseline as usize];
        active.resize((baseline + standby) as usize, false);
        Membership { active, epoch: 0 }
    }

    /// Total provisioned node ids (active or not).
    pub fn provisioned(&self) -> u32 {
        self.active.len() as u32
    }

    /// Current active-member count — the `n` quorum arithmetic runs on.
    pub fn active_count(&self) -> u32 {
        self.active.iter().filter(|&&a| a).count() as u32
    }

    /// `true` when `node` is provisioned and currently active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// The current configuration epoch (0 = genesis membership; each join
    /// or leave advances it by one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Activates a provisioned standby node and advances the epoch.
    /// Returns `false` (no epoch change) when `node` is unprovisioned or
    /// already active.
    pub fn join(&mut self, node: NodeId) -> bool {
        match self.active.get_mut(node.0 as usize) {
            Some(a) if !*a => {
                *a = true;
                self.epoch += 1;
                true
            }
            _ => false,
        }
    }

    /// Deactivates an active node and advances the epoch. Returns `false`
    /// (no epoch change) when `node` is not active or is the last active
    /// member — an empty membership cannot run consensus.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.is_active(node) || self.active_count() <= 1 {
            return false;
        }
        self.active[node.0 as usize] = false;
        self.epoch += 1;
        true
    }

    /// The active members in ascending id order.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Deterministic rotation over the active set: the `index mod n`-th
    /// active member in id order. With the genesis membership `0..n` fully
    /// active this reduces to `NodeId(index % n)`, so engines that adopt it
    /// keep their pre-churn leader schedules bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if no node is active (construction and [`Membership::leave`]
    /// make that unreachable).
    pub fn select(&self, index: u64) -> NodeId {
        let nodes = self.active_nodes();
        nodes[(index % nodes.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::ClientId;

    #[test]
    fn command_constructors() {
        let tx = TxId::new(ClientId(0), 1);
        let c = Command::unit(tx);
        assert_eq!((c.ops, c.bytes), (1, 96));
        let c2 = Command::new(tx, 100, 9_600);
        assert_eq!(c2.ops, 100);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_ops_rejected() {
        let _ = Command::new(TxId::new(ClientId(0), 1), 0, 10);
    }

    #[test]
    fn batch_aggregates() {
        let tx = |s| TxId::new(ClientId(0), s);
        let b = CommittedBatch {
            commands: vec![Command::new(tx(1), 3, 100), Command::new(tx(2), 2, 50)],
            proposer: NodeId(0),
            round: 1,
            committed_at: SimTime::ZERO,
        };
        assert_eq!(b.op_count(), 5);
        assert_eq!(b.byte_size(), 150);
    }

    #[test]
    fn quorums() {
        assert_eq!(bft_quorum(1), 1);
        assert_eq!(bft_quorum(4), 3);
        assert_eq!(bft_quorum(8), 5);
        assert_eq!(bft_quorum(16), 11);
        assert_eq!(majority_quorum(1), 1);
        assert_eq!(majority_quorum(2), 2);
        assert_eq!(majority_quorum(7), 4);
    }

    /// Exhaustive sweep of the quorum arithmetic: for every n the quorum is
    /// 2f+1 with f = ⌊(n-1)/3⌋, it stays reachable with f nodes down, and —
    /// on aligned n = 3f+1 — f+1 failures block it and any two quorums
    /// intersect in ≥ f+1 nodes (the property safety rests on).
    #[test]
    fn bft_quorum_bounds_hold_for_every_n() {
        for n in 1..=1024u32 {
            let f = (n - 1) / 3;
            let q = bft_quorum(n);
            assert_eq!(q, 2 * f + 1, "n={n}");
            assert!(q <= n, "a quorum must be formable from n nodes (n={n})");
            assert!(n - f >= q, "f crashes must still leave a quorum (n={n})");
            if n == 3 * f + 1 {
                assert!(n - (f + 1) < q, "beyond f, no quorum forms (n={n})");
                assert!(2 * q > n + f, "quorum intersection ≥ f+1 (n={n})");
            } else {
                // Non-aligned n: f is rounded down, so the cluster carries
                // 1–2 spare nodes beyond 3f+1. The spares only widen the
                // margins above; they never earn extra fault tolerance
                // (f stays ⌊(n-1)/3⌋).
                assert!(n > 3 * f + 1, "n={n}");
                assert!(n - 3 * f - 1 <= 2, "n={n}");
            }
        }
    }

    /// The degenerate clusters n ≤ 3 all have f = 0 and a "quorum" of one:
    /// correctness then rests entirely on the no-faulty-node assumption,
    /// and for n = 2, 3 two quorums need not even intersect.
    #[test]
    fn bft_quorum_degenerate_small_clusters() {
        assert_eq!(bft_quorum(1), 1);
        assert_eq!(bft_quorum(2), 1);
        assert_eq!(bft_quorum(3), 1);
        // n = 3, f = 0: one crash (beyond f) still leaves 2 ≥ q = 1 nodes,
        // so the beyond-f liveness bound genuinely does not apply here...
        assert!(2 >= bft_quorum(3), "n=3: two survivors still reach q");
        // ...and two one-node quorums can be disjoint (2q < n + f + 1).
        assert!(2 * bft_quorum(3) < 3 + 1);
    }

    /// Membership churn property: walking a cluster up from 1 active node
    /// to `baseline + standby` and back down, `f` and `q` are recomputed
    /// from the *active* count at every epoch — for both quorum families —
    /// and the epoch advances exactly once per membership change.
    #[test]
    fn quorums_recompute_across_membership_epochs() {
        for baseline in 1..=16u32 {
            for standby in 0..=8u32 {
                let mut m = Membership::new(baseline, standby);
                let mut expected_epoch = 0u64;
                // Grow: admit every standby in id order.
                for j in 0..standby {
                    assert!(m.join(NodeId(baseline + j)));
                    expected_epoch += 1;
                    let n = baseline + j + 1;
                    assert_eq!(m.active_count(), n);
                    assert_eq!(m.epoch(), expected_epoch);
                    let f = (n - 1) / 3;
                    assert_eq!(bft_quorum(n), 2 * f + 1, "grow to n={n}");
                    assert!(n - f >= bft_quorum(n), "f crashes leave a quorum");
                    assert_eq!(majority_quorum(n), n / 2 + 1);
                    assert!(2 * majority_quorum(n) > n);
                }
                // Shrink back to a single node, leaving highest id first.
                let full = baseline + standby;
                for gone in 1..full {
                    assert!(m.leave(NodeId(full - gone)));
                    expected_epoch += 1;
                    let n = full - gone;
                    assert_eq!(m.active_count(), n);
                    assert_eq!(m.epoch(), expected_epoch);
                    let f = (n - 1) / 3;
                    assert_eq!(bft_quorum(n), 2 * f + 1, "shrink to n={n}");
                    assert_eq!(majority_quorum(n), n / 2 + 1);
                }
                // The last member may never leave: n = 0 has no quorum.
                assert!(!m.leave(NodeId(0)));
                assert_eq!(m.active_count(), 1);
                assert_eq!(m.epoch(), expected_epoch);
            }
        }
    }

    /// Membership bookkeeping: joins/leaves are idempotent-rejecting, the
    /// provisioned universe never changes, and rotation reduces to plain
    /// modulo order on the genesis membership.
    #[test]
    fn membership_join_leave_semantics() {
        let mut m = Membership::new(4, 2);
        assert_eq!(m.provisioned(), 6);
        assert_eq!(m.active_nodes(), (0..4).map(NodeId).collect::<Vec<_>>());
        for i in 0..40u64 {
            assert_eq!(m.select(i), NodeId((i % 4) as u32), "genesis = modulo");
        }
        assert!(!m.join(NodeId(0)), "already active");
        assert!(!m.join(NodeId(6)), "unprovisioned");
        assert!(!m.leave(NodeId(5)), "not active");
        assert_eq!(m.epoch(), 0, "rejected changes keep the epoch");
        assert!(m.join(NodeId(5)));
        assert!(m.leave(NodeId(1)));
        assert_eq!(m.provisioned(), 6, "universe is fixed");
        assert_eq!(
            m.active_nodes(),
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(5)]
        );
        // Rotation skips the departed node and folds in the joiner.
        assert_eq!(m.select(1), NodeId(2));
        assert_eq!(m.select(3), NodeId(5));
        assert_eq!(m.select(7), NodeId(5));
    }

    /// Majority quorums: any two always intersect, for every n.
    #[test]
    fn majority_quorum_always_intersects() {
        for n in 1..=1024u32 {
            let q = majority_quorum(n);
            assert!(q <= n, "n={n}");
            assert!(2 * q > n, "two majorities must share a node (n={n})");
        }
    }

    #[test]
    fn cpu_model_serializes_work() {
        let mut cpu = CpuModel::new(2);
        let n0 = NodeId(0);
        let t0 = SimTime::from_millis(10);
        let cost = SimDuration::from_millis(5);
        let first = cpu.process(n0, t0, cost);
        assert_eq!(first, SimTime::from_millis(15));
        // Second arrival during the first job queues behind it:
        let second = cpu.process(n0, SimTime::from_millis(12), cost);
        assert_eq!(second, SimTime::from_millis(20));
        // Other nodes are unaffected:
        assert_eq!(cpu.free_at(NodeId(1)), SimTime::ZERO);
        assert_eq!(
            cpu.backlog(n0, SimTime::from_millis(10)),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn cpu_idle_gap_resets_start_time() {
        let mut cpu = CpuModel::new(1);
        cpu.process(
            NodeId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(1),
        );
        let done = cpu.process(
            NodeId(0),
            SimTime::from_secs(10),
            SimDuration::from_millis(1),
        );
        assert_eq!(done, SimTime::from_secs(10) + SimDuration::from_millis(1));
    }

    #[test]
    fn batch_config_default_is_fabric() {
        let c = BatchConfig::default();
        assert_eq!(c.max_commands, 500);
        assert_eq!(c.max_wait, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "at least one command")]
    fn zero_batch_size_rejected() {
        let _ = BatchConfig::new(0, SimDuration::ZERO);
    }
}
