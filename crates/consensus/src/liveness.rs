//! Machine-checked liveness verdicts: the complement of [`crate::safety`].
//!
//! The [`SafetyMonitor`](crate::safety::SafetyMonitor) proves a run never
//! committed conflicting state; this module's [`LivenessMonitor`] proves the
//! run kept *making progress* — and, when it did not, says how badly it
//! degraded and since when. Gray failures (slow leaders, half-open links,
//! flaky NICs) rarely kill a consensus protocol outright; they stretch
//! commit gaps and trigger view-change storms. The monitor turns those
//! symptoms into a three-way verdict on the deterministic sim clock:
//!
//! * [`LivenessVerdict::Live`] — commits flowed and gaps stayed regular;
//! * [`LivenessVerdict::Degraded`] — progress continued, but the worst
//!   commit gap was `factor ×` the mean, or a view-change storm (several
//!   changes with no commit between them) was observed;
//! * [`LivenessVerdict::Stalled`] — nothing has committed for at least the
//!   configured stall gap, counting from the last commit (or from the start
//!   of the run if nothing ever committed).
//!
//! Like the safety monitor, it observes and counts — it never panics and
//! never influences the protocol. All state is constant-size per node
//! (progress watermarks) plus a handful of scalars, so it can ride along
//! every run for free.
//!
//! # Example
//!
//! ```
//! use coconut_consensus::liveness::{LivenessMonitor, LivenessVerdict};
//! use coconut_types::SimTime;
//!
//! let mut m = LivenessMonitor::default();
//! for s in 1..=5 {
//!     m.observe_commit(SimTime::from_secs(s));
//! }
//! assert!(matches!(
//!     m.report(SimTime::from_secs(6)).verdict,
//!     LivenessVerdict::Live
//! ));
//! // 30 s of silence later the run is stalled, since the last commit:
//! let r = m.report(SimTime::from_secs(35));
//! assert_eq!(
//!     r.verdict,
//!     LivenessVerdict::Stalled { since: SimTime::from_secs(5) }
//! );
//! ```

use std::collections::BTreeMap;

use coconut_types::{NodeId, SimDuration, SimTime};

/// Thresholds for the liveness verdict rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessConfig {
    /// A run is [`LivenessVerdict::Stalled`] when `now - last_commit`
    /// reaches this gap (and a node is a straggler when its progress
    /// watermark lags `now` by it).
    pub stall_gap: SimDuration,
    /// A run is [`LivenessVerdict::Degraded`] when the worst commit gap is
    /// at least this multiple of the mean gap.
    pub degraded_factor: f64,
    /// Number of view/round/term changes *without an intervening commit*
    /// that counts as one view-change storm.
    pub storm_threshold: u64,
}

impl Default for LivenessConfig {
    /// 10 s stall gap, 3× degradation factor, 3-change storms.
    fn default() -> Self {
        LivenessConfig {
            stall_gap: SimDuration::from_secs(10),
            degraded_factor: 3.0,
            storm_threshold: 3,
        }
    }
}

/// The three-way machine-checked liveness verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LivenessVerdict {
    /// Commits flowed with regular gaps and no storm.
    Live,
    /// Progress continued but was irregular: the worst commit gap was
    /// `factor ×` the mean, and/or a view-change storm fired.
    Degraded {
        /// Worst-gap-to-mean-gap ratio (≥ 1).
        factor: f64,
    },
    /// No commit for at least the configured stall gap.
    Stalled {
        /// Time of the last commit ([`SimTime::ZERO`] if nothing ever
        /// committed).
        since: SimTime,
    },
}

impl LivenessVerdict {
    /// `true` for [`LivenessVerdict::Live`].
    pub fn is_live(&self) -> bool {
        matches!(self, LivenessVerdict::Live)
    }

    /// `true` for anything better than [`LivenessVerdict::Stalled`] — the
    /// "Degraded-or-better" acceptance bar of the gray-failure campaign.
    pub fn is_at_least_degraded(&self) -> bool {
        !matches!(self, LivenessVerdict::Stalled { .. })
    }

    /// A compact, deterministic label for reports and goldens:
    /// `live`, `degraded(x2.41)`, `stalled(since=5.000s)`.
    pub fn label(&self) -> String {
        match self {
            LivenessVerdict::Live => "live".to_string(),
            LivenessVerdict::Degraded { factor } => format!("degraded(x{factor:.2})"),
            LivenessVerdict::Stalled { since } => {
                format!("stalled(since={:.3}s)", since.as_secs_f64())
            }
        }
    }
}

/// Everything the monitor observed, plus the verdict at report time.
#[derive(Debug, Clone, PartialEq)]
pub struct LivenessReport {
    /// The three-way verdict under the configured thresholds.
    pub verdict: LivenessVerdict,
    /// Cluster-level commits observed.
    pub commits: u64,
    /// View/round/term changes (or missed production slots, for DPoS).
    pub view_changes: u64,
    /// View-change storms: runs of `storm_threshold` changes with no
    /// commit between them.
    pub storms: u64,
    /// Worst gap between consecutive commits.
    pub max_gap: SimDuration,
    /// Mean gap between consecutive commits (zero with fewer than two).
    pub mean_gap: SimDuration,
    /// Time from the last commit (or from the start, if none) to the
    /// report instant.
    pub tail_gap: SimDuration,
    /// Nodes whose progress watermark lags the report instant by at least
    /// the stall gap.
    pub stragglers: u64,
    /// Nodes that ever reported progress.
    pub observed_nodes: u64,
}

/// Constant-memory liveness observer: commit gaps, per-node progress
/// watermarks, and view-change-storm counting on the sim clock.
///
/// Engines call [`LivenessMonitor::observe_commit`] wherever a quorum
/// finalizes a batch, [`LivenessMonitor::observe_view_change`] wherever the
/// protocol abandons a leader/round/view (for DPoS: a missed witness slot),
/// and [`LivenessMonitor::observe_progress`] when an individual node's
/// height/round advances. [`LivenessMonitor::report`] is pure with respect
/// to the observations and never panics.
#[derive(Debug, Clone)]
pub struct LivenessMonitor {
    cfg: LivenessConfig,
    commits: u64,
    first_commit: Option<SimTime>,
    last_commit: Option<SimTime>,
    max_gap: SimDuration,
    view_changes: u64,
    changes_since_commit: u64,
    storms: u64,
    watermarks: BTreeMap<NodeId, SimTime>,
}

impl Default for LivenessMonitor {
    fn default() -> Self {
        LivenessMonitor::new(LivenessConfig::default())
    }
}

impl LivenessMonitor {
    /// A monitor with explicit thresholds.
    pub fn new(cfg: LivenessConfig) -> Self {
        LivenessMonitor {
            cfg,
            commits: 0,
            first_commit: None,
            last_commit: None,
            max_gap: SimDuration::ZERO,
            view_changes: 0,
            changes_since_commit: 0,
            storms: 0,
            watermarks: BTreeMap::new(),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> LivenessConfig {
        self.cfg
    }

    /// A cluster-level commit at `now`.
    pub fn observe_commit(&mut self, now: SimTime) {
        if let Some(last) = self.last_commit {
            self.max_gap = self.max_gap.max(now.saturating_since(last));
        } else {
            self.first_commit = Some(now);
        }
        self.last_commit = Some(now);
        self.commits += 1;
        self.changes_since_commit = 0;
    }

    /// A view/round/term change (or missed production slot) at `now`.
    pub fn observe_view_change(&mut self, _now: SimTime) {
        self.view_changes += 1;
        self.changes_since_commit += 1;
        if self.changes_since_commit == self.cfg.storm_threshold {
            self.storms += 1;
        }
    }

    /// Node-level progress (height/round/term advanced) at `now`. One
    /// watermark per node — constant memory.
    pub fn observe_progress(&mut self, node: NodeId, now: SimTime) {
        self.watermarks.insert(node, now);
    }

    /// Commits observed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// View changes observed so far.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    /// The verdict and counters as of `now`.
    ///
    /// The stall rule flips exactly *at* the threshold: a tail gap of
    /// `stall_gap` is already stalled. A run with zero commits stalls once
    /// `now` itself reaches the gap (`since` is then [`SimTime::ZERO`]) — a
    /// quiescent chain with no demand is indistinguishable from a stalled
    /// one, so callers gate on offered load.
    pub fn report(&self, now: SimTime) -> LivenessReport {
        let last = self.last_commit.unwrap_or(SimTime::ZERO);
        let tail_gap = now.saturating_since(last);
        let mean_gap = match (self.first_commit, self.last_commit) {
            (Some(first), Some(last)) if self.commits >= 2 => {
                last.saturating_since(first) / (self.commits - 1)
            }
            _ => SimDuration::ZERO,
        };
        let factor = if mean_gap.is_zero() {
            1.0
        } else {
            (self.max_gap.as_secs_f64() / mean_gap.as_secs_f64()).max(1.0)
        };
        let verdict = if tail_gap >= self.cfg.stall_gap {
            LivenessVerdict::Stalled { since: last }
        } else if factor >= self.cfg.degraded_factor || self.storms > 0 {
            LivenessVerdict::Degraded { factor }
        } else {
            LivenessVerdict::Live
        };
        let stragglers = self
            .watermarks
            .values()
            .filter(|&&t| now.saturating_since(t) >= self.cfg.stall_gap)
            .count() as u64;
        LivenessReport {
            verdict,
            commits: self.commits,
            view_changes: self.view_changes,
            storms: self.storms,
            max_gap: self.max_gap,
            mean_gap,
            tail_gap,
            stragglers,
            observed_nodes: self.watermarks.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn steady_commits_are_live() {
        let mut m = LivenessMonitor::default();
        for s in 1..=20 {
            m.observe_commit(secs(s));
        }
        let r = m.report(secs(21));
        assert_eq!(r.verdict, LivenessVerdict::Live);
        assert_eq!(r.commits, 20);
        assert_eq!(r.max_gap, SimDuration::from_secs(1));
        assert_eq!(r.mean_gap, SimDuration::from_secs(1));
    }

    #[test]
    fn zero_commit_run_stalls_only_past_the_gap() {
        let m = LivenessMonitor::default();
        // Before the gap elapses the empty run is (vacuously) live.
        assert_eq!(m.report(secs(9)).verdict, LivenessVerdict::Live);
        // Exactly at the gap it flips, dated from the start of the run.
        assert_eq!(
            m.report(secs(10)).verdict,
            LivenessVerdict::Stalled {
                since: SimTime::ZERO
            }
        );
    }

    #[test]
    fn verdict_flips_exactly_at_the_stall_threshold() {
        let mut m = LivenessMonitor::default();
        m.observe_commit(secs(5));
        // One microsecond short of the gap: not stalled.
        let not_yet = secs(15) - SimDuration::from_micros(1);
        assert!(m.report(not_yet).verdict.is_at_least_degraded());
        // Exactly at the gap: stalled, since the last commit.
        assert_eq!(
            m.report(secs(15)).verdict,
            LivenessVerdict::Stalled { since: secs(5) }
        );
    }

    #[test]
    fn irregular_gaps_degrade_with_the_ratio() {
        let mut m = LivenessMonitor::default();
        // Nine 1 s gaps, then one 9 s gap: mean 1.8 s, worst 9 s → ×5.
        for s in 1..=10 {
            m.observe_commit(secs(s));
        }
        m.observe_commit(secs(19));
        let r = m.report(secs(20));
        match r.verdict {
            LivenessVerdict::Degraded { factor } => {
                assert!((factor - 5.0).abs() < 1e-9, "{factor}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(r.max_gap, SimDuration::from_secs(9));
    }

    #[test]
    fn storms_count_changes_without_commits() {
        let mut m = LivenessMonitor::default();
        m.observe_commit(secs(1));
        // Two changes, commit, two changes: never three in a row → no storm.
        for s in [2, 3] {
            m.observe_view_change(secs(s));
        }
        m.observe_commit(secs(4));
        for s in [5, 6] {
            m.observe_view_change(secs(s));
        }
        assert_eq!(m.report(secs(7)).storms, 0);
        // A third change with no commit in between: one storm, counted once
        // even as the stretch keeps growing.
        m.observe_view_change(secs(7));
        m.observe_view_change(secs(8));
        let r = m.report(secs(9));
        assert_eq!(r.storms, 1);
        assert_eq!(r.view_changes, 6);
        assert!(matches!(r.verdict, LivenessVerdict::Degraded { .. }));
    }

    #[test]
    fn single_commit_run_is_live_until_it_stalls() {
        let mut m = LivenessMonitor::default();
        m.observe_commit(secs(3));
        let r = m.report(secs(4));
        assert_eq!(r.verdict, LivenessVerdict::Live);
        assert_eq!(r.mean_gap, SimDuration::ZERO, "one commit has no gaps");
        assert_eq!(r.tail_gap, SimDuration::from_secs(1));
    }

    #[test]
    fn watermarks_count_stragglers() {
        let mut m = LivenessMonitor::default();
        m.observe_progress(NodeId(0), secs(19));
        m.observe_progress(NodeId(1), secs(5));
        m.observe_progress(NodeId(1), secs(6)); // overwrites, constant memory
        m.observe_commit(secs(19));
        let r = m.report(secs(20));
        assert_eq!(r.observed_nodes, 2);
        assert_eq!(r.stragglers, 1, "node 1 last progressed 14 s ago");
    }

    #[test]
    fn simultaneous_commits_never_divide_by_zero() {
        let mut m = LivenessMonitor::default();
        for _ in 0..5 {
            m.observe_commit(secs(2));
        }
        let r = m.report(secs(3));
        assert_eq!(r.verdict, LivenessVerdict::Live);
        assert_eq!(r.mean_gap, SimDuration::ZERO);
    }

    #[test]
    fn labels_are_deterministic() {
        assert_eq!(LivenessVerdict::Live.label(), "live");
        assert_eq!(
            LivenessVerdict::Degraded { factor: 2.4142 }.label(),
            "degraded(x2.41)"
        );
        assert_eq!(
            LivenessVerdict::Stalled { since: secs(5) }.label(),
            "stalled(since=5.000s)"
        );
        assert!(LivenessVerdict::Live.is_live());
        assert!(LivenessVerdict::Degraded { factor: 2.0 }.is_at_least_degraded());
        assert!(!LivenessVerdict::Stalled { since: secs(0) }.is_at_least_degraded());
    }

    #[test]
    fn custom_thresholds_apply() {
        let mut m = LivenessMonitor::new(LivenessConfig {
            stall_gap: SimDuration::from_secs(2),
            degraded_factor: 1.5,
            storm_threshold: 1,
        });
        m.observe_commit(secs(1));
        assert!(matches!(
            m.report(secs(3)).verdict,
            LivenessVerdict::Stalled { .. }
        ));
        m.observe_commit(secs(3));
        m.observe_view_change(secs(4));
        let r = m.report(secs(4));
        assert_eq!(r.storms, 1, "threshold 1 makes every change a storm");
        assert!(matches!(r.verdict, LivenessVerdict::Degraded { .. }));
    }
}
