//! Delegated Proof-of-Stake — the consensus of the modelled BitShares
//! (the paper runs BitShares/Graphene with 3 witnesses and
//! `block_interval` ∈ {1, 2, 5, 10} s, Tables 4 and 6).
//!
//! DPoS divides time into fixed slots of `block_interval`. Each slot is
//! assigned to one witness by a per-round shuffled schedule; the scheduled
//! witness packs pending transactions into a block and broadcasts it. A
//! crashed witness simply misses its slot — the chain skips a beat but
//! needs no view change, which is why the paper finds BitShares' throughput
//! insensitive to the network size (§5.8.2: "shifting witnesses finalizing
//! blocks is a reason for the constant performance").

use std::collections::BTreeSet;

use coconut_simnet::{FaultEvent, NetConfig, NetSim, NetStats, Topology};
use coconut_types::{NodeId, SimDuration, SimRng, SimTime};

use crate::liveness::{LivenessMonitor, LivenessReport};
use crate::{BatchConfig, Command, CommittedBatch, CpuModel, Membership};

/// Base chain-sync time for a joining witness plus a per-produced-block
/// replay cost; the joiner is only scheduled for slots after this completes.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_BLOCK: SimDuration = SimDuration::from_millis(2);

/// DPoS messages: slot timers and block announcements.
#[derive(Debug, Clone)]
enum DposMsg {
    /// Fires at a witness at its production slot.
    SlotTimer { slot: u64 },
    /// Fires at the node that armed a slot, 0.75 intervals past the slot's
    /// due time: if the scheduled witness has not produced by then — its
    /// timers stretched by a gray-slow window — the slot is forfeited and
    /// the schedule moves on without waiting for the straggler.
    SlotWatchdog { slot: u64 },
    /// A produced block being gossiped to the other nodes (apply cost only).
    BlockAnnounce,
    /// A joining witness finished replaying the chain.
    SyncDone { node: NodeId },
}

/// Configuration for a [`DposCluster`]; build with [`DposCluster::builder`].
#[derive(Debug, Clone)]
pub struct DposBuilder {
    witnesses: u32,
    standby: u32,
    topology: Option<Topology>,
    net: NetConfig,
    seed: u64,
    batch: BatchConfig,
    block_interval: SimDuration,
    proc_per_command: SimDuration,
}

impl DposBuilder {
    /// Witness placement (defaults to one witness per server).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Pre-provisions `k` standby witnesses (ids `witnesses..witnesses + k`)
    /// that start outside the schedule and can be admitted at runtime via
    /// [`DposCluster::join`]. Default 0.
    pub fn standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }

    /// Network characteristics.
    pub fn net(mut self, c: NetConfig) -> Self {
        self.net = c;
        self
    }

    /// RNG seed (drives the per-round witness shuffle).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Maximum transactions per block.
    pub fn batch(mut self, b: BatchConfig) -> Self {
        self.batch = b;
        self
    }

    /// BitShares' `block_interval`: the slot length.
    pub fn block_interval(mut self, d: SimDuration) -> Self {
        self.block_interval = d;
        self
    }

    /// CPU cost per packed transaction at the producing witness.
    pub fn proc_per_command(mut self, d: SimDuration) -> Self {
        self.proc_per_command = d;
        self
    }

    /// Builds the cluster; the first slot fires after one interval.
    pub fn build(self) -> DposCluster {
        let w = self.witnesses;
        let total = w + self.standby;
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::round_robin(total, total));
        assert_eq!(
            topology.node_count(),
            total,
            "topology must cover baseline + standby witnesses"
        );
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0xD905);
        let mut schedule: Vec<NodeId> = (0..w).map(NodeId).collect();
        rng.shuffle(&mut schedule);
        let mut net = NetSim::new(topology, self.net, self.seed);
        net.timer(
            schedule[0],
            self.block_interval,
            DposMsg::SlotTimer { slot: 0 },
        );
        for &guard in schedule.iter().skip(1) {
            net.timer(
                guard,
                self.block_interval.mul_f64(1.75),
                DposMsg::SlotWatchdog { slot: 0 },
            );
        }
        let slot_due = SimTime::ZERO + self.block_interval;
        DposCluster {
            witnesses: w,
            membership: Membership::new(w, self.standby),
            syncing: BTreeSet::new(),
            alive: vec![true; total as usize],
            net,
            cpu: CpuModel::new(total),
            rng,
            schedule,
            batch: self.batch,
            block_interval: self.block_interval,
            proc_per_command: self.proc_per_command,
            pending: Vec::new(),
            committed: Vec::new(),
            produced: 0,
            missed: 0,
            slot_due,
            next_expected: 0,
            liveness: LivenessMonitor::default(),
        }
    }
}

/// A simulated DPoS witness set.
///
/// # Example
///
/// ```
/// use coconut_consensus::{dpos::DposCluster, Command};
/// use coconut_types::{ClientId, SimDuration, SimTime, TxId};
///
/// let mut dpos = DposCluster::builder(3)
///     .seed(1)
///     .block_interval(SimDuration::from_secs(1))
///     .build();
/// dpos.submit(Command::unit(TxId::new(ClientId(0), 1)));
/// let blocks = dpos.run_until(SimTime::from_secs(3));
/// assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
/// ```
#[derive(Debug)]
pub struct DposCluster {
    witnesses: u32,
    /// Epoch-versioned witness set over the provisioned universe.
    membership: Membership,
    /// Joiners replaying the chain before they may be scheduled.
    syncing: BTreeSet<NodeId>,
    alive: Vec<bool>,
    net: NetSim<DposMsg>,
    cpu: CpuModel,
    rng: SimRng,
    schedule: Vec<NodeId>,
    batch: BatchConfig,
    block_interval: SimDuration,
    proc_per_command: SimDuration,
    pending: Vec<Command>,
    committed: Vec<CommittedBatch>,
    produced: u64,
    missed: u64,
    /// When the in-flight slot timer was due; a stretched (gray-slow)
    /// witness fires well past this and forfeits the slot.
    slot_due: SimTime,
    /// The lowest slot not yet handled. A slot is handled exactly once —
    /// by its witness's timer or, if that timer limps past the forfeit
    /// threshold, by the watchdog that skips it; whichever fires second
    /// sees `slot < next_expected` and stands down.
    next_expected: u64,
    /// Production-cadence and missed-slot liveness tracker.
    liveness: LivenessMonitor,
}

impl DposCluster {
    /// Starts building a DPoS cluster of `witnesses` block producers.
    ///
    /// # Panics
    ///
    /// Panics if `witnesses` is zero.
    pub fn builder(witnesses: u32) -> DposBuilder {
        assert!(witnesses > 0, "at least one witness required");
        DposBuilder {
            witnesses,
            standby: 0,
            topology: None,
            net: NetConfig::lan(),
            seed: 0,
            batch: BatchConfig::new(5000, SimDuration::from_secs(1)),
            block_interval: SimDuration::from_secs(1),
            proc_per_command: SimDuration::from_micros(3),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of witnesses.
    pub fn node_count(&self) -> u32 {
        self.witnesses
    }

    /// Blocks produced so far.
    pub fn blocks_produced(&self) -> u64 {
        self.produced
    }

    /// Slots missed by crashed witnesses.
    pub fn slots_missed(&self) -> u64 {
        self.missed
    }

    /// Witnesses currently in the production schedule.
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current witness-set configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Starts admitting a pre-provisioned standby witness: it replays the
    /// chain (longer the more blocks were produced) and only enters the
    /// regenerated schedule — bumping the epoch — once sync completes.
    /// Returns `false` if `node` is unknown, already scheduled, or already
    /// syncing.
    pub fn join(&mut self, node: NodeId) -> bool {
        if node.0 >= self.membership.provisioned()
            || self.membership.is_active(node)
            || self.syncing.contains(&node)
        {
            return false;
        }
        self.syncing.insert(node);
        let sync = SYNC_BASE + SYNC_PER_BLOCK * self.produced;
        self.net.timer(node, sync, DposMsg::SyncDone { node });
        true
    }

    /// Removes a witness from the schedule, regenerating it over the
    /// remaining members and bumping the epoch. An in-flight slot assigned
    /// to the departed witness is skipped like a crashed witness's slot.
    /// Returns `false` if `node` is not scheduled or is the last witness.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.membership.leave(node) {
            return false;
        }
        self.regenerate_schedule();
        true
    }

    /// Rebuilds the production schedule from the current members (a new
    /// shuffle of the active set, as BitShares does each maintenance round).
    fn regenerate_schedule(&mut self) {
        let mut schedule = self.membership.active_nodes();
        self.rng.shuffle(&mut schedule);
        self.schedule = schedule;
    }

    /// Network counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The liveness monitor's verdict as of the current virtual time.
    pub fn liveness_report(&self) -> LivenessReport {
        self.liveness.report(self.net.now())
    }

    /// Applies a network-level fault (partition, heal, loss burst, latency
    /// spike) to the cluster's message fabric. Crash/restart events are not
    /// network faults and return `false`.
    pub fn apply_net_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        self.net.apply_fault(at, event)
    }

    /// Commands waiting to be packed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits a command (a BitShares transaction, possibly carrying many
    /// operations) for inclusion.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push(cmd);
    }

    /// Crashes a witness; its slots are skipped.
    pub fn crash(&mut self, node: NodeId) {
        self.alive[node.0 as usize] = false;
    }

    /// Recovers a crashed witness.
    pub fn recover(&mut self, node: NodeId) {
        self.alive[node.0 as usize] = true;
    }

    /// Runs the slot schedule until `deadline`, returning produced blocks.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CommittedBatch> {
        while let Some(ev) = self.net.pop_at_or_before(deadline) {
            self.dispatch(ev.dst, ev.at, ev.msg);
        }
        self.net.advance_to(deadline);
        std::mem::take(&mut self.committed)
    }

    /// Due time of the next internal event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    fn witness_of(&self, slot: u64) -> NodeId {
        self.schedule[(slot % self.schedule.len() as u64) as usize]
    }

    fn dispatch(&mut self, me: NodeId, at: SimTime, msg: DposMsg) {
        match msg {
            DposMsg::SlotTimer { slot } => self.on_slot(me, at, slot),
            DposMsg::SlotWatchdog { slot } => self.on_watchdog(me, at, slot),
            DposMsg::BlockAnnounce => {
                // Receiving nodes apply the block; cost only.
                let _ = self.cpu.process(me, at, SimDuration::from_micros(50));
            }
            DposMsg::SyncDone { node } => self.on_sync_done(node),
        }
    }

    /// A joiner finished replaying the chain: admit it and regenerate the
    /// schedule. Its first slot can only come after this point, so a joiner
    /// never produces before sync completes.
    fn on_sync_done(&mut self, node: NodeId) {
        if !self.syncing.remove(&node) {
            return;
        }
        if self.membership.join(node) {
            self.regenerate_schedule();
        }
    }

    /// Arms `next_slot`'s production timer on its scheduled witness
    /// (reshuffling the schedule at round boundaries) plus a watchdog on
    /// every *other* scheduled witness — each tracks the slot cadence
    /// independently, as real DPoS nodes do, so one stretched witness
    /// timer cannot stall the global schedule (whichever healthy watchdog
    /// fires first forfeits the slot; the rest stand down).
    fn arm_next_slot(&mut self, at: SimTime, next_slot: u64) {
        if next_slot.is_multiple_of(self.schedule.len() as u64) {
            let mut schedule = std::mem::take(&mut self.schedule);
            self.rng.shuffle(&mut schedule);
            self.schedule = schedule;
        }
        let next_witness = self.witness_of(next_slot);
        self.slot_due = at + self.block_interval;
        self.net.timer(
            next_witness,
            self.block_interval,
            DposMsg::SlotTimer { slot: next_slot },
        );
        for i in 0..self.schedule.len() {
            let guard = self.schedule[i];
            if guard != next_witness {
                self.net.timer(
                    guard,
                    self.block_interval.mul_f64(1.75),
                    DposMsg::SlotWatchdog { slot: next_slot },
                );
            }
        }
    }

    /// The scheduled witness never produced: its timer is stretched past
    /// the forfeit threshold by a gray-slow window. Skip the slot — a
    /// missed beat, like a crash — and keep the cadence going so the rest
    /// of the network does not wait on one straggler.
    fn on_watchdog(&mut self, me: NodeId, at: SimTime, slot: u64) {
        if slot < self.next_expected || !self.alive[me.0 as usize] {
            return;
        }
        self.next_expected = slot + 1;
        self.missed += 1;
        self.liveness.observe_view_change(at);
        self.arm_next_slot(at, slot + 1);
    }

    fn on_slot(&mut self, me: NodeId, at: SimTime, slot: u64) {
        if slot < self.next_expected {
            // A straggler's stretched timer firing for a slot the watchdog
            // already forfeited on its behalf; the miss was counted there.
            return;
        }
        // A healthy witness fires exactly at the due time; a gray-slow one
        // (its timers stretched by the simulator) arrives late. Anything
        // more than half an interval past due forfeits the slot, as the
        // rest of the network has moved on.
        let too_late = at.saturating_since(self.slot_due) > self.block_interval.mul_f64(0.5);
        self.next_expected = slot + 1;
        // Schedule the next slot first (the schedule reshuffles each round).
        self.arm_next_slot(at, slot + 1);

        // A crashed witness misses its slot; so does one removed from the
        // membership while its slot timer was already in flight, and so
        // does a straggler that fired too far past its production window.
        if !self.alive[me.0 as usize] || !self.membership.is_active(me) || too_late {
            self.missed += 1;
            self.liveness.observe_view_change(at);
            return;
        }
        self.liveness.observe_progress(me, at);
        if self.pending.is_empty() {
            // Empty block: produced but uninteresting; count it.
            self.produced += 1;
            self.liveness.observe_commit(at);
            return;
        }
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        let cost = self.proc_per_command * batch.len() as u64 + SimDuration::from_micros(100);
        let done = self.cpu.process(me, at, cost);
        let bytes = 128 + batch.iter().map(|c| c.bytes as usize).sum::<usize>();
        self.net
            .broadcast_delayed(me, done - at, bytes, |_| DposMsg::BlockAnnounce);
        self.produced += 1;
        self.liveness.observe_commit(done);
        self.committed.push(CommittedBatch {
            commands: batch,
            proposer: me,
            round: slot,
            committed_at: done,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, TxId};

    fn tx(seq: u64) -> Command {
        Command::unit(TxId::new(ClientId(0), seq))
    }

    #[test]
    fn produces_blocks_at_interval() {
        let mut c = DposCluster::builder(3)
            .seed(1)
            .block_interval(SimDuration::from_secs(1))
            .build();
        for s in 0..9 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(2));
        assert!(!blocks.is_empty());
        // All submitted-before-slot commands are in the first block:
        assert_eq!(blocks[0].commands.len(), 9);
        let first = blocks[0].committed_at;
        assert!(first >= SimTime::from_secs(1) && first < SimTime::from_secs(2));
    }

    #[test]
    fn latency_tracks_block_interval() {
        // The paper: "finalization latency is close to the specified
        // block_interval" (§5.3).
        for interval in [1u64, 2, 5] {
            let mut c = DposCluster::builder(3)
                .seed(2)
                .block_interval(SimDuration::from_secs(interval))
                .build();
            c.submit(tx(1));
            let blocks = c.run_until(SimTime::from_secs(interval * 2));
            assert_eq!(blocks.len(), 1);
            let latency = blocks[0].committed_at - SimTime::ZERO;
            assert!(latency >= SimDuration::from_secs(interval));
            assert!(latency < SimDuration::from_secs(interval) + SimDuration::from_millis(100));
        }
    }

    #[test]
    fn crashed_witness_misses_slots_but_chain_continues() {
        let mut c = DposCluster::builder(3)
            .seed(3)
            .block_interval(SimDuration::from_millis(500))
            .build();
        c.crash(NodeId(0));
        for s in 0..30 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(10));
        assert!(c.slots_missed() > 0, "node 0's slots are skipped");
        let total: usize = blocks.iter().map(|b| b.commands.len()).sum();
        assert_eq!(total, 30, "live witnesses still pack everything");
        assert!(blocks.iter().all(|b| b.proposer != NodeId(0)));
    }

    #[test]
    fn schedule_rotates_witnesses() {
        let mut c = DposCluster::builder(3)
            .seed(4)
            .batch(BatchConfig::new(10, SimDuration::from_secs(1)))
            .block_interval(SimDuration::from_millis(100))
            .build();
        for s in 0..300 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(40));
        let mut producers: Vec<u32> = blocks.iter().map(|b| b.proposer.0).collect();
        producers.sort_unstable();
        producers.dedup();
        assert_eq!(producers.len(), 3, "every witness produces");
    }

    #[test]
    fn batch_cap_respected() {
        let mut c = DposCluster::builder(3)
            .seed(5)
            .batch(BatchConfig::new(4, SimDuration::from_secs(1)))
            .block_interval(SimDuration::from_millis(200))
            .build();
        for s in 0..10 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(5));
        assert!(blocks.iter().all(|b| b.commands.len() <= 4));
        assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 10);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut c = DposCluster::builder(3).seed(seed).build();
            for s in 0..10 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(5))
                .iter()
                .map(|b| (b.round, b.proposer, b.commands.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(6), run(6));
    }

    #[test]
    fn join_extends_schedule_after_sync() {
        let mut c = DposCluster::builder(3)
            .standby(1)
            .seed(61)
            .batch(BatchConfig::new(5, SimDuration::from_secs(1)))
            .block_interval(SimDuration::from_millis(200))
            .build();
        assert!(c.join(NodeId(3)));
        assert!(!c.join(NodeId(3)), "already syncing");
        for s in 0..100 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        assert_eq!(c.active_count(), 4);
        assert_eq!(c.config_epoch(), 1);
        assert!(
            blocks.iter().any(|b| b.proposer == NodeId(3)),
            "the admitted witness must get slots"
        );
        assert_eq!(
            blocks.iter().map(|b| b.commands.len()).sum::<usize>(),
            100,
            "no commands lost across the join"
        );
    }

    #[test]
    fn joiner_never_produces_before_sync_completes() {
        let mut c = DposCluster::builder(3)
            .standby(1)
            .seed(63)
            .block_interval(SimDuration::from_millis(100))
            .build();
        for s in 0..50 {
            c.submit(tx(s));
        }
        // Produce some chain history first, then start the join.
        c.run_until(SimTime::from_secs(2));
        assert!(c.join(NodeId(3)));
        let sync_deadline = c.now() + SYNC_BASE + SYNC_PER_BLOCK * c.blocks_produced();
        for s in 50..80 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        for b in &blocks {
            if b.proposer == NodeId(3) {
                assert!(
                    b.committed_at > sync_deadline,
                    "joiner produced at {:?} before sync completed at {:?}",
                    b.committed_at,
                    sync_deadline
                );
            }
        }
        assert_eq!(c.config_epoch(), 1);
    }

    #[test]
    fn leave_regenerates_schedule_without_departed_witness() {
        let mut c = DposCluster::builder(3)
            .seed(62)
            .batch(BatchConfig::new(5, SimDuration::from_secs(1)))
            .block_interval(SimDuration::from_millis(200))
            .build();
        for s in 0..40 {
            c.submit(tx(s));
        }
        c.run_until(SimTime::from_secs(2));
        assert!(c.leave(NodeId(0)));
        assert!(!c.leave(NodeId(0)), "already departed");
        for s in 40..80 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        assert_eq!(c.active_count(), 2);
        assert_eq!(c.config_epoch(), 1);
        assert!(
            blocks.iter().all(|b| b.proposer != NodeId(0)),
            "departed witness must not produce after leaving"
        );
        // The chain keeps packing everything with the smaller witness set.
        let mut seqs: Vec<u64> = blocks
            .iter()
            .flat_map(|b| b.commands.iter().map(|c| c.tx.seq()))
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (40..80).collect::<Vec<u64>>());
    }

    #[test]
    fn churn_run_is_deterministic() {
        let run = || {
            let mut c = DposCluster::builder(3)
                .standby(1)
                .seed(64)
                .block_interval(SimDuration::from_millis(250))
                .build();
            for s in 0..30 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(2));
            c.join(NodeId(3));
            c.run_until(SimTime::from_secs(4));
            c.leave(NodeId(1));
            let got = c.run_until(SimTime::from_secs(20));
            let commits: Vec<(u64, u32, usize)> = got
                .iter()
                .map(|b| (b.round, b.proposer.0, b.commands.len()))
                .collect();
            (
                commits,
                c.active_count(),
                c.config_epoch(),
                c.slots_missed(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gray_slow_witness_forfeits_slots_but_cadence_survives() {
        // A gray-slow witness (timers stretched x32) must only cost its own
        // slots: the watchdog skips them and the schedule keeps its beat,
        // so the chain reads live-or-degraded, never stalled.
        let mut c = DposCluster::builder(3)
            .seed(11)
            .block_interval(SimDuration::from_secs(1))
            .build();
        c.run_until(SimTime::from_secs(5));
        assert!(c.apply_net_fault(
            c.now(),
            &FaultEvent::SlowNode {
                node: NodeId(2),
                factor: 32.0,
                window: SimDuration::from_secs(5),
            },
        ));
        c.run_until(SimTime::from_secs(28));
        let report = c.liveness_report();
        assert!(c.slots_missed() > 0, "the straggler's slots are forfeited");
        assert!(
            report.verdict.is_at_least_degraded(),
            "one slow witness must not stall the chain: {} (missed {}, produced {})",
            report.verdict.label(),
            c.slots_missed(),
            c.blocks_produced(),
        );
    }

    #[test]
    fn empty_slots_still_count_as_produced() {
        let mut c = DposCluster::builder(3)
            .seed(7)
            .block_interval(SimDuration::from_secs(1))
            .build();
        let blocks = c.run_until(SimTime::from_secs(5));
        assert!(blocks.is_empty(), "no commands → no emitted batches");
        assert!(
            c.blocks_produced() >= 4,
            "witnesses keep minting empty blocks"
        );
    }
}
