//! Istanbul BFT — the consensus of the modelled Quorum (the paper runs
//! ConsenSys Quorum with `istanbul.blockperiod` ∈ {1, 2, 5, 10} s, Table 6).
//!
//! IBFT is a three-phase BFT protocol with a rotating proposer: the proposer
//! of height *h*, round *r* is node `(h + r) mod n`. Like the real Quorum,
//! the modelled cluster produces a block every `blockperiod` *even when the
//! transaction pool is empty* — empty blocks are exactly what the paper
//! observes during Quorum's liveness anomaly (§5.5), so the engine must be
//! able to emit them.
//!
//! A round change (`RoundChange` messages, 2f + 1 quorum) replaces a
//! non-performing proposer.
//!
//! # Byzantine behaviour
//!
//! Nodes flagged via [`IbftCluster::set_byzantine`] misbehave while their
//! fault window is open, mirroring the PBFT engine: an equivocating
//! proposer sends conflicting blocks for one height to disjoint halves of
//! the honest validators, and a double-voting validator backs both with
//! prepare and commit votes. The embedded [`SafetyMonitor`] counts
//! observed misbehaviour and any invariant actually broken.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use coconut_simnet::{ByzantineBehaviour, FaultEvent, NetConfig, NetSim, NetStats, Topology};
use coconut_types::{Hasher64, NodeId, SimDuration, SimTime};

use crate::liveness::{LivenessMonitor, LivenessReport};
use crate::safety::{ByzantineFlags, SafetyMonitor, SafetyReport, VotePhase};
use crate::{bft_quorum, BatchConfig, Command, CommittedBatch, CpuModel, Membership};

/// Base catch-up time a joiner spends before it may vote (state-transfer
/// handshake), plus a per-committed-block transfer cost.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_BATCH: SimDuration = SimDuration::from_millis(2);

/// IBFT protocol messages and timers.
#[derive(Debug, Clone)]
enum IbftMsg {
    /// Proposer cadence timer for a height/round.
    ProposeTimer { height: u64, round: u64 },
    /// Round-progress timer at a validator.
    RoundTimeout { height: u64, round: u64 },
    PrePrepare {
        height: u64,
        round: u64,
        digest: u64,
        batch: Vec<Command>,
    },
    Prepare {
        epoch: u64,
        height: u64,
        round: u64,
        digest: u64,
        from: NodeId,
    },
    Commit {
        epoch: u64,
        height: u64,
        round: u64,
        digest: u64,
        from: NodeId,
    },
    RoundChange {
        height: u64,
        round: u64,
        from: NodeId,
    },
    /// A joiner's catch-up/state transfer finished: activate it.
    SyncDone { node: NodeId },
}

/// Per-(height, round) progress at one validator; vote tallies are kept per
/// digest so an equivocated sibling block can never inflate the count of
/// the block this node actually holds.
#[derive(Debug, Default, Clone)]
struct SlotState {
    digest: Option<u64>,
    batch: Option<Vec<Command>>,
    prepares: HashMap<u64, u32>,
    commits: HashMap<u64, u32>,
    prepared: bool,
    committed: bool,
}

#[derive(Debug)]
struct IbftNode {
    height: u64,
    round: u64,
    slots: HashMap<(u64, u64), SlotState>,
    round_change_votes: HashMap<(u64, u64), u32>,
    voted_round: HashMap<u64, u64>,
    alive: bool,
}

impl IbftNode {
    fn new() -> Self {
        IbftNode {
            height: 0,
            round: 0,
            slots: HashMap::new(),
            round_change_votes: HashMap::new(),
            voted_round: HashMap::new(),
            alive: true,
        }
    }
}

/// Configuration for an [`IbftCluster`]; build with [`IbftCluster::builder`].
#[derive(Debug, Clone)]
pub struct IbftBuilder {
    nodes: u32,
    standby: u32,
    topology: Option<Topology>,
    net: NetConfig,
    seed: u64,
    batch: BatchConfig,
    block_period: SimDuration,
    round_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
}

impl IbftBuilder {
    /// Node placement (defaults to one node per server).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Pre-provisions `k` standby validators (ids `nodes..nodes + k`) that
    /// start outside the active membership and can be admitted at runtime
    /// via [`IbftCluster::join`]. Default 0.
    pub fn standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }

    /// Network characteristics.
    pub fn net(mut self, c: NetConfig) -> Self {
        self.net = c;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Maximum transactions per block.
    pub fn batch(mut self, b: BatchConfig) -> Self {
        self.batch = b;
        self
    }

    /// Quorum's `istanbul.blockperiod`: minimum time between consecutive
    /// blocks.
    pub fn block_period(mut self, d: SimDuration) -> Self {
        self.block_period = d;
        self
    }

    /// Round-change timeout.
    pub fn round_timeout(mut self, d: SimDuration) -> Self {
        self.round_timeout = d;
        self
    }

    /// Fixed CPU cost of handling any protocol message.
    pub fn proc_per_msg(mut self, d: SimDuration) -> Self {
        self.proc_per_msg = d;
        self
    }

    /// Additional CPU cost per command in a proposal.
    pub fn proc_per_command(mut self, d: SimDuration) -> Self {
        self.proc_per_command = d;
        self
    }

    /// Builds the cluster; the first proposal fires after one block period.
    pub fn build(self) -> IbftCluster {
        let n = self.nodes;
        let total = n + self.standby;
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::round_robin(total, total));
        assert_eq!(
            topology.node_count(),
            total,
            "topology must cover baseline + standby nodes"
        );
        let mut net = NetSim::new(topology, self.net, self.seed);
        net.timer(
            NodeId(0),
            self.block_period,
            IbftMsg::ProposeTimer {
                height: 0,
                round: 0,
            },
        );
        // Every validator watches height 0 so a dead first proposer is
        // detected (Quorum keeps minting blocks via round changes).
        for i in 0..n {
            net.timer(
                NodeId(i),
                self.round_timeout,
                IbftMsg::RoundTimeout {
                    height: 0,
                    round: 0,
                },
            );
        }
        IbftCluster {
            nodes: (0..total).map(|_| IbftNode::new()).collect(),
            membership: Membership::new(n, self.standby),
            net,
            cpu: CpuModel::new(total),
            batch: self.batch,
            pending: Vec::new(),
            committed: Vec::new(),
            next_height: 0,
            block_period: self.block_period,
            round_timeout: self.round_timeout,
            proc_per_msg: self.proc_per_msg,
            proc_per_command: self.proc_per_command,
            commit_quorum: HashMap::new(),
            emit_empty_blocks: true,
            byz: vec![ByzantineFlags::default(); total as usize],
            monitor: SafetyMonitor::new(bft_quorum(n)),
            liveness: LivenessMonitor::default(),
            equiv_sibling: HashMap::new(),
            stale_epoch_rejections: 0,
            committed_txs: BTreeSet::new(),
        }
    }
}

/// A simulated Istanbul BFT validator set.
///
/// # Example
///
/// ```
/// use coconut_consensus::{ibft::IbftCluster, Command};
/// use coconut_types::{ClientId, SimDuration, SimTime, TxId};
///
/// let mut ibft = IbftCluster::builder(4)
///     .seed(5)
///     .block_period(SimDuration::from_secs(1))
///     .build();
/// ibft.submit(Command::unit(TxId::new(ClientId(0), 1)));
/// let blocks = ibft.run_until(SimTime::from_secs(3));
/// assert!(blocks.iter().any(|b| !b.commands.is_empty()));
/// ```
#[derive(Debug)]
pub struct IbftCluster {
    nodes: Vec<IbftNode>,
    /// Epoch-versioned active membership over the provisioned universe.
    membership: Membership,
    net: NetSim<IbftMsg>,
    cpu: CpuModel,
    batch: BatchConfig,
    pending: Vec<Command>,
    committed: Vec<CommittedBatch>,
    next_height: u64,
    block_period: SimDuration,
    round_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
    commit_quorum: HashMap<(u64, u64), Vec<(NodeId, SimTime)>>,
    emit_empty_blocks: bool,
    /// Per-node Byzantine fault windows.
    byz: Vec<ByzantineFlags>,
    /// Message-level safety invariant checker.
    monitor: SafetyMonitor,
    /// Commit-cadence and round-change-storm liveness tracker.
    liveness: LivenessMonitor,
    /// (height, round) → the conflicting sibling digest an equivocating
    /// proposer broadcast alongside its real proposal.
    equiv_sibling: HashMap<(u64, u64), u64>,
    /// Votes dropped because they carried a superseded membership epoch.
    stale_epoch_rejections: u64,
    /// Transactions already finalized, so a batch orphaned by a round or
    /// epoch change is never re-proposed after its commands committed.
    committed_txs: BTreeSet<u64>,
}

impl IbftCluster {
    /// Starts building an IBFT cluster of `nodes` validators.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn builder(nodes: u32) -> IbftBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        IbftBuilder {
            nodes,
            standby: 0,
            topology: None,
            net: NetConfig::lan(),
            seed: 0,
            batch: BatchConfig::new(1000, SimDuration::from_secs(1)),
            block_period: SimDuration::from_secs(1),
            round_timeout: SimDuration::from_secs(4),
            proc_per_msg: SimDuration::from_micros(30),
            proc_per_command: SimDuration::from_micros(4),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of validators.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Whether empty blocks are emitted to the caller (Quorum's behaviour).
    /// Disable to only surface non-empty blocks.
    pub fn set_emit_empty_blocks(&mut self, emit: bool) {
        self.emit_empty_blocks = emit;
    }

    /// Network counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Applies a network-level fault (partition, heal, loss burst, latency
    /// spike) to the cluster's message fabric. Crash/restart events are not
    /// network faults and return `false`.
    pub fn apply_net_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        self.net.apply_fault(at, event)
    }

    /// Commands accepted but not yet included in a block.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits a command to the transaction pool.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push(cmd);
    }

    /// Removes every queued command (models a txpool flush).
    pub fn drop_pending(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Flags `node` to misbehave (`behaviour`) until virtual time `until`.
    pub fn set_byzantine(&mut self, node: NodeId, behaviour: ByzantineBehaviour, until: SimTime) {
        self.byz[node.0 as usize].arm(behaviour, until);
    }

    /// The safety monitor's verdict over everything observed so far.
    pub fn safety_report(&self) -> SafetyReport {
        self.monitor.report()
    }

    /// The liveness monitor's verdict as of the current virtual time.
    pub fn liveness_report(&self) -> LivenessReport {
        self.liveness.report(self.net.now())
    }

    /// Crashes a validator.
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = false;
    }

    /// Recovers a crashed validator.
    pub fn recover(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = true;
    }

    /// Runs the protocol until `deadline`, returning blocks committed in
    /// this window (empty blocks included when enabled).
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CommittedBatch> {
        while let Some(ev) = self.net.pop_at_or_before(deadline) {
            self.dispatch(ev.dst, ev.at, ev.msg);
        }
        self.net.advance_to(deadline);
        std::mem::take(&mut self.committed)
    }

    /// Due time of the next internal event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    /// Validators currently in the active membership.
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current membership configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Votes dropped because they carried a superseded membership epoch.
    pub fn stale_epoch_rejections(&self) -> u64 {
        self.stale_epoch_rejections
    }

    /// Starts admitting a pre-provisioned standby validator: it first syncs
    /// the chain (catch-up takes longer the more blocks were committed) and
    /// only joins the active membership — bumping the epoch — when the
    /// transfer completes. Returns `false` if `node` is unknown, already
    /// active, or already syncing.
    pub fn join(&mut self, node: NodeId) -> bool {
        if node.0 >= self.membership.provisioned()
            || self.membership.is_active(node)
            || self.monitor.is_syncing(node)
        {
            return false;
        }
        self.monitor.observe_sync_start(node);
        let sync = SYNC_BASE + SYNC_PER_BATCH * self.next_height;
        self.net.timer(node, sync, IbftMsg::SyncDone { node });
        true
    }

    /// Removes a validator from the active membership, bumping the epoch
    /// and recomputing the quorum. Returns `false` if `node` is not an
    /// active member or is the last one.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.membership.leave(node) {
            return false;
        }
        self.on_epoch_change();
        true
    }

    fn quorum(&self) -> u32 {
        bft_quorum(self.membership.active_count())
    }

    fn proposer_of(&self, height: u64, round: u64) -> NodeId {
        // Rotation over the active membership; identical to
        // `(height + round) mod n` until the first join/leave.
        self.membership.select(height + round)
    }

    fn dispatch(&mut self, me: NodeId, at: SimTime, msg: IbftMsg) {
        if !self.nodes[me.0 as usize].alive {
            return;
        }
        if !self.membership.is_active(me) {
            // A standby/departed validator ignores the protocol entirely;
            // only its own sync-completion timer is meaningful.
            if let IbftMsg::SyncDone { node } = msg {
                self.on_sync_done(node);
            }
            return;
        }
        match msg {
            IbftMsg::ProposeTimer { height, round } => self.on_propose_timer(me, height, round),
            IbftMsg::RoundTimeout { height, round } => self.on_round_timeout(me, height, round),
            IbftMsg::PrePrepare {
                height,
                round,
                digest,
                batch,
            } => self.on_pre_prepare(me, at, height, round, digest, batch),
            IbftMsg::Prepare {
                epoch,
                height,
                round,
                digest,
                from,
            } => {
                if epoch != self.membership.epoch() {
                    self.stale_epoch_rejections += 1;
                    return;
                }
                self.on_prepare(me, at, height, round, digest, from)
            }
            IbftMsg::Commit {
                epoch,
                height,
                round,
                digest,
                from,
            } => {
                if epoch != self.membership.epoch() {
                    self.stale_epoch_rejections += 1;
                    return;
                }
                self.on_commit(me, at, height, round, digest, from)
            }
            IbftMsg::RoundChange {
                height,
                round,
                from,
            } => self.on_round_change(me, at, height, round, from),
            IbftMsg::SyncDone { .. } => {}
        }
    }

    /// A joiner finished its catch-up: admit it to the active membership at
    /// the next open height and bump the configuration epoch.
    fn on_sync_done(&mut self, node: NodeId) {
        if !self.monitor.is_syncing(node) || !self.membership.join(node) {
            return;
        }
        self.monitor.observe_sync_complete(node);
        {
            let joiner = &mut self.nodes[node.0 as usize];
            joiner.height = self.next_height;
            joiner.round = 0;
        }
        self.on_epoch_change();
    }

    /// Applies a membership change: recompute the quorum over the new
    /// active count, abandon in-flight slots (their epoch is superseded —
    /// a quorum of the old membership must not certify a commit), reclaim
    /// their commands, and restart the proposal cadence over the new
    /// membership.
    fn on_epoch_change(&mut self) {
        let quorum = self.quorum();
        self.monitor.begin_epoch(self.membership.epoch(), quorum);
        // Reclaim commands stuck in uncommitted slots, in (height, round)
        // order, deduplicated (several validators hold the same in-flight
        // block) and filtered against already-finalized transactions.
        let mut by_slot: BTreeMap<(u64, u64), Vec<Command>> = BTreeMap::new();
        for node in &mut self.nodes {
            for (&(height, round), slot) in node.slots.iter() {
                if slot.committed {
                    continue;
                }
                if let Some(batch) = &slot.batch {
                    by_slot
                        .entry((height, round))
                        .or_insert_with(|| batch.clone());
                }
            }
            node.slots.retain(|_, s| s.committed);
            node.round_change_votes.clear();
            node.voted_round.clear();
        }
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut restored: Vec<Command> = Vec::new();
        for batch in by_slot.into_values() {
            for c in batch {
                if !self.committed_txs.contains(&c.tx.as_u64()) && seen.insert(c.tx.as_u64()) {
                    restored.push(c);
                }
            }
        }
        restored.append(&mut self.pending);
        self.pending = restored;
        let height = self.next_height;
        self.commit_quorum.retain(|&(h, _), _| h < height);
        // Restart the pipeline under the new epoch: every active validator
        // realigns on (next_height, round 0) and the proposer re-proposes.
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if self.nodes[i].alive && self.membership.is_active(id) {
                let node = &mut self.nodes[i];
                node.height = height;
                node.round = 0;
                self.net.timer(
                    id,
                    self.round_timeout,
                    IbftMsg::RoundTimeout { height, round: 0 },
                );
            }
        }
        self.net.timer(
            self.proposer_of(height, 0),
            self.block_period,
            IbftMsg::ProposeTimer { height, round: 0 },
        );
    }

    fn on_propose_timer(&mut self, me: NodeId, height: u64, round: u64) {
        {
            let node = &self.nodes[me.0 as usize];
            if height != self.next_height
                || node.round != round
                || self.proposer_of(height, round) != me
            {
                return;
            }
            if node
                .slots
                .get(&(height, round))
                .is_some_and(|s| s.digest.is_some())
            {
                return; // already proposed this slot
            }
        }
        // Unlike PBFT/Sawtooth, IBFT proposes on cadence even with an empty
        // pool — Quorum mints empty blocks.
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        let digest = digest_of(&batch, height, round);
        let bytes = 64 + batch.iter().map(|c| c.bytes as usize).sum::<usize>();
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let now = self.net.now();
        let done = self.cpu.process(me, now, cost);
        {
            let slot = self.nodes[me.0 as usize]
                .slots
                .entry((height, round))
                .or_default();
            slot.digest = Some(digest);
            slot.batch = Some(batch.clone());
            slot.prepares.insert(digest, 1);
        }
        self.monitor.observe_proposal(round, height, me, digest);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, round, height, digest, me);
        if self.byz[me.0 as usize].equivocates(now) && self.nodes.len() >= 3 {
            // Equivocating proposer: a sibling block with the same commands
            // but a conflicting digest goes to half the honest validators;
            // Byzantine accomplices receive both versions.
            let alt = sibling_digest_of(&batch, height, round);
            self.equiv_sibling.insert((height, round), alt);
            self.monitor.observe_proposal(round, height, me, alt);
            let extra = done - now;
            let mut honest_idx = 0usize;
            for i in 0..self.nodes.len() {
                let dst = NodeId(i as u32);
                if dst == me {
                    continue;
                }
                let accomplice = self.byz[i].is_byzantine(now);
                if accomplice || honest_idx.is_multiple_of(2) {
                    self.net.send_delayed(
                        me,
                        dst,
                        extra,
                        bytes,
                        IbftMsg::PrePrepare {
                            height,
                            round,
                            digest,
                            batch: batch.clone(),
                        },
                    );
                }
                if accomplice || honest_idx % 2 == 1 {
                    self.net.send_delayed(
                        me,
                        dst,
                        extra,
                        bytes,
                        IbftMsg::PrePrepare {
                            height,
                            round,
                            digest: alt,
                            batch: batch.clone(),
                        },
                    );
                }
                if !accomplice {
                    honest_idx += 1;
                }
            }
        } else {
            self.net
                .broadcast_delayed(me, done - now, bytes, |_| IbftMsg::PrePrepare {
                    height,
                    round,
                    digest,
                    batch: batch.clone(),
                });
        }
        self.net.timer(
            me,
            self.round_timeout,
            IbftMsg::RoundTimeout { height, round },
        );
    }

    fn on_pre_prepare(
        &mut self,
        me: NodeId,
        at: SimTime,
        height: u64,
        round: u64,
        digest: u64,
        batch: Vec<Command>,
    ) {
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let done = self.cpu.process(me, at, cost);
        let extra = done - at;
        let epoch = self.membership.epoch();
        {
            let node = &mut self.nodes[me.0 as usize];
            if height != node.height || round != node.round {
                return;
            }
            let slot = node.slots.entry((height, round)).or_default();
            if slot.batch.is_some() {
                if slot.digest != Some(digest) && self.byz[me.0 as usize].double_votes(at) {
                    // A conflicting proposal for a slot we already accepted:
                    // honest validators drop it; a double-voting validator
                    // votes for it anyway without adopting it.
                    self.net
                        .broadcast_delayed(me, extra, 64, |_| IbftMsg::Prepare {
                            epoch,
                            height,
                            round,
                            digest,
                            from: me,
                        });
                    self.net
                        .broadcast_delayed(me, extra, 64, |_| IbftMsg::Commit {
                            epoch,
                            height,
                            round,
                            digest,
                            from: me,
                        });
                }
                return;
            }
            slot.digest = Some(digest);
            slot.batch = Some(batch);
            *slot.prepares.entry(digest).or_insert(0) += 2; // proposer implicit + own
        }
        let proposer = self.proposer_of(height, round);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, round, height, digest, proposer);
        self.monitor
            .observe_vote(me, VotePhase::Prepare, round, height, digest, me);
        self.net
            .broadcast_delayed(me, extra, 64, |_| IbftMsg::Prepare {
                epoch,
                height,
                round,
                digest,
                from: me,
            });
        self.net.timer(
            me,
            self.round_timeout,
            IbftMsg::RoundTimeout { height, round },
        );
        self.check_prepared(me, height, round, digest);
    }

    fn on_prepare(
        &mut self,
        me: NodeId,
        at: SimTime,
        height: u64,
        round: u64,
        digest: u64,
        from: NodeId,
    ) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        {
            let node = &mut self.nodes[me.0 as usize];
            if height != node.height || round != node.round {
                return;
            }
            let slot = node.slots.entry((height, round)).or_default();
            if slot.digest.is_some() && slot.digest != Some(digest) {
                return;
            }
            *slot.prepares.entry(digest).or_insert(0) += 1;
        }
        self.monitor
            .observe_vote(me, VotePhase::Prepare, round, height, digest, from);
        self.check_prepared(me, height, round, digest);
    }

    fn check_prepared(&mut self, me: NodeId, height: u64, round: u64, digest: u64) {
        let quorum = self.quorum();
        let now = self.net.now();
        let should_commit;
        {
            let node = &mut self.nodes[me.0 as usize];
            let slot = node.slots.entry((height, round)).or_default();
            should_commit = !slot.prepared
                && slot.digest == Some(digest)
                && slot.prepares.get(&digest).copied().unwrap_or(0) >= quorum;
            if should_commit {
                slot.prepared = true;
                *slot.commits.entry(digest).or_insert(0) += 1;
            }
        }
        if should_commit {
            self.monitor
                .observe_quorum(me, VotePhase::Prepare, round, height, digest);
            self.monitor
                .observe_vote(me, VotePhase::Commit, round, height, digest, me);
            let epoch = self.membership.epoch();
            let done = self.cpu.process(me, now, self.proc_per_msg);
            self.net
                .broadcast_delayed(me, done - now, 64, |_| IbftMsg::Commit {
                    epoch,
                    height,
                    round,
                    digest,
                    from: me,
                });
            // An equivocating proposer finishes its attack: the sibling
            // fork needs its commit vote too.
            if self.proposer_of(height, round) == me {
                if let Some(&alt) = self.equiv_sibling.get(&(height, round)) {
                    if alt != digest {
                        self.net
                            .broadcast_delayed(me, done - now, 64, |_| IbftMsg::Commit {
                                epoch,
                                height,
                                round,
                                digest: alt,
                                from: me,
                            });
                    }
                }
            }
            self.check_committed(me, height, round, digest);
        }
    }

    fn on_commit(
        &mut self,
        me: NodeId,
        at: SimTime,
        height: u64,
        round: u64,
        digest: u64,
        from: NodeId,
    ) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        {
            let node = &mut self.nodes[me.0 as usize];
            if height != node.height || round != node.round {
                return;
            }
            let slot = node.slots.entry((height, round)).or_default();
            if slot.digest.is_some() && slot.digest != Some(digest) {
                return;
            }
            *slot.commits.entry(digest).or_insert(0) += 1;
        }
        self.monitor
            .observe_vote(me, VotePhase::Commit, round, height, digest, from);
        self.check_committed(me, height, round, digest);
    }

    fn check_committed(&mut self, me: NodeId, height: u64, round: u64, digest: u64) {
        let quorum = self.quorum();
        let now = self.net.now();
        let locally_committed;
        {
            let node = &mut self.nodes[me.0 as usize];
            let slot = node.slots.entry((height, round)).or_default();
            locally_committed = !slot.committed
                && slot.prepared
                && slot.digest == Some(digest)
                && slot.commits.get(&digest).copied().unwrap_or(0) >= quorum;
            if locally_committed {
                slot.committed = true;
                node.height = node.height.max(height + 1);
                node.round = 0;
            }
        }
        if !locally_committed {
            return;
        }
        self.liveness.observe_progress(me, now);
        self.monitor
            .observe_quorum(me, VotePhase::Commit, round, height, digest);
        // Vote tallies are reset on every membership change, so the quorum
        // behind this commit formed entirely in the current epoch.
        self.monitor
            .observe_epoch_commit(self.membership.epoch(), height, digest);
        // Watch the next height: its proposer might be dead.
        self.net.timer(
            me,
            self.block_period + self.round_timeout,
            IbftMsg::RoundTimeout {
                height: height + 1,
                round: 0,
            },
        );
        let entry = self.commit_quorum.entry((height, round)).or_default();
        if !entry.iter().any(|(n, _)| *n == me) {
            entry.push((me, now));
        }
        if entry.len() as u32 >= quorum && height == self.next_height {
            let committed_at = entry.iter().map(|&(_, t)| t).max().unwrap_or(now);
            let batch = self
                .nodes
                .iter()
                .find_map(|n| n.slots.get(&(height, round)).and_then(|s| s.batch.clone()))
                .unwrap_or_default();
            self.next_height = height + 1;
            self.liveness.observe_commit(committed_at);
            for c in &batch {
                self.committed_txs.insert(c.tx.as_u64());
            }
            if !batch.is_empty() || self.emit_empty_blocks {
                self.committed.push(CommittedBatch {
                    commands: batch,
                    proposer: self.proposer_of(height, round),
                    round: height,
                    committed_at,
                });
            }
            let next_proposer = self.proposer_of(height + 1, 0);
            self.net.timer(
                next_proposer,
                self.block_period,
                IbftMsg::ProposeTimer {
                    height: height + 1,
                    round: 0,
                },
            );
        }
    }

    fn on_round_timeout(&mut self, me: NodeId, height: u64, round: u64) {
        let should_complain;
        {
            let node = &self.nodes[me.0 as usize];
            should_complain = node.height == height
                && node.round == round
                && node
                    .slots
                    .get(&(height, round))
                    .is_none_or(|s| !s.committed);
        }
        if !should_complain {
            return;
        }
        let new_round = round + 1;
        {
            let node = &mut self.nodes[me.0 as usize];
            let voted = node.voted_round.entry(height).or_insert(0);
            if *voted >= new_round {
                return;
            }
            *voted = new_round;
        }
        let now = self.net.now();
        let done = self.cpu.process(me, now, self.proc_per_msg);
        self.net
            .broadcast_delayed(me, done - now, 48, |_| IbftMsg::RoundChange {
                height,
                round: new_round,
                from: me,
            });
        self.on_round_change(me, now, height, new_round, me);
    }

    fn on_round_change(
        &mut self,
        me: NodeId,
        _at: SimTime,
        height: u64,
        round: u64,
        _from: NodeId,
    ) {
        let quorum = self.quorum();
        let reached;
        {
            let node = &mut self.nodes[me.0 as usize];
            if node.height != height || round <= node.round {
                return;
            }
            let votes = node.round_change_votes.entry((height, round)).or_insert(0);
            *votes += 1;
            reached = *votes >= quorum;
        }
        if reached {
            {
                let node = &mut self.nodes[me.0 as usize];
                node.round = round;
                // Blocks stuck in the abandoned rounds of this height are
                // reclaimed so their commands are re-proposed, not
                // stranded. Reclaim in round order (slot iteration order is
                // not deterministic).
                let mut by_round: BTreeMap<u64, Vec<Command>> = BTreeMap::new();
                for (&(h, r), slot) in node.slots.iter_mut() {
                    if h == height && r < round && !slot.committed {
                        if let Some(batch) = slot.batch.take() {
                            by_round.insert(r, batch);
                        }
                    }
                }
                let mut seen: BTreeSet<u64> = self.pending.iter().map(|c| c.tx.as_u64()).collect();
                for batch in by_round.into_values() {
                    for c in batch {
                        if !self.committed_txs.contains(&c.tx.as_u64())
                            && seen.insert(c.tx.as_u64())
                        {
                            self.pending.push(c);
                        }
                    }
                }
            }
            if self.proposer_of(height, round) == me {
                // Exactly one node is the new proposer, so this is counted
                // once per successful round change across the cluster.
                self.liveness.observe_view_change(self.net.now());
                self.net.timer(
                    me,
                    SimDuration::from_millis(10),
                    IbftMsg::ProposeTimer { height, round },
                );
            }
            self.net.timer(
                me,
                self.round_timeout,
                IbftMsg::RoundTimeout { height, round },
            );
        }
    }
}

/// Deterministic digest of a block proposal.
fn digest_of(batch: &[Command], height: u64, round: u64) -> u64 {
    let mut h = Hasher64::with_key(height.wrapping_mul(31).wrapping_add(round));
    for c in batch {
        h.write_u64(c.tx.as_u64());
    }
    h.finish()
}

/// The conflicting digest an equivocating proposer pairs with
/// [`digest_of`]: same commands, different serialization.
fn sibling_digest_of(batch: &[Command], height: u64, round: u64) -> u64 {
    let mut h = Hasher64::with_key(
        height
            .wrapping_mul(31)
            .wrapping_add(round)
            .wrapping_add(0xB12A_57DE),
    );
    for c in batch {
        h.write_u64(c.tx.as_u64());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, TxId};

    fn tx(seq: u64) -> Command {
        Command::unit(TxId::new(ClientId(0), seq))
    }

    #[test]
    fn commits_transactions_in_blocks() {
        let mut c = IbftCluster::builder(4).seed(1).build();
        for s in 0..5 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(4));
        let total: usize = blocks.iter().map(|b| b.commands.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn produces_empty_blocks_on_cadence() {
        let mut c = IbftCluster::builder(4)
            .seed(2)
            .block_period(SimDuration::from_secs(1))
            .build();
        let blocks = c.run_until(SimTime::from_secs(10));
        assert!(
            blocks.len() >= 8,
            "expected ~1 block/s even with no transactions, got {}",
            blocks.len()
        );
        assert!(blocks.iter().all(|b| b.commands.is_empty()));
    }

    #[test]
    fn empty_block_emission_can_be_disabled() {
        let mut c = IbftCluster::builder(4).seed(3).build();
        c.set_emit_empty_blocks(false);
        let blocks = c.run_until(SimTime::from_secs(5));
        assert!(blocks.is_empty());
    }

    #[test]
    fn block_period_paces_production() {
        for period_s in [1u64, 2] {
            let mut c = IbftCluster::builder(4)
                .seed(4)
                .block_period(SimDuration::from_secs(period_s))
                .build();
            let blocks = c.run_until(SimTime::from_secs(20));
            for w in blocks.windows(2) {
                let gap = w[1].committed_at - w[0].committed_at;
                assert!(
                    gap >= SimDuration::from_secs(period_s),
                    "gap {gap} < block period {period_s}s"
                );
            }
        }
    }

    #[test]
    fn proposers_rotate() {
        let mut c = IbftCluster::builder(4).seed(5).build();
        let blocks = c.run_until(SimTime::from_secs(8));
        let proposers: Vec<NodeId> = blocks.iter().map(|b| b.proposer).collect();
        // Height h proposer = h mod 4, so the sequence cycles.
        for (i, p) in proposers.iter().enumerate() {
            assert_eq!(p.0, (i % 4) as u32);
        }
    }

    #[test]
    fn proposer_crash_triggers_round_change() {
        let mut c = IbftCluster::builder(4).seed(6).build();
        // Proposer of height 0 is node 0; crash it before anything happens.
        c.crash(NodeId(0));
        c.submit(tx(1));
        let blocks = c.run_until(SimTime::from_secs(30));
        let non_empty: Vec<_> = blocks.iter().filter(|b| !b.commands.is_empty()).collect();
        assert_eq!(
            non_empty.len(),
            1,
            "round change must rescue the stalled height"
        );
        assert_ne!(non_empty[0].proposer, NodeId(0));
    }

    #[test]
    fn no_progress_without_quorum() {
        let mut c = IbftCluster::builder(4).seed(7).build();
        c.crash(NodeId(2));
        c.crash(NodeId(3));
        c.submit(tx(1));
        let blocks = c.run_until(SimTime::from_secs(20));
        assert!(blocks.is_empty());
    }

    #[test]
    fn submission_order_is_preserved() {
        let mut c = IbftCluster::builder(4)
            .seed(8)
            .batch(BatchConfig::new(3, SimDuration::from_secs(1)))
            .block_period(SimDuration::from_millis(500))
            .build();
        for s in 0..12 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        let seqs: Vec<u64> = blocks
            .iter()
            .flat_map(|b| b.commands.iter().map(|cmd| cmd.tx.seq()))
            .collect();
        assert_eq!(seqs.len(), 12);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut c = IbftCluster::builder(4).seed(seed).build();
            for s in 0..6 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(10))
                .iter()
                .map(|b| (b.round, b.committed_at, b.commands.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(12), run(12));
    }

    #[test]
    fn one_equivocating_proposer_is_safe() {
        let mut c = IbftCluster::builder(4).seed(21).build();
        c.set_byzantine(
            NodeId(0),
            ByzantineBehaviour::EquivocateProposer,
            SimTime::from_secs(60),
        );
        c.set_byzantine(
            NodeId(0),
            ByzantineBehaviour::DoubleVote,
            SimTime::from_secs(60),
        );
        for s in 0..6 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(30));
        assert!(
            blocks.len() >= 8,
            "f = 1 equivocator must not halt block production, got {}",
            blocks.len()
        );
        let r = c.safety_report();
        assert!(r.observed.equivocating_proposals > 0, "attack must run");
        assert_eq!(r.observed.byzantine_nodes, 1);
        assert!(r.violations.is_clean(), "≤ f Byzantine: {:?}", r.violations);
    }

    #[test]
    fn two_byzantine_validators_break_safety_and_are_counted() {
        let mut c = IbftCluster::builder(4).seed(22).build();
        for node in [NodeId(0), NodeId(1)] {
            c.set_byzantine(
                node,
                ByzantineBehaviour::EquivocateProposer,
                SimTime::from_secs(60),
            );
            c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
        }
        for s in 0..6 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(30));
        let r = c.safety_report();
        assert!(
            r.violations.conflicting_commits > 0,
            "f+1 Byzantine must commit a conflicting block: {r:?}"
        );
    }

    #[test]
    fn byzantine_run_is_deterministic() {
        let run = || {
            let mut c = IbftCluster::builder(4).seed(23).build();
            for node in [NodeId(0), NodeId(1)] {
                c.set_byzantine(
                    node,
                    ByzantineBehaviour::EquivocateProposer,
                    SimTime::from_secs(60),
                );
                c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
            }
            for s in 0..8 {
                c.submit(tx(s));
            }
            let blocks = c.run_until(SimTime::from_secs(30));
            (format!("{:?}", c.safety_report()), blocks.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn join_grows_membership_after_sync_without_violations() {
        let mut c = IbftCluster::builder(4).standby(1).seed(31).build();
        assert_eq!((c.active_count(), c.config_epoch()), (4, 0));
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(3));
        assert!(first.iter().any(|b| !b.commands.is_empty()));
        assert!(c.join(NodeId(4)), "standby is admitted");
        assert!(!c.join(NodeId(4)), "double join rejected");
        assert_eq!(c.active_count(), 4, "not active until synced");
        for s in 2..8 {
            c.submit(tx(s));
        }
        let more = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(
            more.iter().any(|b| !b.commands.is_empty()),
            "commits continue through the join"
        );
        assert_eq!((c.active_count(), c.config_epoch()), (5, 1));
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn leave_shrinks_membership_and_keeps_minting() {
        let mut c = IbftCluster::builder(4).seed(32).build();
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(3));
        assert!(first.iter().any(|b| !b.commands.is_empty()));
        assert!(c.leave(NodeId(0)));
        assert_eq!((c.active_count(), c.config_epoch()), (3, 1));
        for s in 2..6 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(
            blocks.iter().any(|b| !b.commands.is_empty()),
            "the shrunken validator set keeps committing"
        );
        assert!(blocks.iter().all(|b| b.proposer != NodeId(0)));
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
        assert!(!c.leave(NodeId(0)), "already departed");
    }

    #[test]
    fn joiner_never_votes_before_sync_completes() {
        let mut c = IbftCluster::builder(4).standby(1).seed(33).build();
        for s in 0..4 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(6));
        assert!(c.join(NodeId(4)));
        for s in 4..10 {
            c.submit(tx(s));
        }
        let _ = c.run_until(c.now() + SimDuration::from_secs(30));
        let r = c.safety_report();
        assert_eq!(r.violations.presync_votes, 0, "no vote before catch-up");
        assert_eq!(r.violations.stale_epoch_commits, 0);
        assert_eq!(c.active_count(), 5);
    }

    #[test]
    fn churn_run_is_deterministic() {
        let run = || {
            let mut c = IbftCluster::builder(4).standby(1).seed(34).build();
            for s in 0..12 {
                c.submit(tx(s));
            }
            let mut got = c.run_until(SimTime::from_secs(4)).len();
            c.join(NodeId(4));
            got += c.run_until(SimTime::from_secs(8)).len();
            c.leave(NodeId(1));
            got += c.run_until(SimTime::from_secs(40)).len();
            (got, c.config_epoch(), format!("{:?}", c.safety_report()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drop_pending_flushes_pool() {
        let mut c = IbftCluster::builder(4).seed(9).build();
        for s in 0..10 {
            c.submit(tx(s));
        }
        assert_eq!(c.pending_len(), 10);
        assert_eq!(c.drop_pending(), 10);
        assert_eq!(c.pending_len(), 0);
    }
}
