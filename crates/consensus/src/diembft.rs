//! DiemBFT — the consensus of the modelled Diem (the paper runs Diem at
//! commit `94a8bca0fa` with `max_block_size` ∈ {100, 500, 1000, 2000},
//! Table 5).
//!
//! DiemBFT is a chained HotStuff-family protocol: a leader per round
//! proposes a block extending the highest quorum certificate (QC),
//! validators send votes to the *next* leader, who aggregates 2f + 1 votes
//! into a QC and proposes the next block carrying it. A block commits under
//! the 2-chain rule: a QC'd block is committed once a QC forms for a child
//! block in the *contiguous* next round. The pacemaker advances rounds via
//! timeout certificates (2f + 1 timeout messages) when a leader stalls.
//!
//! Diem's proposal generator caps blocks at `max_block_size`
//! ([`DiemBftBuilder::batch`]); when the mempool is empty but uncommitted
//! QC'd blocks remain, leaders propose NIL blocks so the 2-chain rule can
//! finish committing the tail.
//!
//! # Byzantine fault injection
//!
//! [`DiemBftCluster::set_byzantine`] arms a validator with a
//! [`ByzantineBehaviour`]. An equivocating leader proposes two conflicting
//! blocks for its round — fellow Byzantine validators receive both, honest
//! validators are split between them — and votes for both. A double-voting
//! validator answers a conflicting proposal for a round it already voted in
//! with a second vote. A [`SafetyMonitor`] observes every proposal, vote,
//! quorum certificate, and commit; with at most `f` Byzantine validators the
//! minority block falls short of a QC and the report stays clean, while
//! `f + 1` colluders can certify two blocks in one round — counted as
//! conflicting certificates, never a panic.

use std::collections::{BTreeSet, HashMap, HashSet};

use coconut_simnet::{ByzantineBehaviour, FaultEvent, NetConfig, NetSim, NetStats, Topology};
use coconut_types::{Hasher64, NodeId, SimDuration, SimTime};

use crate::liveness::{LivenessMonitor, LivenessReport};
use crate::safety::{ByzantineFlags, SafetyMonitor, SafetyReport, VotePhase};
use crate::{bft_quorum, BatchConfig, Command, CommittedBatch, CpuModel, Membership};

/// Base catch-up time a joiner spends before it may vote (state-transfer
/// handshake), plus a per-committed-block transfer cost.
const SYNC_BASE: SimDuration = SimDuration::from_millis(250);
const SYNC_PER_BATCH: SimDuration = SimDuration::from_millis(2);

/// DiemBFT protocol messages and pacemaker timers.
#[derive(Debug, Clone)]
enum DiemMsg {
    /// Leader cadence timer.
    ProposeTimer {
        round: u64,
    },
    /// Pacemaker timeout for a round.
    RoundTimeout {
        round: u64,
    },
    Proposal {
        round: u64,
        digest: u64,
        parent: u64,
        parent_round: u64,
        /// The QC this proposal carries (certifies `qc_round`).
        qc_round: u64,
        batch: Vec<Command>,
    },
    Vote {
        epoch: u64,
        round: u64,
        digest: u64,
        from: NodeId,
    },
    Timeout {
        round: u64,
        from: NodeId,
    },
    /// A joiner's catch-up/state transfer finished: activate it.
    SyncDone {
        node: NodeId,
    },
}

/// A proposed block as tracked in the (global, for emission) block store.
#[derive(Debug, Clone)]
struct BlockInfo {
    round: u64,
    parent: u64,
    parent_round: u64,
    batch: Vec<Command>,
    proposer: NodeId,
}

#[derive(Debug)]
struct DiemNode {
    round: u64,
    highest_voted: u64,
    alive: bool,
}

/// Configuration for a [`DiemBftCluster`]; build with
/// [`DiemBftCluster::builder`].
#[derive(Debug, Clone)]
pub struct DiemBftBuilder {
    nodes: u32,
    standby: u32,
    topology: Option<Topology>,
    net: NetConfig,
    seed: u64,
    batch: BatchConfig,
    round_interval: SimDuration,
    round_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
}

impl DiemBftBuilder {
    /// Node placement (defaults to one node per server).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Pre-provisions `k` standby validators (ids `nodes..nodes + k`) that
    /// start outside the active membership and can be admitted at runtime
    /// via [`DiemBftCluster::join`]. Default 0.
    pub fn standby(mut self, k: u32) -> Self {
        self.standby = k;
        self
    }

    /// Network characteristics.
    pub fn net(mut self, c: NetConfig) -> Self {
        self.net = c;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Proposal-generator bound: `max_block_size` maps to
    /// `batch.max_commands`.
    pub fn batch(mut self, b: BatchConfig) -> Self {
        self.batch = b;
        self
    }

    /// Minimum spacing between a leader's proposals (paces NIL rounds).
    pub fn round_interval(mut self, d: SimDuration) -> Self {
        self.round_interval = d;
        self
    }

    /// Pacemaker round timeout.
    pub fn round_timeout(mut self, d: SimDuration) -> Self {
        self.round_timeout = d;
        self
    }

    /// Fixed CPU cost of handling any protocol message.
    pub fn proc_per_msg(mut self, d: SimDuration) -> Self {
        self.proc_per_msg = d;
        self
    }

    /// Additional CPU cost per command in a proposal.
    pub fn proc_per_command(mut self, d: SimDuration) -> Self {
        self.proc_per_command = d;
        self
    }

    /// Builds the cluster; round 1's leader proposes after one interval.
    pub fn build(self) -> DiemBftCluster {
        let n = self.nodes;
        let total = n + self.standby;
        let topology = self
            .topology
            .unwrap_or_else(|| Topology::round_robin(total, total));
        assert_eq!(
            topology.node_count(),
            total,
            "topology must cover baseline + standby nodes"
        );
        let mut net = NetSim::new(topology, self.net, self.seed);
        let first_leader = NodeId((1 % n as u64) as u32);
        net.timer(
            first_leader,
            self.round_interval,
            DiemMsg::ProposeTimer { round: 1 },
        );
        let mut blocks = HashMap::new();
        // Genesis: digest 0, round 0, self-parent.
        blocks.insert(
            0u64,
            BlockInfo {
                round: 0,
                parent: 0,
                parent_round: 0,
                batch: Vec::new(),
                proposer: NodeId(0),
            },
        );
        let mut qc_round_of = HashMap::new();
        qc_round_of.insert(0u64, 0u64); // genesis is certified
        DiemBftCluster {
            nodes: (0..total)
                .map(|_| DiemNode {
                    round: 1,
                    highest_voted: 0,
                    alive: true,
                })
                .collect(),
            membership: Membership::new(n, self.standby),
            net,
            cpu: CpuModel::new(total),
            batch: self.batch,
            pending: Vec::new(),
            committed: Vec::new(),
            blocks,
            votes: HashMap::new(),
            qcs: qc_round_of,
            highest_qc: (0, 0),
            timeout_votes: HashMap::new(),
            committed_digests: HashSet::new(),
            last_committed_round: 0,
            round_interval: self.round_interval,
            round_timeout: self.round_timeout,
            proc_per_msg: self.proc_per_msg,
            proc_per_command: self.proc_per_command,
            proposed_rounds: HashSet::new(),
            byz: vec![ByzantineFlags::default(); total as usize],
            monitor: SafetyMonitor::new(bft_quorum(n)),
            liveness: LivenessMonitor::default(),
            stale_epoch_rejections: 0,
            committed_txs: BTreeSet::new(),
        }
    }
}

/// A simulated DiemBFT validator set.
///
/// # Example
///
/// ```
/// use coconut_consensus::{diembft::DiemBftCluster, Command};
/// use coconut_types::{ClientId, SimTime, TxId};
///
/// let mut diem = DiemBftCluster::builder(4).seed(2).build();
/// diem.submit(Command::unit(TxId::new(ClientId(0), 1)));
/// let blocks = diem.run_until(SimTime::from_secs(5));
/// assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
/// ```
#[derive(Debug)]
pub struct DiemBftCluster {
    nodes: Vec<DiemNode>,
    /// Epoch-versioned active membership over the provisioned universe.
    membership: Membership,
    net: NetSim<DiemMsg>,
    cpu: CpuModel,
    batch: BatchConfig,
    pending: Vec<Command>,
    committed: Vec<CommittedBatch>,
    /// digest → block (proposals are broadcast; this is the union store).
    blocks: HashMap<u64, BlockInfo>,
    /// (round, digest) → vote count at the aggregating leader.
    votes: HashMap<(u64, u64), u32>,
    /// digest → round, for certified blocks.
    qcs: HashMap<u64, u64>,
    /// Highest formed QC as (round, digest).
    highest_qc: (u64, u64),
    timeout_votes: HashMap<u64, u32>,
    committed_digests: HashSet<u64>,
    last_committed_round: u64,
    round_interval: SimDuration,
    round_timeout: SimDuration,
    proc_per_msg: SimDuration,
    proc_per_command: SimDuration,
    proposed_rounds: HashSet<u64>,
    /// Per-node Byzantine fault windows.
    byz: Vec<ByzantineFlags>,
    /// Message-level safety observer (never influences the protocol).
    monitor: SafetyMonitor,
    /// Commit-cadence and timeout-storm liveness tracker.
    liveness: LivenessMonitor,
    /// Votes dropped because they carried a superseded membership epoch.
    stale_epoch_rejections: u64,
    /// Transactions already finalized, so a block orphaned by a timeout or
    /// epoch change is never re-proposed after its commands committed.
    committed_txs: BTreeSet<u64>,
}

impl DiemBftCluster {
    /// Starts building a DiemBFT cluster of `nodes` validators.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn builder(nodes: u32) -> DiemBftBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        DiemBftBuilder {
            nodes,
            standby: 0,
            topology: None,
            net: NetConfig::lan(),
            seed: 0,
            batch: BatchConfig::new(3000, SimDuration::from_millis(250)),
            round_interval: SimDuration::from_millis(100),
            round_timeout: SimDuration::from_secs(3),
            proc_per_msg: SimDuration::from_micros(40),
            proc_per_command: SimDuration::from_micros(8),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of validators.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Network counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Applies a network-level fault (partition, heal, loss burst, latency
    /// spike) to the cluster's message fabric. Crash/restart events are not
    /// network faults and return `false`.
    pub fn apply_net_fault(&mut self, at: SimTime, event: &FaultEvent) -> bool {
        self.net.apply_fault(at, event)
    }

    /// Commands in the mempool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits a command to the mempool.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push(cmd);
    }

    /// Flags `node` to misbehave (`behaviour`) until virtual time `until`.
    pub fn set_byzantine(&mut self, node: NodeId, behaviour: ByzantineBehaviour, until: SimTime) {
        self.byz[node.0 as usize].arm(behaviour, until);
    }

    /// The safety monitor's verdict over everything observed so far.
    pub fn safety_report(&self) -> SafetyReport {
        self.monitor.report()
    }

    /// The liveness monitor's verdict as of the current virtual time.
    pub fn liveness_report(&self) -> LivenessReport {
        self.liveness.report(self.net.now())
    }

    /// Crashes a validator (models Diem's "spiking" stalls when paired with
    /// [`DiemBftCluster::recover`] on a timer in the chain layer).
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = false;
    }

    /// Recovers a crashed validator at the highest known round.
    pub fn recover(&mut self, node: NodeId) {
        let max_round = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.round)
            .max()
            .unwrap_or(1);
        let n = &mut self.nodes[node.0 as usize];
        n.alive = true;
        n.round = n.round.max(max_round);
    }

    /// Runs the protocol until `deadline`, returning blocks committed by the
    /// 2-chain rule in this window.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CommittedBatch> {
        // Kick idle leaders when work arrives between calls.
        self.kick_current_leader();
        while let Some(ev) = self.net.pop_at_or_before(deadline) {
            self.dispatch(ev.dst, ev.at, ev.msg);
        }
        self.net.advance_to(deadline);
        std::mem::take(&mut self.committed)
    }

    /// Due time of the next internal event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    /// Validators currently in the active membership.
    pub fn active_count(&self) -> u32 {
        self.membership.active_count()
    }

    /// Current membership configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Votes dropped because they carried a superseded membership epoch.
    pub fn stale_epoch_rejections(&self) -> u64 {
        self.stale_epoch_rejections
    }

    /// Starts admitting a pre-provisioned standby validator: it first syncs
    /// the chain (catch-up takes longer the more blocks were committed) and
    /// only joins the active membership — bumping the epoch — when the
    /// transfer completes. Returns `false` if `node` is unknown, already
    /// active, or already syncing.
    pub fn join(&mut self, node: NodeId) -> bool {
        if node.0 >= self.membership.provisioned()
            || self.membership.is_active(node)
            || self.monitor.is_syncing(node)
        {
            return false;
        }
        self.monitor.observe_sync_start(node);
        let sync = SYNC_BASE + SYNC_PER_BATCH * self.committed_digests.len() as u64;
        self.net.timer(node, sync, DiemMsg::SyncDone { node });
        true
    }

    /// Removes a validator from the active membership, bumping the epoch
    /// and recomputing the quorum. Returns `false` if `node` is not an
    /// active member or is the last one.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.membership.leave(node) {
            return false;
        }
        self.on_epoch_change();
        true
    }

    fn quorum(&self) -> u32 {
        bft_quorum(self.membership.active_count())
    }

    fn leader_of(&self, round: u64) -> NodeId {
        // Rotation over the active membership; identical to `round mod n`
        // until the first join/leave.
        self.membership.select(round)
    }

    fn kick_current_leader(&mut self) {
        let round = self.highest_qc.0 + 1;
        if !self.proposed_rounds.contains(&round) {
            let leader = self.leader_of(round);
            self.net.timer(
                leader,
                SimDuration::from_micros(1),
                DiemMsg::ProposeTimer { round },
            );
            if !self.nodes[leader.0 as usize].alive {
                // A crashed proposer swallows the kick; the pacemaker must
                // still run so a timeout certificate can skip its round.
                self.arm_round_timeouts(round);
            }
        }
    }

    /// Arms the pacemaker for `round` at every alive validator (entering a
    /// round always starts a local timeout in DiemBFT).
    fn arm_round_timeouts(&mut self, round: u64) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive && self.membership.is_active(NodeId(i as u32)) {
                self.net.timer(
                    NodeId(i as u32),
                    self.round_timeout,
                    DiemMsg::RoundTimeout { round },
                );
            }
        }
    }

    fn dispatch(&mut self, me: NodeId, at: SimTime, msg: DiemMsg) {
        if !self.nodes[me.0 as usize].alive {
            return;
        }
        if !self.membership.is_active(me) {
            // A standby/departed validator ignores the protocol entirely;
            // only its own sync-completion timer is meaningful.
            if let DiemMsg::SyncDone { node } = msg {
                self.on_sync_done(node);
            }
            return;
        }
        match msg {
            DiemMsg::ProposeTimer { round } => self.on_propose_timer(me, round),
            DiemMsg::RoundTimeout { round } => self.on_round_timeout(me, round),
            DiemMsg::Proposal {
                round,
                digest,
                parent,
                parent_round,
                qc_round,
                batch,
            } => self.on_proposal(me, at, round, digest, parent, parent_round, qc_round, batch),
            DiemMsg::Vote {
                epoch,
                round,
                digest,
                from,
            } => {
                if epoch != self.membership.epoch() {
                    self.stale_epoch_rejections += 1;
                    return;
                }
                self.on_vote(me, at, round, digest, from)
            }
            DiemMsg::Timeout { round, from } => self.on_timeout_msg(me, at, round, from),
            DiemMsg::SyncDone { .. } => {}
        }
    }

    /// A joiner finished its catch-up: admit it to the active membership at
    /// the current frontier round and bump the configuration epoch.
    fn on_sync_done(&mut self, node: NodeId) {
        if !self.monitor.is_syncing(node) || !self.membership.join(node) {
            return;
        }
        self.monitor.observe_sync_complete(node);
        {
            let frontier = self.highest_qc.0;
            let joiner = &mut self.nodes[node.0 as usize];
            joiner.round = joiner.round.max(frontier + 1);
            // The joiner must never retro-vote a pre-sync round.
            joiner.highest_voted = joiner.highest_voted.max(frontier);
        }
        self.on_epoch_change();
    }

    /// Applies a membership change: recompute the quorum over the new
    /// active count, reset in-flight vote/timeout tallies (their epoch is
    /// superseded — a quorum of the old membership must not certify a
    /// block), reclaim commands stuck in uncertified frontier blocks, and
    /// restart the proposal chain over the new membership.
    fn on_epoch_change(&mut self) {
        let quorum = self.quorum();
        self.monitor.begin_epoch(self.membership.epoch(), quorum);
        self.votes.clear();
        self.timeout_votes.clear();
        // Blocks proposed past the highest QC can no longer certify (their
        // vote tallies are void); reclaim their commands, deduplicated and
        // filtered against already-finalized transactions, in digest order
        // (block-store iteration order is not deterministic).
        let frontier = self.highest_qc.0;
        let mut stranded: Vec<u64> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.round > frontier && !b.batch.is_empty())
            .map(|(&d, _)| d)
            .collect();
        stranded.sort_unstable();
        let mut seen: BTreeSet<u64> = self.pending.iter().map(|c| c.tx.as_u64()).collect();
        let mut reclaimed: Vec<Command> = Vec::new();
        for d in stranded {
            if let Some(b) = self.blocks.get_mut(&d) {
                for c in b.batch.drain(..) {
                    if !self.committed_txs.contains(&c.tx.as_u64()) && seen.insert(c.tx.as_u64()) {
                        reclaimed.push(c);
                    }
                }
            }
        }
        reclaimed.append(&mut self.pending);
        self.pending = reclaimed;
        // The frontier round may be re-proposed under the new epoch.
        self.proposed_rounds.retain(|&r| r <= frontier);
        let next = frontier + 1;
        self.net.timer(
            self.leader_of(next),
            self.round_interval,
            DiemMsg::ProposeTimer { round: next },
        );
        self.arm_round_timeouts(next);
    }

    /// Whether there is any reason to keep proposing: work in the mempool,
    /// or an uncommitted certified *non-empty* block that needs a child QC
    /// to commit under the 2-chain rule. An empty certified tail carries
    /// nothing to commit, so the cluster may go idle on it.
    fn has_work(&self) -> bool {
        !self.pending.is_empty()
            || self.qcs.iter().any(|(digest, _)| {
                *digest != 0
                    && !self.committed_digests.contains(digest)
                    && self.blocks.get(digest).is_some_and(|b| !b.batch.is_empty())
            })
    }

    fn on_propose_timer(&mut self, me: NodeId, round: u64) {
        if self.leader_of(round) != me || self.proposed_rounds.contains(&round) {
            return;
        }
        // Propose only for the round following our highest QC (chained rule).
        if round != self.highest_qc.0 + 1 {
            return;
        }
        if !self.has_work() {
            // Idle: re-check after an interval.
            self.net
                .timer(me, self.round_interval, DiemMsg::ProposeTimer { round });
            return;
        }
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        let (qc_round, parent_digest) = self.highest_qc;
        let parent_round = self.blocks.get(&parent_digest).map_or(0, |b| b.round);
        let digest = {
            let mut h = Hasher64::with_key(round);
            h.write_u64(parent_digest);
            for c in &batch {
                h.write_u64(c.tx.as_u64());
            }
            h.finish()
        };
        self.proposed_rounds.insert(round);
        self.blocks.insert(
            digest,
            BlockInfo {
                round,
                parent: parent_digest,
                parent_round,
                batch: batch.clone(),
                proposer: me,
            },
        );
        self.monitor.observe_proposal(0, round, me, digest);
        let bytes = 96 + batch.iter().map(|c| c.bytes as usize).sum::<usize>();
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let now = self.net.now();
        let done = self.cpu.process(me, now, cost);
        if self.byz[me.0 as usize].equivocates(now) && self.nodes.len() >= 3 {
            // Equivocation: a second block for the same round over the same
            // commands, under a salted digest. Fellow Byzantine validators
            // receive both versions, honest validators are split between
            // them, and the leader votes for both — with at most `f`
            // colluders the minority block falls short of a QC.
            let alt = Self::sibling_digest_of(&batch, parent_digest, round);
            self.blocks.insert(
                alt,
                BlockInfo {
                    round,
                    parent: parent_digest,
                    parent_round,
                    batch: batch.clone(),
                    proposer: me,
                },
            );
            self.monitor.observe_proposal(0, round, me, alt);
            let mut honest_idx = 0usize;
            for i in 0..self.nodes.len() {
                let peer = NodeId(i as u32);
                if peer == me {
                    continue;
                }
                let proposal = |d: u64| DiemMsg::Proposal {
                    round,
                    digest: d,
                    parent: parent_digest,
                    parent_round,
                    qc_round,
                    batch: batch.clone(),
                };
                if self.byz[i].is_byzantine(now) {
                    self.net
                        .send_delayed(me, peer, done - now, bytes, proposal(digest));
                    self.net
                        .send_delayed(me, peer, done - now, bytes, proposal(alt));
                } else {
                    let d = if honest_idx.is_multiple_of(2) {
                        digest
                    } else {
                        alt
                    };
                    honest_idx += 1;
                    self.net
                        .send_delayed(me, peer, done - now, bytes, proposal(d));
                }
            }
            self.cast_vote(me, round, digest);
            self.cast_vote(me, round, alt);
        } else {
            self.net
                .broadcast_delayed(me, done - now, bytes, |_| DiemMsg::Proposal {
                    round,
                    digest,
                    parent: parent_digest,
                    parent_round,
                    qc_round,
                    batch: batch.clone(),
                });
            // Leader votes for its own proposal (vote goes to next leader).
            self.cast_vote(me, round, digest);
        }
        // Arm pacemaker for this round at the leader.
        self.net
            .timer(me, self.round_timeout, DiemMsg::RoundTimeout { round });
    }

    /// The digest an equivocating leader uses for the conflicting sibling of
    /// its real proposal: same parent and commands, salted key.
    fn sibling_digest_of(batch: &[Command], parent_digest: u64, round: u64) -> u64 {
        let mut h = Hasher64::with_key(round ^ 0xB12A_57DE);
        h.write_u64(parent_digest);
        for c in batch {
            h.write_u64(c.tx.as_u64());
        }
        h.finish()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_proposal(
        &mut self,
        me: NodeId,
        at: SimTime,
        round: u64,
        digest: u64,
        parent: u64,
        parent_round: u64,
        qc_round: u64,
        batch: Vec<Command>,
    ) {
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let _ = self.cpu.process(me, at, cost);
        // Sync to the carried QC.
        if qc_round >= self.highest_qc.0
            && parent != self.highest_qc.1
            && self.qcs.contains_key(&parent)
        {
            // parent certified elsewhere; fine.
        }
        let proposer = self.leader_of(round);
        self.blocks.entry(digest).or_insert(BlockInfo {
            round,
            parent,
            parent_round,
            batch,
            proposer,
        });
        // A double-voting validator answers a conflicting proposal for the
        // round it just voted in with a second vote, violating the
        // vote-once safety rule.
        let dv = self.byz[me.0 as usize].double_votes(at);
        self.liveness.observe_progress(me, at);
        {
            let node = &mut self.nodes[me.0 as usize];
            node.round = node.round.max(round);
            if node.highest_voted >= round && !(dv && node.highest_voted == round) {
                return; // already voted this round (safety rule)
            }
            node.highest_voted = round;
        }
        self.cast_vote(me, round, digest);
        // Arm pacemaker for the next round.
        self.net.timer(
            me,
            self.round_timeout,
            DiemMsg::RoundTimeout { round: round + 1 },
        );
    }

    fn cast_vote(&mut self, me: NodeId, round: u64, digest: u64) {
        let next_leader = self.leader_of(round + 1);
        let now = self.net.now();
        let done = self.cpu.process(me, now, self.proc_per_msg);
        if next_leader == me {
            self.on_vote(me, now, round, digest, me);
        } else {
            let epoch = self.membership.epoch();
            self.net.send_delayed(
                me,
                next_leader,
                done - now,
                64,
                DiemMsg::Vote {
                    epoch,
                    round,
                    digest,
                    from: me,
                },
            );
        }
    }

    fn on_vote(&mut self, me: NodeId, at: SimTime, round: u64, digest: u64, from: NodeId) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        if self.leader_of(round + 1) != me {
            return;
        }
        self.monitor
            .observe_vote(me, VotePhase::Vote, 0, round, digest, from);
        let count = self.votes.entry((round, digest)).or_insert(0);
        *count += 1;
        if *count == self.quorum() {
            // QC formed.
            self.monitor
                .observe_quorum(me, VotePhase::Vote, 0, round, digest);
            self.monitor.observe_certificate(round, digest);
            self.qcs.insert(digest, round);
            if round > self.highest_qc.0 {
                self.highest_qc = (round, digest);
            }
            self.try_commit(digest);
            // Chained: the next leader (us) proposes after the round
            // interval (paces NIL rounds; real DiemBFT proposes
            // back-to-back, but the interval is what Diem's round timer
            // amounts to under our virtual clock).
            self.net.timer(
                me,
                self.round_interval,
                DiemMsg::ProposeTimer { round: round + 1 },
            );
        }
    }

    /// 2-chain commit: forming a QC for block B commits B's parent when the
    /// parent is at the contiguous previous round.
    fn try_commit(&mut self, certified: u64) {
        let Some(block) = self.blocks.get(&certified) else {
            return;
        };
        let parent_digest = block.parent;
        let contiguous = block.parent_round + 1 == block.round;
        if !contiguous || parent_digest == 0 {
            return;
        }
        if !self.qcs.contains_key(&parent_digest) {
            return;
        }
        // Commit parent and any uncommitted certified ancestors (in order).
        let mut chain = Vec::new();
        let mut cur = parent_digest;
        while cur != 0 && !self.committed_digests.contains(&cur) {
            chain.push(cur);
            cur = self.blocks.get(&cur).map_or(0, |b| b.parent);
        }
        let now = self.net.now();
        for digest in chain.into_iter().rev() {
            let info = &self.blocks[&digest];
            if info.round <= self.last_committed_round {
                continue;
            }
            self.committed_digests.insert(digest);
            self.last_committed_round = info.round;
            self.liveness.observe_commit(now);
            // Vote tallies are reset on every membership change, so the QC
            // behind this commit formed entirely in the current epoch.
            self.monitor
                .observe_epoch_commit(self.membership.epoch(), info.round, digest);
            for c in &info.batch {
                self.committed_txs.insert(c.tx.as_u64());
            }
            if !info.batch.is_empty() {
                self.committed.push(CommittedBatch {
                    commands: info.batch.clone(),
                    proposer: info.proposer,
                    round: info.round,
                    committed_at: now,
                });
            }
        }
    }

    fn on_round_timeout(&mut self, me: NodeId, round: u64) {
        // Complain only if the round is still the frontier (no QC yet).
        if self.highest_qc.0 >= round {
            return;
        }
        let now = self.net.now();
        let done = self.cpu.process(me, now, self.proc_per_msg);
        self.net
            .broadcast_delayed(me, done - now, 48, |_| DiemMsg::Timeout { round, from: me });
        self.on_timeout_msg(me, now, round, me);
    }

    fn on_timeout_msg(&mut self, me: NodeId, at: SimTime, round: u64, _from: NodeId) {
        let _ = self.cpu.process(me, at, self.proc_per_msg);
        let votes = self.timeout_votes.entry(round).or_insert(0);
        *votes += 1;
        if *votes == self.quorum() {
            // Timeout certificate: the round is dead; the next round's leader
            // proposes from the highest QC. Mark the dead round as proposed
            // so nobody revives it. The shared tally fires exactly once per
            // round, so this counts one pacemaker advance cluster-wide.
            self.liveness.observe_view_change(at);
            self.proposed_rounds.insert(round);
            let next = round + 1;
            // Allow re-proposal chain: treat highest_qc round frontier as `round`.
            if self.highest_qc.0 < round {
                // A block proposed at the dead round can never certify
                // (nobody votes it again, and a skip proposal extends the
                // highest QC, not it). Re-queue its commands at the front
                // of the mempool — real mempools only evict on commit.
                let mut stranded: Vec<u64> = self
                    .blocks
                    .iter()
                    .filter(|(_, b)| b.round == round && !b.batch.is_empty())
                    .map(|(&d, _)| d)
                    .collect();
                stranded.sort_unstable();
                if !stranded.is_empty() {
                    let mut seen: BTreeSet<u64> =
                        self.pending.iter().map(|c| c.tx.as_u64()).collect();
                    let mut reclaimed = Vec::new();
                    for d in stranded {
                        if let Some(b) = self.blocks.get_mut(&d) {
                            for c in b.batch.drain(..) {
                                if !self.committed_txs.contains(&c.tx.as_u64())
                                    && seen.insert(c.tx.as_u64())
                                {
                                    reclaimed.push(c);
                                }
                            }
                        }
                    }
                    reclaimed.append(&mut self.pending);
                    self.pending = reclaimed;
                }
                // Pretend rounds up to `round` are skipped: the new leader
                // extends the highest QC but at round `next`.
                let leader = self.leader_of(next);
                let (qc_round, qc_digest) = self.highest_qc;
                // Propose directly here to keep the skip logic in one place.
                if self.nodes[leader.0 as usize].alive && !self.proposed_rounds.contains(&next) {
                    self.propose_skip(leader, next, qc_round, qc_digest);
                } else {
                    // The skip target is dead too: keep the pacemaker
                    // running so `next` can also be timed out.
                    self.arm_round_timeouts(next);
                }
            }
            self.timeout_votes.remove(&round);
        }
    }

    /// A post-timeout proposal: extends the highest QC at a non-contiguous
    /// round (so it cannot immediately commit its parent — matching the
    /// protocol's safety rule).
    fn propose_skip(&mut self, me: NodeId, round: u64, qc_round: u64, parent_digest: u64) {
        let take = self.pending.len().min(self.batch.max_commands);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        let parent_round = self.blocks.get(&parent_digest).map_or(0, |b| b.round);
        let digest = {
            let mut h = Hasher64::with_key(round ^ 0xDEAD);
            h.write_u64(parent_digest);
            for c in &batch {
                h.write_u64(c.tx.as_u64());
            }
            h.finish()
        };
        self.proposed_rounds.insert(round);
        self.blocks.insert(
            digest,
            BlockInfo {
                round,
                parent: parent_digest,
                parent_round,
                batch: batch.clone(),
                proposer: me,
            },
        );
        self.monitor.observe_proposal(0, round, me, digest);
        let bytes = 96 + batch.iter().map(|c| c.bytes as usize).sum::<usize>();
        let now = self.net.now();
        let cost = self.proc_per_msg + self.proc_per_command * batch.len() as u64;
        let done = self.cpu.process(me, now, cost);
        self.net
            .broadcast_delayed(me, done - now, bytes, |_| DiemMsg::Proposal {
                round,
                digest,
                parent: parent_digest,
                parent_round,
                qc_round,
                batch: batch.clone(),
            });
        self.cast_vote(me, round, digest);
        self.net
            .timer(me, self.round_timeout, DiemMsg::RoundTimeout { round });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_types::{ClientId, TxId};

    fn tx(seq: u64) -> Command {
        Command::unit(TxId::new(ClientId(0), seq))
    }

    #[test]
    fn commits_a_command_via_two_chain() {
        let mut c = DiemBftCluster::builder(4).seed(1).build();
        c.submit(tx(1));
        let blocks = c.run_until(SimTime::from_secs(5));
        assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
    }

    #[test]
    fn commits_many_commands_in_order() {
        let mut c = DiemBftCluster::builder(4).seed(2).build();
        for s in 0..100 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        let seqs: Vec<u64> = blocks
            .iter()
            .flat_map(|b| b.commands.iter().map(|cmd| cmd.tx.seq()))
            .collect();
        assert_eq!(seqs.len(), 100);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn max_block_size_bounds_blocks() {
        let mut c = DiemBftCluster::builder(4)
            .seed(3)
            .batch(BatchConfig::new(10, SimDuration::from_millis(100)))
            .build();
        for s in 0..35 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(30));
        assert!(blocks.iter().all(|b| b.commands.len() <= 10));
        assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 35);
    }

    #[test]
    fn rounds_strictly_increase() {
        let mut c = DiemBftCluster::builder(4).seed(4).build();
        for s in 0..20 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(20));
        assert!(blocks.windows(2).all(|w| w[0].round < w[1].round));
    }

    #[test]
    fn leader_crash_recovers_via_timeout_certificate() {
        let mut c = DiemBftCluster::builder(4).seed(5).build();
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(5));
        assert!(!first.is_empty());
        // Crash the leader of the next frontier round.
        let next_round = c.highest_qc.0 + 1;
        let leader = c.leader_of(next_round);
        c.crash(leader);
        c.submit(tx(2));
        let blocks = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(
            blocks
                .iter()
                .any(|b| b.commands.iter().any(|cmd| cmd.tx.seq() == 2)),
            "timeout certificate must allow progress past a dead leader"
        );
    }

    #[test]
    fn no_progress_without_quorum() {
        let mut c = DiemBftCluster::builder(4).seed(6).build();
        c.crash(NodeId(2));
        c.crash(NodeId(3));
        c.submit(tx(1));
        let blocks = c.run_until(SimTime::from_secs(20));
        assert!(blocks.is_empty());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut c = DiemBftCluster::builder(4).seed(seed).build();
            for s in 0..10 {
                c.submit(tx(s));
            }
            c.run_until(SimTime::from_secs(10))
                .iter()
                .map(|b| (b.round, b.committed_at, b.commands.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn idle_cluster_stays_quiet() {
        let mut c = DiemBftCluster::builder(4).seed(8).build();
        let blocks = c.run_until(SimTime::from_secs(5));
        assert!(blocks.is_empty());
        // The idle cluster should not have exploded in events:
        assert!(c.net_stats().messages_sent < 1000, "idle spin detected");
    }

    #[test]
    fn late_submissions_are_picked_up() {
        let mut c = DiemBftCluster::builder(4).seed(9).build();
        c.run_until(SimTime::from_secs(3));
        c.submit(tx(1));
        let blocks = c.run_until(c.now() + SimDuration::from_secs(5));
        assert_eq!(blocks.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
    }

    #[test]
    fn join_grows_membership_after_sync_without_violations() {
        let mut c = DiemBftCluster::builder(4).standby(1).seed(41).build();
        assert_eq!((c.active_count(), c.config_epoch()), (4, 0));
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(5));
        assert_eq!(first.iter().map(|b| b.commands.len()).sum::<usize>(), 1);
        assert!(c.join(NodeId(4)), "standby is admitted");
        assert!(!c.join(NodeId(4)), "double join rejected");
        assert_eq!(c.active_count(), 4, "not active until synced");
        for s in 2..8 {
            c.submit(tx(s));
        }
        let more = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(
            more.iter().any(|b| !b.commands.is_empty()),
            "commits continue through the join"
        );
        assert_eq!((c.active_count(), c.config_epoch()), (5, 1));
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn leave_shrinks_membership_and_keeps_committing() {
        let mut c = DiemBftCluster::builder(4).seed(42).build();
        c.submit(tx(1));
        let first = c.run_until(SimTime::from_secs(5));
        assert!(!first.is_empty());
        assert!(c.leave(NodeId(0)));
        assert_eq!((c.active_count(), c.config_epoch()), (3, 1));
        for s in 2..6 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(c.now() + SimDuration::from_secs(30));
        assert!(
            blocks.iter().any(|b| !b.commands.is_empty()),
            "the shrunken validator set keeps committing"
        );
        let r = c.safety_report();
        assert!(r.violations.is_clean(), "{:?}", r.violations);
        assert!(!c.leave(NodeId(0)), "already departed");
    }

    #[test]
    fn joiner_never_votes_before_sync_completes() {
        let mut c = DiemBftCluster::builder(4).standby(1).seed(43).build();
        for s in 0..4 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(6));
        assert!(c.join(NodeId(4)));
        for s in 4..10 {
            c.submit(tx(s));
        }
        let _ = c.run_until(c.now() + SimDuration::from_secs(30));
        let r = c.safety_report();
        assert_eq!(r.violations.presync_votes, 0, "no vote before catch-up");
        assert_eq!(r.violations.stale_epoch_commits, 0);
        assert_eq!(c.active_count(), 5);
    }

    #[test]
    fn churn_run_is_deterministic() {
        let run = || {
            let mut c = DiemBftCluster::builder(4).standby(1).seed(44).build();
            for s in 0..12 {
                c.submit(tx(s));
            }
            let mut got = c.run_until(SimTime::from_secs(4)).len();
            c.join(NodeId(4));
            got += c.run_until(SimTime::from_secs(8)).len();
            c.leave(NodeId(1));
            got += c.run_until(SimTime::from_secs(40)).len();
            (got, c.config_epoch(), format!("{:?}", c.safety_report()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn one_equivocating_leader_is_safe() {
        // Node 1 leads round 1, so the attack fires immediately.
        let mut c = DiemBftCluster::builder(4).seed(31).build();
        c.set_byzantine(
            NodeId(1),
            ByzantineBehaviour::EquivocateProposer,
            SimTime::from_secs(60),
        );
        c.set_byzantine(
            NodeId(1),
            ByzantineBehaviour::DoubleVote,
            SimTime::from_secs(60),
        );
        for s in 0..6 {
            c.submit(tx(s));
        }
        let blocks = c.run_until(SimTime::from_secs(30));
        assert!(
            !blocks.is_empty(),
            "f = 1 equivocator must not halt DiemBFT"
        );
        let r = c.safety_report();
        assert!(
            r.observed.equivocating_proposals > 0,
            "the attack must actually run"
        );
        assert_eq!(r.observed.byzantine_nodes, 1);
        assert!(r.violations.is_clean(), "≤ f Byzantine: {:?}", r.violations);
    }

    #[test]
    fn two_byzantine_validators_break_safety_and_are_counted() {
        let mut c = DiemBftCluster::builder(4).seed(32).build();
        for node in [NodeId(1), NodeId(2)] {
            c.set_byzantine(
                node,
                ByzantineBehaviour::EquivocateProposer,
                SimTime::from_secs(60),
            );
            c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
        }
        for s in 0..6 {
            c.submit(tx(s));
        }
        let _ = c.run_until(SimTime::from_secs(30));
        let r = c.safety_report();
        // Under the 2-chain rule the sibling block certifies but never gains
        // a child, so the break surfaces as a conflicting QC, not a commit.
        assert!(
            r.violations.conflicting_certificates > 0,
            "f+1 Byzantine must certify conflicting blocks in one round: {r:?}"
        );
    }

    #[test]
    fn byzantine_run_is_deterministic() {
        let run = || {
            let mut c = DiemBftCluster::builder(4).seed(33).build();
            for node in [NodeId(1), NodeId(2)] {
                c.set_byzantine(
                    node,
                    ByzantineBehaviour::EquivocateProposer,
                    SimTime::from_secs(60),
                );
                c.set_byzantine(node, ByzantineBehaviour::DoubleVote, SimTime::from_secs(60));
            }
            for s in 0..8 {
                c.submit(tx(s));
            }
            let blocks = c.run_until(SimTime::from_secs(30));
            (format!("{:?}", c.safety_report()), blocks.len())
        };
        assert_eq!(run(), run());
    }
}
