//! Deterministic seed derivation.
//!
//! Every COCONUT experiment is driven by a single `u64` seed. Components
//! (network links, clients, consensus timers, anomaly models) each need an
//! *independent* random stream so that adding randomness to one component
//! does not perturb another. [`SeedDeriver`] derives labelled sub-seeds by
//! hashing `(root_seed, label, index)`; the same inputs always give the same
//! stream.

use crate::hash::Hasher64;
use crate::rng::SimRng;

/// Derives independent, reproducible RNG seeds from a root seed.
///
/// # Example
///
/// ```
/// use coconut_types::SeedDeriver;
///
/// let d = SeedDeriver::new(42);
/// let mut net_rng = d.rng("network", 0);
/// let mut client_rng = d.rng("client", 0);
/// // Streams with different labels are independent but reproducible:
/// let a: u64 = net_rng.next_u64();
/// let b: u64 = SeedDeriver::new(42).rng("network", 0).next_u64();
/// assert_eq!(a, b);
/// let c: u64 = client_rng.next_u64();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedDeriver {
    root: u64,
}

impl SeedDeriver {
    /// Creates a deriver for the given experiment root seed.
    pub const fn new(root: u64) -> Self {
        SeedDeriver { root }
    }

    /// The root seed this deriver was built from.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the sub-seed for `(label, index)`.
    pub fn seed(&self, label: &str, index: u64) -> u64 {
        let mut h = Hasher64::with_key(self.root);
        h.write(label.as_bytes()).write_u64(index);
        h.finish()
    }

    /// Builds a seeded [`SimRng`] for `(label, index)`.
    pub fn rng(&self, label: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed(label, index))
    }

    /// Derives a sub-seed from a *sequence* of string parts — the
    /// content-addressed form used to key an experiment cell by what it
    /// measures (system, benchmark, setup, rate, …) rather than by its
    /// position in an enumeration. Each part is length-prefixed so that
    /// `["ab", "c"]` and `["a", "bc"]` hash differently.
    pub fn seed_parts(&self, parts: &[&str]) -> u64 {
        let mut h = Hasher64::with_key(self.root);
        for p in parts {
            h.write_u64(p.len() as u64).write(p.as_bytes());
        }
        h.finish()
    }

    /// A deriver for repetition `rep` of the same experiment: the paper
    /// repeats every benchmark and averages; repetitions must differ but be
    /// reproducible.
    pub fn for_repetition(&self, rep: u32) -> SeedDeriver {
        SeedDeriver::new(self.seed("repetition", rep as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        let d = SeedDeriver::new(7);
        assert_eq!(d.seed("x", 1), d.seed("x", 1));
        assert_eq!(d.root(), 7);
    }

    #[test]
    fn labels_and_indices_separate_streams() {
        let d = SeedDeriver::new(7);
        assert_ne!(d.seed("x", 1), d.seed("x", 2));
        assert_ne!(d.seed("x", 1), d.seed("y", 1));
    }

    #[test]
    fn different_roots_different_streams() {
        assert_ne!(
            SeedDeriver::new(1).seed("x", 0),
            SeedDeriver::new(2).seed("x", 0)
        );
    }

    #[test]
    fn repetitions_differ_and_reproduce() {
        let d = SeedDeriver::new(99);
        let r0 = d.for_repetition(0);
        let r1 = d.for_repetition(1);
        assert_ne!(r0.seed("client", 0), r1.seed("client", 0));
        assert_eq!(r0.seed("client", 0), d.for_repetition(0).seed("client", 0));
    }

    #[test]
    fn seed_parts_is_content_addressed() {
        let d = SeedDeriver::new(7);
        assert_eq!(d.seed_parts(&["a", "b"]), d.seed_parts(&["a", "b"]));
        assert_ne!(d.seed_parts(&["a", "b"]), d.seed_parts(&["b", "a"]));
        // Length prefixes keep part boundaries from aliasing.
        assert_ne!(d.seed_parts(&["ab", "c"]), d.seed_parts(&["a", "bc"]));
        assert_ne!(
            SeedDeriver::new(8).seed_parts(&["a"]),
            SeedDeriver::new(7).seed_parts(&["a"])
        );
    }

    #[test]
    fn rng_streams_reproduce() {
        let draw = || {
            let mut r = SeedDeriver::new(5).rng("net", 3);
            (0..8).map(|_| r.next_u64()).collect::<Vec<u64>>()
        };
        assert_eq!(draw(), draw());
    }
}
