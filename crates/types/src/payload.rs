//! Client payloads: the interface-execution-layer invocations the COCONUT
//! clients wrap into transactions.
//!
//! The paper defines three interface execution layers (IELs) with six
//! functions in total (Table 3): `DoNothing`, `KeyValue::{Set, Get}` and
//! `BankingApp::{CreateAccount, SendPayment, Balance}`. The *semantics* of
//! executing a payload live in `coconut-iel`; this module only defines the
//! wire representation shared by clients and chains.

use crate::id::AccountId;

/// The six interface-execution-layer functions of the paper's Table 3,
/// without arguments. Useful as a workload selector and map key.
///
/// # Example
///
/// ```
/// use coconut_types::PayloadKind;
///
/// assert_eq!(PayloadKind::ALL.len(), 6);
/// assert!(PayloadKind::KeyValueSet.is_write());
/// assert!(!PayloadKind::KeyValueGet.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PayloadKind {
    /// The empty function; measures everything but execution.
    DoNothing,
    /// Writes a key/value pair.
    KeyValueSet,
    /// Reads a value by key.
    KeyValueGet,
    /// Creates checking and saving accounts with defined money.
    CreateAccount,
    /// Sends a payment from one account to the next.
    SendPayment,
    /// Checks an account balance.
    Balance,
    /// Smallbank: moves money from an account's checking into its saving
    /// balance. Not part of the paper's Table 3; emitted only by the
    /// Smallbank workload and therefore absent from [`PayloadKind::ALL`].
    TransactSavings,
    /// Smallbank: moves money from an account's saving into its checking
    /// balance.
    DepositChecking,
    /// Smallbank: cashes a check — reads both of the payer's balances,
    /// deducts from its checking, credits the payee's checking.
    WriteCheck,
    /// Smallbank: merges an account's checking and saving balances into
    /// another account's checking balance.
    Amalgamate,
}

impl PayloadKind {
    /// All six payload kinds of the paper's Table 3, in benchmark-unit
    /// order. The Smallbank extension kinds are deliberately *not* listed
    /// here: `ALL` drives the paper-reproduction sweeps, which know only
    /// the three original interface execution layers.
    pub const ALL: [PayloadKind; 6] = [
        PayloadKind::DoNothing,
        PayloadKind::KeyValueSet,
        PayloadKind::KeyValueGet,
        PayloadKind::CreateAccount,
        PayloadKind::SendPayment,
        PayloadKind::Balance,
    ];

    /// `true` for functions that mutate ledger state.
    pub const fn is_write(self) -> bool {
        matches!(
            self,
            PayloadKind::KeyValueSet
                | PayloadKind::CreateAccount
                | PayloadKind::SendPayment
                | PayloadKind::TransactSavings
                | PayloadKind::DepositChecking
                | PayloadKind::WriteCheck
                | PayloadKind::Amalgamate
        )
    }

    /// `true` for functions that read ledger state (SendPayment and the
    /// Smallbank transfers both read and write).
    pub const fn is_read(self) -> bool {
        matches!(
            self,
            PayloadKind::KeyValueGet
                | PayloadKind::Balance
                | PayloadKind::SendPayment
                | PayloadKind::TransactSavings
                | PayloadKind::DepositChecking
                | PayloadKind::WriteCheck
                | PayloadKind::Amalgamate
        )
    }

    /// A short stable name used in reports and file names.
    pub const fn label(self) -> &'static str {
        match self {
            PayloadKind::DoNothing => "DoNothing",
            PayloadKind::KeyValueSet => "KeyValue-Set",
            PayloadKind::KeyValueGet => "KeyValue-Get",
            PayloadKind::CreateAccount => "BankingApp-CreateAccount",
            PayloadKind::SendPayment => "BankingApp-SendPayment",
            PayloadKind::Balance => "BankingApp-Balance",
            PayloadKind::TransactSavings => "Smallbank-TransactSavings",
            PayloadKind::DepositChecking => "Smallbank-DepositChecking",
            PayloadKind::WriteCheck => "Smallbank-WriteCheck",
            PayloadKind::Amalgamate => "Smallbank-Amalgamate",
        }
    }
}

impl std::fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A single interface-execution-layer invocation with its arguments.
///
/// # Example
///
/// ```
/// use coconut_types::{Payload, PayloadKind};
///
/// let p = Payload::key_value_set(17, 1234);
/// assert_eq!(p.kind(), PayloadKind::KeyValueSet);
/// assert!(p.size_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// The empty function.
    DoNothing,
    /// Write `value` under `key`. Keys are unique per benchmark run
    /// ("designed in such a way that no duplicates occur during writing").
    KeyValueSet {
        /// The key to write.
        key: u64,
        /// The value to store.
        value: u64,
    },
    /// Read the value stored under `key`.
    KeyValueGet {
        /// The key to look up.
        key: u64,
    },
    /// Create a checking and a saving account with the given opening balances.
    CreateAccount {
        /// The account to create.
        account: AccountId,
        /// Opening checking balance.
        checking: u64,
        /// Opening saving balance.
        saving: u64,
    },
    /// Send `amount` from `from` to `to` (the paper sends from account *n*
    /// to account *n + 1*, deliberately creating overwrite conflicts).
    SendPayment {
        /// Paying account.
        from: AccountId,
        /// Receiving account.
        to: AccountId,
        /// Payment amount.
        amount: u64,
    },
    /// Read the balance of `account`.
    Balance {
        /// The account to query.
        account: AccountId,
    },
    /// Smallbank: move `amount` from `account`'s checking balance into its
    /// saving balance. All four Smallbank extension operations are internal
    /// transfers, so the total money in the system is conserved — the
    /// invariant the Smallbank workload's `verify` hook checks.
    TransactSavings {
        /// The account whose balances move.
        account: AccountId,
        /// Amount moved checking → saving.
        amount: u64,
    },
    /// Smallbank: move `amount` from `account`'s saving balance into its
    /// checking balance.
    DepositChecking {
        /// The account whose balances move.
        account: AccountId,
        /// Amount moved saving → checking.
        amount: u64,
    },
    /// Smallbank: cash a check — read both of `from`'s balances, deduct
    /// `amount` from its checking, credit `to`'s checking.
    WriteCheck {
        /// The paying account.
        from: AccountId,
        /// The receiving account.
        to: AccountId,
        /// The check amount.
        amount: u64,
    },
    /// Smallbank: merge `from`'s checking and saving balances into `to`'s
    /// checking balance, zeroing `from`.
    Amalgamate {
        /// The account being drained.
        from: AccountId,
        /// The account receiving both balances.
        to: AccountId,
    },
}

impl Payload {
    /// Convenience constructor for [`Payload::KeyValueSet`].
    pub const fn key_value_set(key: u64, value: u64) -> Self {
        Payload::KeyValueSet { key, value }
    }

    /// Convenience constructor for [`Payload::KeyValueGet`].
    pub const fn key_value_get(key: u64) -> Self {
        Payload::KeyValueGet { key }
    }

    /// Convenience constructor for [`Payload::CreateAccount`].
    pub const fn create_account(account: AccountId, checking: u64, saving: u64) -> Self {
        Payload::CreateAccount {
            account,
            checking,
            saving,
        }
    }

    /// Convenience constructor for [`Payload::SendPayment`].
    pub const fn send_payment(from: AccountId, to: AccountId, amount: u64) -> Self {
        Payload::SendPayment { from, to, amount }
    }

    /// Convenience constructor for [`Payload::Balance`].
    pub const fn balance(account: AccountId) -> Self {
        Payload::Balance { account }
    }

    /// Convenience constructor for [`Payload::TransactSavings`].
    pub const fn transact_savings(account: AccountId, amount: u64) -> Self {
        Payload::TransactSavings { account, amount }
    }

    /// Convenience constructor for [`Payload::DepositChecking`].
    pub const fn deposit_checking(account: AccountId, amount: u64) -> Self {
        Payload::DepositChecking { account, amount }
    }

    /// Convenience constructor for [`Payload::WriteCheck`].
    pub const fn write_check(from: AccountId, to: AccountId, amount: u64) -> Self {
        Payload::WriteCheck { from, to, amount }
    }

    /// Convenience constructor for [`Payload::Amalgamate`].
    pub const fn amalgamate(from: AccountId, to: AccountId) -> Self {
        Payload::Amalgamate { from, to }
    }

    /// The function this payload invokes.
    pub const fn kind(&self) -> PayloadKind {
        match self {
            Payload::DoNothing => PayloadKind::DoNothing,
            Payload::KeyValueSet { .. } => PayloadKind::KeyValueSet,
            Payload::KeyValueGet { .. } => PayloadKind::KeyValueGet,
            Payload::CreateAccount { .. } => PayloadKind::CreateAccount,
            Payload::SendPayment { .. } => PayloadKind::SendPayment,
            Payload::Balance { .. } => PayloadKind::Balance,
            Payload::TransactSavings { .. } => PayloadKind::TransactSavings,
            Payload::DepositChecking { .. } => PayloadKind::DepositChecking,
            Payload::WriteCheck { .. } => PayloadKind::WriteCheck,
            Payload::Amalgamate { .. } => PayloadKind::Amalgamate,
        }
    }

    /// Approximate serialized size in bytes, used by the network model to
    /// account for transmission cost.
    pub const fn size_bytes(&self) -> usize {
        // envelope (signature, ids, framing) + arguments
        const ENVELOPE: usize = 96;
        ENVELOPE
            + match self {
                Payload::DoNothing => 0,
                Payload::KeyValueSet { .. } => 16,
                Payload::KeyValueGet { .. } => 8,
                Payload::CreateAccount { .. } => 24,
                Payload::SendPayment { .. } => 24,
                Payload::Balance { .. } => 8,
                Payload::TransactSavings { .. } => 16,
                Payload::DepositChecking { .. } => 16,
                Payload::WriteCheck { .. } => 24,
                Payload::Amalgamate { .. } => 16,
            }
    }

    /// Serializes the payload into bytes for hashing/fingerprinting.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        match self {
            Payload::DoNothing => out.push(0),
            Payload::KeyValueSet { key, value } => {
                out.push(1);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            Payload::KeyValueGet { key } => {
                out.push(2);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Payload::CreateAccount {
                account,
                checking,
                saving,
            } => {
                out.push(3);
                out.extend_from_slice(&account.0.to_le_bytes());
                out.extend_from_slice(&checking.to_le_bytes());
                out.extend_from_slice(&saving.to_le_bytes());
            }
            Payload::SendPayment { from, to, amount } => {
                out.push(4);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Payload::Balance { account } => {
                out.push(5);
                out.extend_from_slice(&account.0.to_le_bytes());
            }
            Payload::TransactSavings { account, amount } => {
                out.push(6);
                out.extend_from_slice(&account.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Payload::DepositChecking { account, amount } => {
                out.push(7);
                out.extend_from_slice(&account.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Payload::WriteCheck { from, to, amount } => {
                out.push(8);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Payload::Amalgamate { from, to } => {
                out.push(9);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trip() {
        assert_eq!(Payload::DoNothing.kind(), PayloadKind::DoNothing);
        assert_eq!(
            Payload::key_value_set(1, 2).kind(),
            PayloadKind::KeyValueSet
        );
        assert_eq!(Payload::key_value_get(1).kind(), PayloadKind::KeyValueGet);
        assert_eq!(
            Payload::create_account(AccountId(1), 10, 10).kind(),
            PayloadKind::CreateAccount
        );
        assert_eq!(
            Payload::send_payment(AccountId(1), AccountId(2), 5).kind(),
            PayloadKind::SendPayment
        );
        assert_eq!(Payload::balance(AccountId(1)).kind(), PayloadKind::Balance);
    }

    #[test]
    fn write_read_classification_matches_paper() {
        // Table 3: Set writes, Get reads; CreateAccount writes; SendPayment
        // reads balances and writes them; Balance reads.
        assert!(PayloadKind::KeyValueSet.is_write() && !PayloadKind::KeyValueSet.is_read());
        assert!(PayloadKind::KeyValueGet.is_read() && !PayloadKind::KeyValueGet.is_write());
        assert!(PayloadKind::SendPayment.is_read() && PayloadKind::SendPayment.is_write());
        assert!(!PayloadKind::DoNothing.is_read() && !PayloadKind::DoNothing.is_write());
    }

    #[test]
    fn sizes_are_envelope_plus_args() {
        assert_eq!(Payload::DoNothing.size_bytes(), 96);
        assert_eq!(Payload::key_value_set(1, 2).size_bytes(), 112);
        assert_eq!(Payload::balance(AccountId(1)).size_bytes(), 104);
    }

    #[test]
    fn to_bytes_distinguishes_payloads() {
        let a = Payload::key_value_set(1, 2).to_bytes();
        let b = Payload::key_value_set(1, 3).to_bytes();
        let c = Payload::key_value_get(1).to_bytes();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PayloadKind::DoNothing.label(), "DoNothing");
        assert_eq!(PayloadKind::SendPayment.label(), "BankingApp-SendPayment");
        assert_eq!(PayloadKind::KeyValueGet.to_string(), "KeyValue-Get");
    }

    #[test]
    fn all_lists_each_kind_once() {
        let mut kinds = PayloadKind::ALL.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 6);
    }

    #[test]
    fn smallbank_kinds_are_outside_the_paper_set() {
        let ext = [
            PayloadKind::TransactSavings,
            PayloadKind::DepositChecking,
            PayloadKind::WriteCheck,
            PayloadKind::Amalgamate,
        ];
        for kind in ext {
            assert!(!PayloadKind::ALL.contains(&kind), "{kind} must not sweep");
            assert!(kind.is_write() && kind.is_read(), "{kind} reads and writes");
            assert!(kind.label().starts_with("Smallbank-"));
        }
    }

    #[test]
    fn smallbank_payloads_round_trip_and_serialize() {
        let a = AccountId(3);
        let b = AccountId(4);
        let payloads = [
            Payload::transact_savings(a, 5),
            Payload::deposit_checking(a, 5),
            Payload::write_check(a, b, 5),
            Payload::amalgamate(a, b),
        ];
        let kinds = [
            PayloadKind::TransactSavings,
            PayloadKind::DepositChecking,
            PayloadKind::WriteCheck,
            PayloadKind::Amalgamate,
        ];
        let mut tags = Vec::new();
        for (p, kind) in payloads.iter().zip(kinds) {
            assert_eq!(p.kind(), kind);
            assert!(p.size_bytes() > 96, "envelope plus arguments");
            let bytes = p.to_bytes();
            tags.push(bytes[0]);
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags,
            vec![6, 7, 8, 9],
            "distinct wire tags past Balance's 5"
        );
    }
}
