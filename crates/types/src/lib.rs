//! Core vocabulary types shared by every COCONUT crate.
//!
//! This crate defines the *simulation-wide* primitives used across the whole
//! workspace: virtual time ([`SimTime`], [`SimDuration`]), strongly typed
//! identifiers ([`NodeId`], [`ClientId`], [`TxId`], ...), the transaction and
//! block structures exchanged between clients and the modelled blockchain
//! systems, a deterministic non-cryptographic [`hash`] used for chain linking,
//! and [`seed`] utilities that derive independent RNG streams from a single
//! experiment seed.
//!
//! Everything here is deliberately free of any simulation or networking logic
//! so that higher crates (`coconut-simnet`, `coconut-consensus`,
//! `coconut-chains`, `coconut`) can depend on it without cycles.
//!
//! # Example
//!
//! ```
//! use coconut_types::{SimTime, SimDuration, TxId, ClientId};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(1_500);
//! assert_eq!((later - start).as_secs_f64(), 1.5);
//!
//! let tx = TxId::new(ClientId(3), 42);
//! assert_eq!(tx.client(), ClientId(3));
//! assert_eq!(tx.seq(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod hash;
pub mod id;
pub mod payload;
pub mod rng;
pub mod seed;
pub mod time;
pub mod tx;

pub use block::{Block, BlockHeader};
pub use hash::{chain_hash, Hash256, Hasher64};
pub use id::{AccountId, BlockId, ClientId, NodeId, StateRef, ThreadId, TxId};
pub use payload::{Payload, PayloadKind};
pub use rng::SimRng;
pub use seed::SeedDeriver;
pub use time::{SimDuration, SimTime};
pub use tx::{ClientTx, TxOutcome, TxStatus};
