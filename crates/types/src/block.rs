//! Blocks produced by the modelled blockchain systems.
//!
//! Corda is block-less (UTXO finality per transaction); every other modelled
//! system links [`Block`]s with [`chain_hash`](crate::chain_hash).

use crate::hash::{chain_hash, Hash256};
use crate::id::{BlockId, NodeId, TxId};
use crate::time::SimTime;

/// The header of a finalized block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Sequential block identifier (equals the height for linear chains).
    pub id: BlockId,
    /// Height of the block (genesis = 0).
    pub height: u64,
    /// Digest of the parent block.
    pub parent: Hash256,
    /// Digest of this block (over parent + body).
    pub hash: Hash256,
    /// The node that proposed / produced the block (leader, witness, orderer).
    pub proposer: NodeId,
    /// Virtual time at which the block was finalized by consensus.
    pub finalized_at: SimTime,
}

/// A finalized block: a header plus the transactions it carries.
///
/// # Example
///
/// ```
/// use coconut_types::{Block, ClientId, Hash256, NodeId, SimTime, TxId};
///
/// let genesis = Block::genesis();
/// let txs = vec![TxId::new(ClientId(0), 1)];
/// let b = Block::next(&genesis, NodeId(0), SimTime::from_secs(1), txs);
/// assert_eq!(b.height(), 1);
/// assert_eq!(b.header().parent, genesis.header().hash);
/// assert!(b.verify_link(&genesis));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    header: BlockHeader,
    txs: Vec<TxId>,
    /// Total operations across carried transactions (≥ `txs.len()` for
    /// multi-operation systems such as BitShares and Sawtooth batches).
    ops: u64,
}

impl Block {
    /// The genesis block: height 0, no transactions, zero hashes.
    pub fn genesis() -> Self {
        Block {
            header: BlockHeader {
                id: BlockId(0),
                height: 0,
                parent: Hash256::GENESIS,
                hash: Hash256::GENESIS,
                proposer: NodeId(0),
                finalized_at: SimTime::ZERO,
            },
            txs: Vec::new(),
            ops: 0,
        }
    }

    /// Builds the block following `parent`, hashing the transaction list
    /// into the chain.
    pub fn next(parent: &Block, proposer: NodeId, finalized_at: SimTime, txs: Vec<TxId>) -> Self {
        Self::next_with_ops(parent, proposer, finalized_at, txs, None)
    }

    /// Like [`Block::next`] but with an explicit operation count for
    /// multi-operation transaction structures. `ops = None` counts one
    /// operation per transaction.
    pub fn next_with_ops(
        parent: &Block,
        proposer: NodeId,
        finalized_at: SimTime,
        txs: Vec<TxId>,
        ops: Option<u64>,
    ) -> Self {
        let mut body = Vec::with_capacity(txs.len() * 8 + 16);
        body.extend_from_slice(&(parent.header.height + 1).to_le_bytes());
        body.extend_from_slice(&proposer.0.to_le_bytes());
        for tx in &txs {
            body.extend_from_slice(&tx.as_u64().to_le_bytes());
        }
        let hash = chain_hash(&parent.header.hash, &body);
        let ops = ops.unwrap_or(txs.len() as u64);
        Block {
            header: BlockHeader {
                id: BlockId(parent.header.height + 1),
                height: parent.header.height + 1,
                parent: parent.header.hash,
                hash,
                proposer,
                finalized_at,
            },
            txs,
            ops,
        }
    }

    /// The block header.
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// Block height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.header.height
    }

    /// Transactions carried by this block.
    pub fn txs(&self) -> &[TxId] {
        &self.txs
    }

    /// Number of carried transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Total operations across carried transactions.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// `true` if the block carries no transactions (e.g. Quorum's empty
    /// blocks during a liveness stall).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Verifies that this block correctly links onto `parent`: matching
    /// parent digest, consecutive height, and a recomputable hash.
    pub fn verify_link(&self, parent: &Block) -> bool {
        if self.header.parent != parent.header.hash
            || self.header.height != parent.header.height + 1
        {
            return false;
        }
        let recomputed = Block::next_with_ops(
            parent,
            self.header.proposer,
            self.header.finalized_at,
            self.txs.clone(),
            Some(self.ops),
        );
        recomputed.header.hash == self.header.hash
    }
}

/// Validates an entire chain of blocks starting at genesis.
///
/// Returns the height of the first invalid link, or `Ok(())` when every
/// block correctly extends its predecessor.
///
/// # Errors
///
/// Returns `Err(height)` for the first block whose link fails verification.
///
/// # Example
///
/// ```
/// use coconut_types::block::{validate_chain, Block};
/// use coconut_types::{NodeId, SimTime};
///
/// let g = Block::genesis();
/// let b1 = Block::next(&g, NodeId(0), SimTime::from_secs(1), vec![]);
/// let b2 = Block::next(&b1, NodeId(1), SimTime::from_secs(2), vec![]);
/// assert!(validate_chain(&[g, b1, b2]).is_ok());
/// ```
pub fn validate_chain(chain: &[Block]) -> Result<(), u64> {
    for pair in chain.windows(2) {
        if !pair[1].verify_link(&pair[0]) {
            return Err(pair[1].height());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ClientId;

    fn tx(seq: u64) -> TxId {
        TxId::new(ClientId(0), seq)
    }

    #[test]
    fn genesis_shape() {
        let g = Block::genesis();
        assert_eq!(g.height(), 0);
        assert!(g.is_empty());
        assert_eq!(g.header().hash, Hash256::GENESIS);
        assert_eq!(g.op_count(), 0);
    }

    #[test]
    fn chain_links_verify() {
        let g = Block::genesis();
        let b1 = Block::next(&g, NodeId(1), SimTime::from_secs(1), vec![tx(1), tx(2)]);
        let b2 = Block::next(&b1, NodeId(2), SimTime::from_secs(2), vec![tx(3)]);
        assert!(b1.verify_link(&g));
        assert!(b2.verify_link(&b1));
        assert!(!b2.verify_link(&g));
        assert!(validate_chain(&[g, b1, b2]).is_ok());
    }

    #[test]
    fn tampering_breaks_chain() {
        let g = Block::genesis();
        let b1 = Block::next(&g, NodeId(1), SimTime::from_secs(1), vec![tx(1)]);
        let mut b2 = Block::next(&b1, NodeId(2), SimTime::from_secs(2), vec![tx(2)]);
        b2.txs[0] = tx(99); // tamper with the body without re-hashing
        assert!(!b2.verify_link(&b1));
        assert_eq!(validate_chain(&[g, b1, b2]), Err(2));
    }

    #[test]
    fn heights_and_ids_increment() {
        let g = Block::genesis();
        let b1 = Block::next(&g, NodeId(0), SimTime::ZERO, vec![]);
        assert_eq!(b1.height(), 1);
        assert_eq!(b1.header().id, BlockId(1));
        assert_eq!(b1.header().parent, g.header().hash);
    }

    #[test]
    fn op_count_defaults_to_tx_count() {
        let g = Block::genesis();
        let b = Block::next(&g, NodeId(0), SimTime::ZERO, vec![tx(1), tx(2), tx(3)]);
        assert_eq!(b.op_count(), 3);
        let batched = Block::next_with_ops(&g, NodeId(0), SimTime::ZERO, vec![tx(1)], Some(100));
        assert_eq!(batched.op_count(), 100);
        assert_eq!(batched.tx_count(), 1);
    }

    #[test]
    fn different_proposers_give_different_hashes() {
        let g = Block::genesis();
        let a = Block::next(&g, NodeId(0), SimTime::ZERO, vec![tx(1)]);
        let b = Block::next(&g, NodeId(1), SimTime::ZERO, vec![tx(1)]);
        assert_ne!(a.header().hash, b.header().hash);
    }
}
