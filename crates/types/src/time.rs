//! Virtual time for the discrete-event simulation.
//!
//! All COCONUT experiments run in *virtual* time: a benchmark that the paper
//! ran for 300 wall-clock seconds is simulated in milliseconds of host time,
//! but every timestamp, latency, and duration is tracked at microsecond
//! resolution in virtual time. This preserves the paper's metric formulas
//! (MFLS, MTPS, Duration) exactly while making full parameter sweeps cheap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`] when an
/// experiment begins. Arithmetic with [`SimDuration`] is checked in debug
/// builds and saturating in release builds (virtual time never goes
/// backwards past zero and never overflows in any realistic experiment).
///
/// # Example
///
/// ```
/// use coconut_types::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// assert_eq!(t.as_secs_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Example
///
/// ```
/// use coconut_types::SimDuration;
///
/// let d = SimDuration::from_millis(12) + SimDuration::from_micros(250);
/// assert_eq!(d.as_micros(), 12_250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time: the instant an experiment starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (lossy above 2^53 µs).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Time elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// Saturates to zero if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_micros(2_000_000)
        );
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 10_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), SimDuration::ZERO, "subtraction saturates");
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.min(SimTime::MAX), SimTime::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_micros(12_500).to_string(), "12.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn saturating_since() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }
}
