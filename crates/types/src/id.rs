//! Strongly typed identifiers.
//!
//! Each entity in a COCONUT experiment — blockchain node, client application,
//! workload thread, transaction, block, account, UTXO state — gets its own
//! newtype so identifiers cannot be mixed up across domains (C-NEWTYPE).

use std::fmt;

/// Identifier of a blockchain node (peer, validator, witness, orderer or
/// notary, depending on the modelled system).
///
/// # Example
///
/// ```
/// use coconut_types::NodeId;
///
/// let n = NodeId(2);
/// assert_eq!(n.to_string(), "node-2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of a COCONUT client application.
///
/// The paper runs four client applications (two per client server), each of
/// which starts four workload threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

/// Identifier of a workload thread within a client application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

/// Globally unique transaction identifier.
///
/// A transaction is identified by the client that created it and a
/// per-client sequence number; this mirrors how the COCONUT client
/// correlates finalization notifications with submitted requests.
///
/// # Example
///
/// ```
/// use coconut_types::{ClientId, TxId};
///
/// let id = TxId::new(ClientId(1), 7);
/// assert_eq!(id.client(), ClientId(1));
/// assert_eq!(id.seq(), 7);
/// assert_eq!(id.to_string(), "tx-1.7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId {
    client: ClientId,
    seq: u64,
}

impl TxId {
    /// Creates a transaction id from its issuing client and sequence number.
    pub const fn new(client: ClientId, seq: u64) -> Self {
        TxId { client, seq }
    }

    /// The client application that issued the transaction.
    pub const fn client(self) -> ClientId {
        self.client
    }

    /// The per-client sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }

    /// A stable 64-bit key for hashing and vault lookups.
    pub const fn as_u64(self) -> u64 {
        (self.client.0 as u64) << 48 | (self.seq & 0xFFFF_FFFF_FFFF)
    }
}

/// Identifier of a block in a modelled blockchain (height-scoped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

/// Reference to a UTXO state: the transaction that produced it and the
/// output index within that transaction (Corda / UTXO-model systems).
///
/// # Example
///
/// ```
/// use coconut_types::{ClientId, StateRef, TxId};
///
/// let s = StateRef::new(TxId::new(ClientId(0), 3), 1);
/// assert_eq!(s.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateRef {
    tx: TxId,
    index: u32,
}

impl StateRef {
    /// Creates a state reference from a producing transaction and output index.
    pub const fn new(tx: TxId, index: u32) -> Self {
        StateRef { tx, index }
    }

    /// The transaction that produced this state.
    pub const fn tx(self) -> TxId {
        self.tx
    }

    /// The output index within the producing transaction.
    pub const fn index(self) -> u32 {
        self.index
    }
}

/// Identifier of a banking account used by the BankingApp interface
/// execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AccountId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread-{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx-{}.{}", self.client.0, self.seq)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block-{}", self.0)
    }
}

impl fmt::Display for StateRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.tx, self.index)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "account-{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

impl From<u64> for AccountId {
    fn from(v: u64) -> Self {
        AccountId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tx_id_round_trip() {
        let id = TxId::new(ClientId(9), 123);
        assert_eq!(id.client(), ClientId(9));
        assert_eq!(id.seq(), 123);
    }

    #[test]
    fn tx_id_as_u64_is_injective_for_realistic_ranges() {
        let mut seen = HashSet::new();
        for c in 0..8u32 {
            for s in 0..1000u64 {
                assert!(seen.insert(TxId::new(ClientId(c), s).as_u64()));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(4).to_string(), "node-4");
        assert_eq!(ClientId(0).to_string(), "client-0");
        assert_eq!(ThreadId(2).to_string(), "thread-2");
        assert_eq!(BlockId(17).to_string(), "block-17");
        assert_eq!(AccountId(5).to_string(), "account-5");
        let sr = StateRef::new(TxId::new(ClientId(1), 2), 0);
        assert_eq!(sr.to_string(), "tx-1.2#0");
    }

    #[test]
    fn state_ref_accessors() {
        let tx = TxId::new(ClientId(1), 5);
        let s = StateRef::new(tx, 3);
        assert_eq!(s.tx(), tx);
        assert_eq!(s.index(), 3);
    }

    #[test]
    fn ids_order_naturally() {
        assert!(NodeId(1) < NodeId(2));
        assert!(TxId::new(ClientId(0), 5) < TxId::new(ClientId(1), 0));
        assert!(TxId::new(ClientId(1), 1) < TxId::new(ClientId(1), 2));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(ClientId::from(2u32), ClientId(2));
        assert_eq!(AccountId::from(8u64), AccountId(8));
    }
}
