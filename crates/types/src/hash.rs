//! Deterministic, dependency-free hashing for chain linking.
//!
//! The modelled blockchains link blocks with a 256-bit digest. Cryptographic
//! strength is irrelevant to the performance study (the paper never attacks
//! its own chains), but determinism and collision resistance across realistic
//! input volumes matter for correctness tests. We therefore implement a
//! 256-bit digest built from four independently-keyed FNV-1a-style 64-bit
//! lanes with avalanche finalization (the SplitMix64 finalizer). This is a
//! non-cryptographic hash and is documented as such.

use std::fmt;

/// A 256-bit digest used to link blocks and fingerprint transactions.
///
/// # Example
///
/// ```
/// use coconut_types::{chain_hash, Hash256};
///
/// let parent = Hash256::GENESIS;
/// let h1 = chain_hash(&parent, b"block body");
/// let h2 = chain_hash(&parent, b"block body");
/// assert_eq!(h1, h2, "hashing is deterministic");
/// assert_ne!(h1, Hash256::GENESIS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash256(pub [u64; 4]);

impl Hash256 {
    /// The all-zero digest used as the genesis parent.
    pub const GENESIS: Hash256 = Hash256([0; 4]);

    /// The first 64 bits of the digest, handy as a short fingerprint.
    pub const fn prefix64(self) -> u64 {
        self.0[0]
    }
}

impl Default for Hash256 {
    fn default() -> Self {
        Hash256::GENESIS
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::LowerHex for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// SplitMix64 finalizer: a fast full-avalanche bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A streaming 64-bit non-cryptographic hasher (keyed FNV-1a with a
/// SplitMix64 finalizer).
///
/// # Example
///
/// ```
/// use coconut_types::Hasher64;
///
/// let mut h = Hasher64::with_key(7);
/// h.write(b"hello");
/// h.write_u64(42);
/// let digest = h.finish();
/// assert_ne!(digest, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Hasher64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Hasher64 {
    /// Creates an unkeyed hasher.
    pub fn new() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Creates a hasher whose output stream is independent per `key`.
    pub fn with_key(key: u64) -> Self {
        Hasher64 {
            state: FNV_OFFSET ^ mix64(key),
        }
    }

    /// Feeds raw bytes into the hash state.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a little-endian `u64` into the hash state.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Finalizes and returns the 64-bit digest. The hasher may keep being
    /// fed afterwards; `finish` does not consume state.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64::new()
    }
}

/// Computes the digest of a block body chained onto its parent digest.
///
/// Four independently keyed 64-bit lanes give a 256-bit result; each lane
/// absorbs the parent digest and the body bytes.
///
/// # Example
///
/// ```
/// use coconut_types::{chain_hash, Hash256};
///
/// let a = chain_hash(&Hash256::GENESIS, b"a");
/// let b = chain_hash(&a, b"b");
/// assert_ne!(a, b);
/// // Chaining is order-sensitive:
/// let b_first = chain_hash(&Hash256::GENESIS, b"b");
/// assert_ne!(chain_hash(&b_first, b"a"), b);
/// ```
pub fn chain_hash(parent: &Hash256, body: &[u8]) -> Hash256 {
    let mut out = [0u64; 4];
    for (lane, slot) in out.iter_mut().enumerate() {
        let mut h = Hasher64::with_key(lane as u64 + 1);
        for p in parent.0 {
            h.write_u64(p);
        }
        h.write(body);
        *slot = h.finish();
    }
    Hash256(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let h1 = chain_hash(&Hash256::GENESIS, b"payload");
        let h2 = chain_hash(&Hash256::GENESIS, b"payload");
        assert_eq!(h1, h2);
    }

    #[test]
    fn sensitive_to_body_and_parent() {
        let a = chain_hash(&Hash256::GENESIS, b"a");
        let b = chain_hash(&Hash256::GENESIS, b"b");
        assert_ne!(a, b);
        assert_ne!(chain_hash(&a, b"x"), chain_hash(&b, b"x"));
    }

    #[test]
    fn no_collisions_over_many_inputs() {
        let mut seen = HashSet::new();
        let mut parent = Hash256::GENESIS;
        for i in 0..10_000u64 {
            parent = chain_hash(&parent, &i.to_le_bytes());
            assert!(seen.insert(parent), "collision at {i}");
        }
    }

    #[test]
    fn hasher64_keyed_streams_differ() {
        let mut a = Hasher64::with_key(1);
        let mut b = Hasher64::with_key(2);
        a.write(b"same");
        b.write(b"same");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hasher64_incremental_equals_one_shot() {
        let mut a = Hasher64::new();
        a.write(b"hello ").write(b"world");
        let mut b = Hasher64::new();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_64_hex_chars() {
        let h = chain_hash(&Hash256::GENESIS, b"x");
        let s = h.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{h:x}"), s);
    }

    #[test]
    fn genesis_is_default_and_zero() {
        assert_eq!(Hash256::default(), Hash256::GENESIS);
        assert_eq!(Hash256::GENESIS.prefix64(), 0);
    }
}
