//! Client transactions and their end-to-end outcomes.

use crate::id::{BlockId, ThreadId, TxId};
use crate::payload::{Payload, PayloadKind};
use crate::time::SimTime;

/// A transaction as submitted by a COCONUT client workload thread.
///
/// Depending on the modelled system, one `ClientTx` is a single transaction
/// (Fabric, Quorum, Diem), a transaction holding several *operations*
/// (BitShares), an atomic *batch* of transactions (Sawtooth), or a flow with
/// input/output states (Corda). The paper's Table 2 maps these structures;
/// COCONUT represents all of them as a list of payloads, and the per-system
/// models interpret the list according to their native structure.
///
/// # Example
///
/// ```
/// use coconut_types::{ClientId, ClientTx, Payload, SimTime, ThreadId, TxId};
///
/// let tx = ClientTx::new(
///     TxId::new(ClientId(0), 1),
///     ThreadId(2),
///     vec![Payload::DoNothing; 3],
///     SimTime::from_secs(1),
/// );
/// assert_eq!(tx.op_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientTx {
    id: TxId,
    thread: ThreadId,
    payloads: Vec<Payload>,
    created_at: SimTime,
}

impl ClientTx {
    /// Creates a transaction.
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty: every transaction carries at least one
    /// operation.
    pub fn new(id: TxId, thread: ThreadId, payloads: Vec<Payload>, created_at: SimTime) -> Self {
        assert!(
            !payloads.is_empty(),
            "a transaction must carry at least one payload"
        );
        ClientTx {
            id,
            thread,
            payloads,
            created_at,
        }
    }

    /// Creates a single-operation transaction.
    pub fn single(id: TxId, thread: ThreadId, payload: Payload, created_at: SimTime) -> Self {
        ClientTx::new(id, thread, vec![payload], created_at)
    }

    /// The transaction's globally unique identifier.
    pub const fn id(&self) -> TxId {
        self.id
    }

    /// The workload thread that produced this transaction.
    pub const fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The operations carried by this transaction (≥ 1).
    pub fn payloads(&self) -> &[Payload] {
        &self.payloads
    }

    /// Number of operations (BitShares) / inner transactions (Sawtooth).
    pub fn op_count(&self) -> usize {
        self.payloads.len()
    }

    /// The instant the client created the transaction (the paper's
    /// `starttime`, taken "just before a transaction request is sent").
    pub const fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// The kind of the first payload; benchmarks are homogeneous so this is
    /// the kind of every payload in practice.
    pub fn kind(&self) -> PayloadKind {
        self.payloads[0].kind()
    }

    /// Total serialized size in bytes across all operations.
    pub fn size_bytes(&self) -> usize {
        self.payloads.iter().map(Payload::size_bytes).sum()
    }
}

/// Why a transaction failed to reach finality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailReason {
    /// The node's admission queue was full and rejected the submission
    /// (Sawtooth's decisive failure mode in §5.6).
    QueueFull,
    /// A serializability / double-spend conflict aborted the transaction
    /// (notary rejection in Corda, MVCC invalidation in Fabric, atomic
    /// batch/operation abort in Sawtooth/BitShares).
    Conflict,
    /// The execution layer itself rejected the invocation (e.g. reading a
    /// key that does not exist, overdrawing an account).
    ExecutionError,
    /// The system stopped serving confirmations — the paper's liveness
    /// violation (Quorum with blockperiod ≤ 2 s, stalled BitShares).
    LivenessStall,
    /// The confirmation never arrived before the client terminated
    /// (lost transaction from the client's perspective).
    Timeout,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailReason::QueueFull => "queue full",
            FailReason::Conflict => "conflict",
            FailReason::ExecutionError => "execution error",
            FailReason::LivenessStall => "liveness stall",
            FailReason::Timeout => "timeout",
        };
        f.write_str(s)
    }
}

/// The lifecycle state of a transaction from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Submitted, no confirmation yet.
    Pending,
    /// Confirmed as finalized on all nodes.
    Committed,
    /// Terminally failed.
    Failed(FailReason),
}

/// A finalization notification delivered to the submitting client: the
/// paper's end-to-end confirmation, carrying everything the client needs to
/// compute `endtime - starttime`.
///
/// # Example
///
/// ```
/// use coconut_types::{BlockId, ClientId, SimTime, TxId, TxOutcome};
///
/// let o = TxOutcome::committed(TxId::new(ClientId(0), 1), BlockId(5), SimTime::from_secs(3), 1);
/// assert!(o.is_committed());
/// assert_eq!(o.ops_confirmed(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxOutcome {
    /// The transaction this notification is about.
    pub tx: TxId,
    /// Terminal status ([`TxStatus::Pending`] never appears in an outcome).
    pub status: TxStatus,
    /// The block that carried the transaction, if it was committed into one.
    pub block: Option<BlockId>,
    /// When the confirmation became available to the client (the paper's
    /// `endtime` is this instant plus notification delivery latency).
    pub finalized_at: SimTime,
    /// How many of the transaction's operations were confirmed. BitShares
    /// counts every operation as a transaction for MTPS (§4.5), so the
    /// client needs this number.
    pub ops: u32,
}

impl TxOutcome {
    /// Creates a committed outcome.
    pub fn committed(tx: TxId, block: BlockId, at: SimTime, ops: u32) -> Self {
        TxOutcome {
            tx,
            status: TxStatus::Committed,
            block: Some(block),
            finalized_at: at,
            ops,
        }
    }

    /// Creates a failed outcome.
    pub fn failed(tx: TxId, reason: FailReason, at: SimTime) -> Self {
        TxOutcome {
            tx,
            status: TxStatus::Failed(reason),
            block: None,
            finalized_at: at,
            ops: 0,
        }
    }

    /// `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self.status, TxStatus::Committed)
    }

    /// Operations confirmed by this outcome (0 for failures).
    pub fn ops_confirmed(&self) -> u32 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ClientId;

    fn tx_id() -> TxId {
        TxId::new(ClientId(1), 9)
    }

    #[test]
    #[should_panic(expected = "at least one payload")]
    fn rejects_empty_payloads() {
        let _ = ClientTx::new(tx_id(), ThreadId(0), vec![], SimTime::ZERO);
    }

    #[test]
    fn accessors() {
        let tx = ClientTx::single(
            tx_id(),
            ThreadId(3),
            Payload::key_value_set(1, 2),
            SimTime::from_secs(5),
        );
        assert_eq!(tx.id(), tx_id());
        assert_eq!(tx.thread(), ThreadId(3));
        assert_eq!(tx.op_count(), 1);
        assert_eq!(tx.kind(), PayloadKind::KeyValueSet);
        assert_eq!(tx.created_at(), SimTime::from_secs(5));
        assert!(tx.size_bytes() >= 96);
    }

    #[test]
    fn multi_op_size_scales() {
        let one = ClientTx::single(tx_id(), ThreadId(0), Payload::DoNothing, SimTime::ZERO);
        let many = ClientTx::new(
            tx_id(),
            ThreadId(0),
            vec![Payload::DoNothing; 100],
            SimTime::ZERO,
        );
        assert_eq!(many.size_bytes(), one.size_bytes() * 100);
        assert_eq!(many.op_count(), 100);
    }

    #[test]
    fn outcome_constructors() {
        let c = TxOutcome::committed(tx_id(), BlockId(2), SimTime::from_secs(1), 4);
        assert!(c.is_committed());
        assert_eq!(c.block, Some(BlockId(2)));
        assert_eq!(c.ops_confirmed(), 4);

        let f = TxOutcome::failed(tx_id(), FailReason::QueueFull, SimTime::from_secs(2));
        assert!(!f.is_committed());
        assert_eq!(f.block, None);
        assert_eq!(f.status, TxStatus::Failed(FailReason::QueueFull));
        assert_eq!(f.ops_confirmed(), 0);
    }

    #[test]
    fn fail_reason_display() {
        assert_eq!(FailReason::QueueFull.to_string(), "queue full");
        assert_eq!(FailReason::LivenessStall.to_string(), "liveness stall");
    }
}
