//! A small, fast, fully in-tree pseudo-random number generator.
//!
//! The workspace must build with no network registry, so the `rand` crate is
//! replaced by [`SimRng`]: a splitmix64-seeded xoshiro256++ generator with
//! exactly the operations the simulator needs — uniform integers and floats,
//! Bernoulli draws, ranges, shuffles, and normal deviates (for the `netem`
//! latency emulation). Everything is deterministic given the seed; the same
//! call sequence always yields the same stream.

/// Seeded deterministic PRNG (xoshiro256++ with splitmix64 seeding).
///
/// # Example
///
/// ```
/// use coconut_types::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.gen_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[lo, hi]` (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of span+1 to keep the
        // distribution exactly uniform.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_inclusive(0, i as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A standard-normal deviate (Box–Muller over the open unit interval).
    pub fn gen_standard_normal(&mut self) -> f64 {
        // Avoid u1 == 0, which would make ln(0) = -inf.
        let u1: f64 = loop {
            let v = self.gen_f64();
            if v > f64::EPSILON {
                break v;
            }
        };
        let u2: f64 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(5);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(5);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SimRng::seed_from_u64(6).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SimRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range_inclusive(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        assert_eq!(r.gen_range_inclusive(7, 7), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        let _ = SimRng::seed_from_u64(0).gen_range_inclusive(2, 1);
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut r = SimRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.05)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        SimRng::seed_from_u64(9).shuffle(&mut a);
        SimRng::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements almost surely move");
    }

    #[test]
    fn normal_deviates_have_unit_variance() {
        let mut r = SimRng::seed_from_u64(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
