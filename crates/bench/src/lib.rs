//! Shared helpers for the COCONUT benchmark harness (the `repro` binary
//! and the wall-clock benches live in this crate).
//!
//! The substance is in [`coconut`]; this crate re-exports the pieces the
//! harness needs and provides [`harness`], a small in-tree timing loop that
//! replaces Criterion (the workspace builds with no network registry).

#![forbid(unsafe_code)]

pub use coconut::experiments;
pub use coconut::prelude;

pub mod harness {
    //! A minimal wall-clock benchmark harness.
    //!
    //! Each bench runs one warm-up iteration, then `sample_size` timed
    //! iterations, and prints min / mean / max per-iteration wall time.
    //! These benches gate nothing; they exist to quantify simulator cost
    //! (events per host second), so a plain timing loop suffices.

    use std::time::{Duration, Instant};

    pub use std::hint::black_box;

    /// A named group of benches sharing a sample size.
    pub struct Group {
        name: String,
        sample_size: u32,
    }

    impl Group {
        /// Creates a group with the default 10 samples per bench.
        pub fn new(name: &str) -> Self {
            Group {
                name: name.to_string(),
                sample_size: 10,
            }
        }

        /// Sets the number of timed iterations per bench.
        pub fn sample_size(&mut self, n: u32) -> &mut Self {
            assert!(n > 0, "need at least one sample");
            self.sample_size = n;
            self
        }

        /// Runs and reports one bench. The closure's return value is passed
        /// through [`black_box`] so the work is not optimized away.
        pub fn bench_function<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> &mut Self {
            black_box(f()); // warm-up
            let mut samples = Vec::with_capacity(self.sample_size as usize);
            for _ in 0..self.sample_size {
                let start = Instant::now();
                black_box(f());
                samples.push(start.elapsed());
            }
            let min = samples.iter().min().copied().unwrap_or(Duration::ZERO);
            let max = samples.iter().max().copied().unwrap_or(Duration::ZERO);
            let mean = samples.iter().sum::<Duration>() / self.sample_size;
            println!(
                "{}/{label:<28} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  (n={})",
                self.name, min, mean, max, self.sample_size
            );
            self
        }

        /// Prints the group footer.
        pub fn finish(&mut self) {
            println!("{}: done", self.name);
        }
    }
}
