//! Shared helpers for the COCONUT benchmark harness (the `repro` binary
//! and the Criterion benches live in this crate).
//!
//! The substance is in [`coconut`]; this crate only re-exports the pieces
//! the harness needs so benches and the binary stay thin.

#![forbid(unsafe_code)]

pub use coconut::experiments;
pub use coconut::prelude;
